"""Dynamic ring membership: join / graceful leave / crash / id movement.

The re-homing invariants checked here are the contract of
:class:`repro.core.membership.MembershipManager`: after *any* sequence of
membership events,

* every stored tuple, ALTT entry, input query and rewritten query lives on
  exactly the node that ``owner_of_key`` names for its key,
* state totals are conserved under graceful changes (join, leave, id
  movement) and accounted as lost under crashes,
* answer sets under graceful churn match the centralised reference engine.
"""

import pytest

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.core.membership import estimate_item_bytes
from repro.core.node import RehomedItem
from repro.core.reference import ReferenceEngine
from repro.errors import DuplicateNodeError, EngineError
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

STRATEGIES = ("rjoin", "random", "worst", "first")


def build(seed=5, queries=6, tuples=30, **overrides):
    spec = WorkloadSpec(
        num_relations=4,
        attributes_per_relation=3,
        value_domain=4,
        join_arity=3,
        seed=seed,
    )
    generator = WorkloadGenerator(spec)
    params = dict(num_nodes=16, seed=seed)
    params.update(overrides)
    engine = RJoinEngine(RJoinConfig(**params))
    engine.register_catalog(generator.catalog)
    for query in generator.generate_queries(queries):
        engine.submit(query)
    for generated in generator.generate_tuples(tuples):
        engine.publish(generated.relation, generated.values)
    return generator, engine


def assert_ownership(engine):
    """Every item of every state kind lives on the node owning its key."""
    for node in engine.nodes.values():
        for key_text in list(node.input_queries) + list(node.rewritten_queries):
            assert engine.ring.owner_of_key(key_text).address == node.address
        for key_text in node.tuple_store.keys():
            assert engine.ring.owner_of_key(key_text).address == node.address
        for key_text in node.altt.keys():
            assert engine.ring.owner_of_key(key_text).address == node.address


def total_items(engine):
    """Items of all four state kinds currently held across the network."""
    return sum(
        len(node.input_queries)
        + len(node.rewritten_queries)
        + len(node.tuple_store)
        + len(node.altt)
        for node in engine.nodes.values()
    )


class TestJoin:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_join_rehomes_state_and_conserves_totals(self, strategy):
        _, engine = build(strategy=strategy)
        before = total_items(engine)
        ring_before = len(engine.ring)
        for _ in range(4):
            engine.add_node()
        assert len(engine.ring) == ring_before + 4
        assert_ownership(engine)
        assert total_items(engine) == before
        assert engine.churn.joins == 4
        assert engine.churn.records_lost == 0

    def test_join_registers_working_node(self):
        generator, engine = build()
        address = engine.add_node()
        assert engine.ring.has_address(address)
        assert address in engine.nodes
        # The new node participates: publishing through it works.
        generated = next(iter(generator.generate_tuples(1)))
        engine.publish(generated.relation, generated.values, publisher=address)
        assert_ownership(engine)

    def test_join_duplicate_address_rejected(self):
        _, engine = build(queries=0, tuples=0)
        with pytest.raises(DuplicateNodeError):
            engine.add_node("node-0")

    def test_join_with_explicit_identifier(self):
        _, engine = build(queries=2, tuples=10)
        target_id = engine.ring.random_free_identifier(__import__("random").Random(99))
        address = engine.add_node("newcomer", node_id=target_id)
        assert engine.ring.node_by_address(address).node_id == target_id
        assert_ownership(engine)


class TestGracefulLeave:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_leave_hands_off_all_state(self, strategy):
        _, engine = build(strategy=strategy)
        before = total_items(engine)
        victim = max(
            engine.nodes.values(),
            key=lambda node: node.current_storage_items + len(node.input_queries),
        )
        departed = engine.remove_node(victim.address)
        assert departed == victim.address
        assert not engine.ring.has_address(victim.address)
        assert victim.address not in engine.nodes
        assert_ownership(engine)
        assert total_items(engine) == before
        assert engine.churn.leaves == 1
        assert engine.churn.records_lost == 0

    def test_leave_keeps_load_tracker_consistent(self):
        _, engine = build()
        engine.remove_node()
        live = sum(
            node.stored_rewritten_queries + node.stored_tuples
            for node in engine.nodes.values()
        )
        assert engine.loads.total_current_storage == live

    def test_cannot_remove_last_node(self):
        engine = RJoinEngine(RJoinConfig(num_nodes=1, seed=1))
        with pytest.raises(EngineError):
            engine.remove_node()

    def test_remove_unknown_node_raises(self):
        _, engine = build(queries=0, tuples=0)
        with pytest.raises(EngineError):
            engine.remove_node("no-such-node")


class TestCrash:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_crash_loses_state_and_accounts_it(self, strategy):
        _, engine = build(strategy=strategy)
        before = total_items(engine)
        engine.crash_node()
        assert_ownership(engine)
        assert engine.churn.crashes == 1
        assert total_items(engine) == before - engine.churn.records_lost

    def test_crash_keeps_load_tracker_consistent(self):
        _, engine = build()
        engine.crash_node()
        live = sum(
            node.stored_rewritten_queries + node.stored_tuples
            for node in engine.nodes.values()
        )
        assert engine.loads.total_current_storage == live

    def test_crash_drops_in_flight_messages(self):
        generator, engine = build(queries=4, tuples=10)
        # Put messages in flight (no drain), then crash the owner of one of
        # the indexing keys before delivery.
        generated = next(iter(generator.generate_tuples(1)))
        tup = engine.publish(generated.relation, generated.values, process=False)
        from repro.core.keys import tuple_index_keys

        schema = engine.catalog.get(tup.relation)
        victim = None
        for key in tuple_index_keys(tup, schema):
            owner = engine.ring.owner_of_key(key.text).address
            if owner != tup.publisher:
                victim = owner
                break
        assert victim is not None
        dropped_before = engine.api.dropped_messages
        engine.crash_node(victim)
        assert engine.api.dropped_messages > dropped_before
        engine.run()
        assert_ownership(engine)

    def test_answers_to_crashed_owner_are_dropped_not_fatal(self):
        """send_direct to a departed address must not blow up the simulation."""
        _, engine = build(queries=6, tuples=10)
        owner = next(iter(engine.handles.values())).owner
        engine.crash_node(owner)
        # Keep publishing: any answer routed to the dead owner is dropped.
        spec = WorkloadSpec(
            num_relations=4,
            attributes_per_relation=3,
            value_domain=4,
            join_arity=3,
            seed=5,
        )
        generator = WorkloadGenerator(spec)
        for generated in generator.generate_tuples(20):
            engine.publish(generated.relation, generated.values)
        assert_ownership(engine)


class TestIdMovementPath:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_rebalance_rehomes_every_state_kind(self, strategy):
        _, engine = build(
            strategy=strategy, id_movement=True, rebalance_every_tuples=10_000
        )
        before = total_items(engine)
        engine.rebalance()
        assert_ownership(engine)
        assert total_items(engine) == before
        assert engine.churn.records_lost == 0


class TestMixedSequences:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_interleaved_events_keep_invariants(self, strategy):
        generator, engine = build(
            strategy=strategy, id_movement=True, rebalance_every_tuples=10_000
        )
        before = total_items(engine)
        engine.add_node()
        engine.rebalance()
        engine.remove_node()
        engine.add_node()
        engine.remove_node()
        assert_ownership(engine)
        assert total_items(engine) == before
        # keep running after churn: the network still works end to end
        for generated in generator.generate_tuples(15):
            engine.publish(generated.relation, generated.values)
        assert_ownership(engine)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_answers_under_graceful_churn_match_reference(self, strategy):
        spec = WorkloadSpec(
            num_relations=4,
            attributes_per_relation=3,
            value_domain=3,
            join_arity=3,
            seed=21,
        )
        generator = WorkloadGenerator(spec)
        engine = RJoinEngine(RJoinConfig(num_nodes=16, seed=21, strategy=strategy))
        engine.register_catalog(generator.catalog)
        reference = ReferenceEngine(generator.catalog)
        handles = []
        for query in generator.generate_queries(6):
            handle = engine.submit(query)
            reference.submit(
                query, query_id=handle.query_id, insertion_time=handle.insertion_time
            )
            handles.append(handle)
        owners = {handle.owner for handle in handles}
        for index, generated in enumerate(generator.generate_tuples(50), start=1):
            tup = engine.publish(generated.relation, generated.values)
            reference.publish_tuple(tup)
            if index % 10 == 0:
                engine.add_node()
            elif index % 10 == 5:
                # graceful departures only, and never a query owner: answers
                # in flight towards a departed owner would be legitimately
                # dropped, which is not what this test is about.
                candidates = [
                    address for address in engine.ring.addresses
                    if address not in owners
                ]
                engine.remove_node(engine._churn_rng.choice(candidates))
        assert_ownership(engine)
        for handle in handles:
            got = sorted(repr(v) for v in handle.values())
            expected = sorted(repr(v) for v in reference.answers(handle.query_id))
            assert got == expected


class TestScheduledOps:
    def test_scheduled_ops_fire_during_drain(self):
        generator, engine = build(queries=4, tuples=10)
        ring_before = len(engine.ring)
        engine.schedule_membership_op("join", delay=0.5)
        engine.schedule_membership_op("leave", delay=0.7)
        engine.schedule_membership_op("crash", delay=0.9)
        for generated in generator.generate_tuples(5):
            engine.publish(generated.relation, generated.values)
        assert engine.churn.total_events == 3
        assert len(engine.ring) == ring_before - 1  # +1 join, -1 leave, -1 crash
        assert_ownership(engine)

    def test_min_nodes_bound_turns_events_into_noops(self):
        _, engine = build(queries=0, tuples=0, num_nodes=3)
        engine.schedule_membership_op("leave", delay=0.1, min_nodes=3)
        engine.schedule_membership_op("crash", delay=0.2, min_nodes=3)
        engine.run()
        assert engine.churn.total_events == 0
        assert len(engine.ring) == 3

    def test_max_nodes_bound_caps_joins(self):
        _, engine = build(queries=0, tuples=0, num_nodes=4)
        for delay in (0.1, 0.2, 0.3):
            engine.schedule_membership_op("join", delay=delay, max_nodes=5)
        engine.run()
        assert len(engine.ring) == 5
        assert engine.churn.joins == 1

    def test_unknown_op_kind_rejected(self):
        _, engine = build(queries=0, tuples=0)
        with pytest.raises(EngineError):
            engine.schedule_membership_op("explode")


class TestManagerAndItems:
    def test_accept_rehomed_unknown_kind_raises_engine_error(self):
        """Regression: used to be a bare ValueError (error-hygiene, PR 2)."""
        _, engine = build(queries=0, tuples=0)
        node = next(iter(engine.nodes.values()))
        item = RehomedItem(kind="hologram", key_text="some-key", payload=object())
        with pytest.raises(EngineError, match="hologram"):
            node.accept_rehomed(item)
        with pytest.raises(EngineError, match="input"):
            node.accept_rehomed(item)  # message names the valid kinds

    def test_handoff_refuses_live_node(self):
        _, engine = build(queries=0, tuples=0)
        node = next(iter(engine.nodes.values()))
        with pytest.raises(EngineError):
            engine.membership.handoff(node)

    def test_altt_entries_keep_reception_time_across_rehoming(self):
        """A re-homed ALTT entry must keep its remaining Δ budget."""
        _, engine = build(queries=4, tuples=20)
        donor = next(
            node for node in engine.nodes.values() if len(node.altt) > 0
        )
        key = donor.altt.keys()[0]
        entries = donor.altt.pop_key(key)
        assert entries
        received_times = [received_at for _, received_at in entries]
        for tup, received_at in entries:
            donor.altt.add(key, tup, received_at)
        assert [
            received_at for _, received_at in donor.altt.pop_key(key)
        ] == received_times

    def test_estimate_item_bytes_positive_for_every_kind(self):
        _, engine = build(queries=6, tuples=20)
        items = []
        for node in engine.nodes.values():
            items.extend(node.extract_all())
        kinds = {item.kind for item in items}
        assert {"rewritten", "tuple"} <= kinds
        for item in items:
            assert estimate_item_bytes(item) > 0
