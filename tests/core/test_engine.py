"""Engine-level API tests: submission, publication, answers, metrics."""

import pytest

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.errors import (
    EngineError,
    QueryRegistrationError,
    SchemaError,
    UnknownRelationError,
)
from repro.sql.ast import WindowSpec
from repro.sql.parser import parse_query


class TestBasicJoins:
    def test_two_way_join_single_answer(self, engine):
        handle = engine.submit("SELECT R.a, S.d FROM R, S WHERE R.b = S.c")
        engine.publish("R", (1, 10))
        engine.publish("S", (10, 99))
        assert handle.values() == [(1, 99)]

    def test_two_way_join_reverse_arrival_order(self, engine):
        handle = engine.submit("SELECT R.a, S.d FROM R, S WHERE R.b = S.c")
        engine.publish("S", (10, 99))
        engine.publish("R", (1, 10))
        assert handle.values() == [(1, 99)]

    def test_three_way_join_paper_style(self, engine):
        handle = engine.submit(
            "SELECT R.a, T.f FROM R, S, T WHERE R.b = S.c AND S.d = T.e"
        )
        engine.publish("R", (1, 10))
        engine.publish("S", (10, 20))
        engine.publish("T", (20, 99))
        assert handle.values() == [(1, 99)]

    def test_no_answer_for_non_matching_tuples(self, engine):
        handle = engine.submit("SELECT R.a FROM R, S WHERE R.b = S.c")
        engine.publish("R", (1, 10))
        engine.publish("S", (11, 99))
        assert handle.values() == []

    def test_multiple_matches_bag_semantics(self, engine):
        handle = engine.submit("SELECT R.a, S.d FROM R, S WHERE R.b = S.c")
        engine.publish("R", (1, 10))
        engine.publish("S", (10, 5))
        engine.publish("S", (10, 6))
        assert sorted(handle.values()) == [(1, 5), (1, 6)]

    def test_selection_predicate(self, engine):
        handle = engine.submit("SELECT R.a FROM R, S WHERE R.b = S.c AND S.d = 7")
        engine.publish("R", (1, 10))
        engine.publish("S", (10, 7))
        engine.publish("S", (10, 8))
        assert handle.values() == [(1,)]

    def test_single_relation_filter_query(self, engine):
        handle = engine.submit("SELECT R.a FROM R WHERE R.b = 3")
        engine.publish("R", (1, 3))
        engine.publish("R", (2, 4))
        assert handle.values() == [(1,)]

    def test_tuples_before_submission_do_not_count(self, engine):
        engine.publish("R", (1, 10))
        handle = engine.submit("SELECT R.a, S.d FROM R, S WHERE R.b = S.c")
        engine.publish("S", (10, 99))
        assert handle.values() == []

    def test_multiple_queries_share_tuples(self, engine):
        first = engine.submit("SELECT R.a FROM R, S WHERE R.b = S.c")
        second = engine.submit("SELECT S.d FROM R, S WHERE R.b = S.c")
        engine.publish("R", (1, 10))
        engine.publish("S", (10, 42))
        assert first.values() == [(1,)]
        assert second.values() == [(42,)]

    def test_distinct_query(self, engine):
        handle = engine.submit(
            "SELECT DISTINCT R.a, S.d FROM R, S WHERE R.b = S.c"
        )
        engine.publish("R", (1, 10))
        engine.publish("R", (1, 10))
        engine.publish("S", (10, 5))
        assert handle.distinct_values() == {(1, 5)}
        assert len(handle.values()) == 1


class TestEngineApi:
    def test_submit_accepts_parsed_queries(self, engine, small_catalog):
        query = parse_query(
            "SELECT R.a FROM R, S WHERE R.b = S.c", catalog=small_catalog
        )
        handle = engine.submit(query)
        assert handle.query == query

    def test_submit_with_window_override(self, engine):
        handle = engine.submit(
            "SELECT R.a FROM R, S WHERE R.b = S.c",
            window=WindowSpec(size=5, mode="tuples"),
        )
        assert handle.query.window.size == 5

    def test_submit_with_explicit_owner(self, engine):
        owner = engine.ring.addresses[0]
        handle = engine.submit("SELECT R.a FROM R", owner=owner)
        assert handle.owner == owner
        assert handle.query_id.startswith(owner)

    def test_submit_unknown_owner_rejected(self, engine):
        with pytest.raises(QueryRegistrationError):
            engine.submit("SELECT R.a FROM R", owner="nope")

    def test_publish_unknown_relation_rejected(self, engine):
        with pytest.raises(UnknownRelationError):
            engine.publish("ZZ", (1,))

    def test_publish_unknown_publisher_rejected(self, engine):
        with pytest.raises(EngineError):
            engine.publish("R", (1, 2), publisher="ghost")

    def test_publish_many(self, engine):
        handle = engine.submit("SELECT R.a FROM R, S WHERE R.b = S.c")
        engine.publish_many([("R", (1, 10)), ("S", (10, 3))], process_each=False)
        assert handle.values() == [(1,)]

    def test_handles_registry(self, engine):
        handle = engine.submit("SELECT R.a FROM R")
        assert engine.handle(handle.query_id) is handle
        assert handle.query_id in engine.handles
        with pytest.raises(EngineError):
            engine.handle("missing")

    def test_query_ids_are_unique(self, engine):
        ids = {engine.submit("SELECT R.a FROM R").query_id for _ in range(5)}
        assert len(ids) == 5

    def test_tick_advances_clock(self, engine):
        before = engine.now
        engine.tick(5.0)
        assert engine.now == before + 5.0

    def test_register_relation(self, engine):
        engine.register_relation("U", ["x"])
        handle = engine.submit("SELECT U.x FROM U")
        engine.publish("U", (7,))
        assert handle.values() == [(7,)]


class TestMetrics:
    def test_summary_keys_and_consistency(self, engine):
        engine.submit("SELECT R.a FROM R, S WHERE R.b = S.c")
        engine.publish("R", (1, 10))
        engine.publish("S", (10, 3))
        summary = engine.metrics_summary()
        assert summary["nodes"] == 16
        assert summary["published_tuples"] == 2
        assert summary["submitted_queries"] == 1
        assert summary["answers"] == 1
        assert summary["total_messages"] > 0
        assert summary["total_qpl"] > 0
        assert summary["total_storage"] > 0
        assert summary["messages_per_node"] == pytest.approx(
            summary["total_messages"] / 16
        )

    def test_tuple_publication_costs_messages(self, engine):
        before = engine.traffic.total_messages
        engine.publish("R", (1, 2))
        # 2 keys per attribute, 2 attributes, each routed over >= 0 hops; at
        # least some messages must have been transmitted in a 16-node ring.
        assert engine.traffic.total_messages > before

    def test_distributions_cover_all_nodes_or_less(self, engine):
        engine.submit("SELECT R.a FROM R, S WHERE R.b = S.c")
        engine.publish("R", (1, 10))
        assert len(engine.qpl_distribution()) <= 16
        assert all(
            a >= b
            for a, b in zip(
                engine.qpl_distribution(), engine.qpl_distribution()[1:]
            )
        )

    def test_storage_distribution_current_vs_cumulative(self, engine):
        engine.submit("SELECT R.a FROM R, S WHERE R.b = S.c")
        engine.publish("R", (1, 10))
        current = sum(engine.storage_distribution(current=True))
        cumulative = sum(engine.storage_distribution(current=False))
        assert current <= cumulative


class TestStrategiesProduceSameAnswers:
    @pytest.mark.parametrize("strategy", ["rjoin", "first"])
    def test_value_level_strategies_complete(self, small_catalog, strategy):
        config = RJoinConfig(
            num_nodes=16,
            seed=3,
            strategy=strategy,
            allow_attribute_level_rewrites=False,
        )
        engine = RJoinEngine(config, catalog=small_catalog)
        handle = engine.submit(
            "SELECT R.a, T.f FROM R, S, T WHERE R.b = S.c AND S.d = T.e"
        )
        engine.publish("R", (1, 10))
        engine.publish("S", (10, 20))
        engine.publish("T", (20, 99))
        assert handle.values() == [(1, 99)]


class TestBatchSequentialEquivalence:
    """Same seed ⇒ batch and per-tuple publication agree (all strategies)."""

    ROWS = [
        ("R", (1, 10)),
        ("S", (10, 20)),
        ("T", (20, 99)),
        ("R", (2, 10)),
        ("S", (3, 4)),
        ("T", (4, 7)),
        ("S", (10, 21)),
        ("T", (21, 55)),
    ]
    SQL = "SELECT R.a, T.f FROM R, S, T WHERE R.b = S.c AND S.d = T.e"
    #: Traffic totals are allowed to differ for RJoin only: with one drain per
    #: batch, rewritten queries can be in flight concurrently, so the same
    #: logical rewrite may trigger duplicate RIC lookups (answers are deduped,
    #: but every transmitted message is still counted).  Load, storage and
    #: answer metrics must match exactly for every strategy.
    TRAFFIC_KEYS = (
        "total_messages",
        "ric_messages",
        "messages_per_node",
        "ric_messages_per_node",
    )
    #: The trigger-path observables may differ for *every* strategy: a
    #: rewritten query still in flight when a later batch tuple lands is
    #: matched by the stored-tuple catch-up on its arrival instead of by the
    #: tuple-arrival probe, moving work between the counted probe path and
    #: the uncounted catch-up.  Answers and load metrics still match exactly.
    MATCHING_KEYS = (
        "queries_triggered",
        "trigger_candidates_scanned",
        "shared_state_fanout",
    )

    @pytest.mark.parametrize("strategy", ["rjoin", "random", "worst", "first"])
    def test_batch_matches_sequential(self, small_catalog, strategy):
        sequential = RJoinEngine(
            RJoinConfig(num_nodes=16, seed=7, strategy=strategy),
            catalog=small_catalog,
        )
        batched = RJoinEngine(
            RJoinConfig(num_nodes=16, seed=7, strategy=strategy),
            catalog=small_catalog,
        )
        h_seq = sequential.submit(self.SQL)
        h_batch = batched.submit(self.SQL)
        for relation, values in self.ROWS:
            sequential.publish(relation, values)
        batched.publish_batch(self.ROWS)

        assert sorted(h_seq.values()) == sorted(h_batch.values())
        summary_seq = sequential.metrics_summary()
        summary_batch = batched.metrics_summary()
        assert set(summary_seq) == set(summary_batch)
        exempt = set(self.MATCHING_KEYS)
        if strategy == "rjoin":
            exempt |= set(self.TRAFFIC_KEYS)
        for key in summary_seq:
            if key in exempt:
                continue
            assert summary_seq[key] == summary_batch[key], key

    @pytest.mark.parametrize("strategy", ["random", "worst", "first"])
    def test_summaries_identical_for_oracle_and_random_strategies(
        self, small_catalog, strategy
    ):
        sequential = RJoinEngine(
            RJoinConfig(num_nodes=16, seed=11, strategy=strategy),
            catalog=small_catalog,
        )
        batched = RJoinEngine(
            RJoinConfig(num_nodes=16, seed=11, strategy=strategy),
            catalog=small_catalog,
        )
        sequential.submit(self.SQL)
        batched.submit(self.SQL)
        for relation, values in self.ROWS:
            sequential.publish(relation, values)
        batched.publish_batch(self.ROWS)
        summary_seq = sequential.metrics_summary()
        summary_batch = batched.metrics_summary()
        for key in self.MATCHING_KEYS:
            summary_seq.pop(key)
            summary_batch.pop(key)
        assert summary_seq == summary_batch


class TestPublishBatch:
    def _rows(self):
        return [
            ("R", (1, 10)),
            ("S", (10, 20)),
            ("T", (20, 99)),
            ("R", (2, 10)),
        ]

    def test_batch_produces_same_answers_as_sequential(self, small_catalog):
        sequential = RJoinEngine(
            RJoinConfig(num_nodes=16, seed=7), catalog=small_catalog
        )
        batched = RJoinEngine(RJoinConfig(num_nodes=16, seed=7), catalog=small_catalog)
        sql = "SELECT R.a, T.f FROM R, S, T WHERE R.b = S.c AND S.d = T.e"
        h1 = sequential.submit(sql)
        h2 = batched.submit(sql)
        for relation, values in self._rows():
            sequential.publish(relation, values)
        batched.publish_batch(self._rows())
        assert sorted(h1.values()) == sorted(h2.values())
        assert sorted(h2.values()) == [(1, 99), (2, 99)]

    def test_batch_returns_tuples_with_distinct_sequences(self, engine):
        published = engine.publish_batch(self._rows())
        assert len(published) == 4
        assert len({tup.sequence for tup in published}) == 4
        assert engine.published_tuples == 4

    def test_batch_with_fixed_publisher(self, engine):
        address = engine.ring.addresses[0]
        published = engine.publish_batch(self._rows(), publisher=address)
        assert all(tup.publisher == address for tup in published)

    def test_batch_rejects_unknown_relation(self, engine):
        with pytest.raises(UnknownRelationError):
            engine.publish_batch([("nope", (1, 2))])

    def test_batch_rejects_unknown_publisher(self, engine):
        with pytest.raises(EngineError):
            engine.publish_batch(self._rows(), publisher="not-a-node")

    def _engine_state(self, engine):
        return (
            engine._sequence,
            dict(engine._oracle_counts),
            engine.published_tuples,
            engine.traffic.total_messages,
            engine.loads.total_storage_load,
        )

    def test_failed_batch_leaves_engine_state_untouched(self, engine):
        """Regression: a wrong-arity row mid-batch must not leak state.

        Before the fix, a failed 2-row batch left ``_sequence == 2`` and four
        phantom ``_oracle_counts`` behind with ``_published == 0``, silently
        skewing the Worst baseline's rate oracle for every later experiment.
        """
        before = self._engine_state(engine)
        with pytest.raises(SchemaError):
            engine.publish_batch([("R", (1, 10)), ("S", (1, 2, 3))])
        assert self._engine_state(engine) == before
        assert engine._sequence == 0
        assert engine._oracle_counts == {}

    def test_failed_batch_unknown_relation_leaves_state_untouched(self, engine):
        before = self._engine_state(engine)
        with pytest.raises(UnknownRelationError):
            engine.publish_batch([("R", (1, 10)), ("nope", (1, 2))])
        assert self._engine_state(engine) == before

    def test_failed_publish_leaves_sequence_untouched(self, engine):
        with pytest.raises(SchemaError):
            engine.publish("R", (1, 2, 3))
        assert engine._sequence == 0
        assert engine._oracle_counts == {}

    @pytest.mark.parametrize("bad_row", [("R",), ("R", 1, 2, 3), 42, ("R", 5)])
    def test_batch_malformed_rows_raise_engine_error(self, engine, bad_row):
        before = self._engine_state(engine)
        with pytest.raises(EngineError) as excinfo:
            engine.publish_batch([("R", (1, 10)), bad_row])
        assert "publish_batch" in str(excinfo.value)
        assert self._engine_state(engine) == before

    @pytest.mark.parametrize("bad_row", [("R",), ("R", 1, 2, 3), 42, ("R", 5)])
    def test_publish_many_malformed_rows_raise_engine_error(self, engine, bad_row):
        before = self._engine_state(engine)
        with pytest.raises(EngineError) as excinfo:
            engine.publish_many([("R", (1, 10)), bad_row])
        assert "publish_many" in str(excinfo.value)
        # publish_many validates the whole list up front, so even the good
        # leading row must not have been published.
        assert self._engine_state(engine) == before

    def test_oracle_rate_unaffected_by_failed_batch(self, engine):
        engine.publish("R", (1, 10))
        rate_before = dict(engine._oracle_counts)
        with pytest.raises(SchemaError):
            engine.publish_batch([("R", (2, 20)), ("S", (1,))])
        assert engine._oracle_counts == rate_before

    def test_batch_traffic_accounting_matches_message_count(self, small_catalog):
        engine = RJoinEngine(RJoinConfig(num_nodes=16, seed=7), catalog=small_catalog)
        engine.publish_batch([("R", (1, 2))])
        # 2 attributes x 2 levels = 4 messages; every transmission (send or
        # forwarded hop) must be charged to exactly one node.
        per_node = sum(t.total for t in engine.traffic.per_node().values())
        assert per_node == engine.traffic.total_messages
        assert engine.traffic.total_messages >= 1
