"""The ``asyncio`` runtime: every registered address is an actor task.

Where the ``sim`` runtime replays the network as a single time-ordered event
heap, this transport runs each node as a real actor: a long-lived
:mod:`asyncio` task draining a bounded per-address inbox.  Sends are
backpressure-aware — an actor whose outbound envelope targets a full inbox
awaits capacity instead of growing an unbounded queue — with a timeout
escape hatch so that cyclic traffic between mutually full inboxes degrades
to an oversized queue rather than a deadlock.

Time is *logical* here: the clock starts at the engine's simulated clock and
ratchets forward to each envelope's ``delivered_at`` / each timer's due time
as work is processed, so windows, expiry sweeps and traffic accounting see
the same timebase as the deterministic runtime.  Delivery *order*, however,
is whatever the scheduler produces — determinism is exactly the property
this runtime trades away for concurrency (see the README's "Runtimes &
transports" section; RJoin's answer bags are provably order-independent,
which is what the cross-runtime equality tests exercise).

Wall-clock waits (the backpressure timeout) are legitimate in this module
and it is exempted from the ``determinism-purity`` analysis rule; the
deterministic transports stay gated.

Driving a concurrent runtime from synchronous engine code works in phases:
``post()`` never blocks — envelopes posted outside any actor buffer in a
driver outbox, envelopes posted by a message handler buffer in the
executing actor's outbox and are flushed (with backpressure awaits) after
the handler returns.  :meth:`AsyncioTransport.drain` then spins the loop:
flush the driver outbox, wait until every in-flight message is delivered,
fire the earliest due timer, repeat until quiescent.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.net.messages import Envelope
from repro.net.runtime import (
    DeliverCallback,
    EventHandle,
    Transport,
    _ScheduledEvent,
    ensure_not_reentrant,
)

#: Default bound on a per-address inbox before senders feel backpressure.
DEFAULT_INBOX_CAPACITY = 1024

#: Seconds a backpressured sender waits for inbox space before the escape
#: hatch force-enqueues (prevents deadlock when a traffic cycle fills every
#: inbox in the cycle).
DEFAULT_BACKPRESSURE_TIMEOUT = 0.25


class _InFlight:
    """A posted envelope, tracked until delivery, cancellation or extraction."""

    __slots__ = ("envelope", "cancelled")

    def __init__(self, envelope: Envelope) -> None:
        self.envelope = envelope
        self.cancelled = False


class _Inbox:
    """Bounded FIFO with async blocking on both emptiness and fullness.

    A hand-rolled deque + two events rather than :class:`asyncio.Queue`
    because producers must also be able to enqueue *synchronously* (the
    driver outbox flush and the force-enqueue escape hatch) and consumers
    need to observe capacity transitions for backpressure.
    """

    __slots__ = ("_items", "_capacity", "_readable", "_writable")

    def __init__(self, capacity: int) -> None:
        self._items: Deque[_InFlight] = deque()
        self._capacity = capacity
        self._readable = asyncio.Event()
        self._writable = asyncio.Event()
        self._writable.set()

    def __len__(self) -> int:
        return len(self._items)

    def put_nowait(self, entry: _InFlight) -> None:
        """Enqueue unconditionally (driver flush / escape hatch)."""
        self._items.append(entry)
        self._readable.set()
        if len(self._items) >= self._capacity:
            self._writable.clear()

    async def put(self, entry: _InFlight, timeout: float) -> None:
        """Enqueue, awaiting capacity up to ``timeout`` seconds.

        On timeout the entry is enqueued anyway: losing backpressure is
        recoverable, a distributed deadlock is not.
        """
        while len(self._items) >= self._capacity:
            try:
                await asyncio.wait_for(self._writable.wait(), timeout)
            except asyncio.TimeoutError:
                break
        self.put_nowait(entry)

    async def get(self) -> _InFlight:
        """Dequeue the oldest entry, awaiting one if the inbox is empty."""
        while not self._items:
            self._readable.clear()
            if self._items:
                break
            await self._readable.wait()
        entry = self._items.popleft()
        if len(self._items) < self._capacity:
            self._writable.set()
        return entry


class AsyncioTransport(Transport):
    """Concurrent actor-per-address runtime behind the :class:`Transport` contract."""

    name = "asyncio"

    #: Handlers run on a real event loop here, so spans additionally record
    #: wall-clock service time (``Span.wall_us``) — the logical timestamps
    #: alone cannot show where a concurrent run actually spends time.
    wall_clock_spans = True

    def __init__(
        self,
        inbox_capacity: int = DEFAULT_INBOX_CAPACITY,
        backpressure_timeout: float = DEFAULT_BACKPRESSURE_TIMEOUT,
    ) -> None:
        if inbox_capacity < 1:
            raise SimulationError("inbox_capacity must be at least 1")
        self._inbox_capacity = inbox_capacity
        self._backpressure_timeout = backpressure_timeout
        self._loop = asyncio.new_event_loop()
        self._deliver: Optional[DeliverCallback] = None
        self._now = 0.0
        # message plumbing -------------------------------------------------
        self._inboxes: Dict[str, _Inbox] = {}
        self._actors: Dict[str, "asyncio.Task[None]"] = {}
        self._pending: Dict[str, List[_InFlight]] = {}
        self._driver_outbox: Deque[_InFlight] = deque()
        self._actor_outbox: Deque[_InFlight] = deque()
        self._in_handler = False
        self._live_messages = 0
        self._message_done = asyncio.Event()
        # timers -----------------------------------------------------------
        self._timer_heap: List[_ScheduledEvent] = []
        self._timer_sequence = itertools.count()
        self._live_events = 0
        # drain / lifecycle ------------------------------------------------
        self._events_processed = 0
        self._draining = False
        self._closed = False
        self._failure: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind(self, deliver: DeliverCallback) -> None:
        """Install the delivery callback actors hand dequeued envelopes to."""
        self._deliver = deliver

    def register_address(self, address: str) -> None:
        """Spawn the actor task (and inbox) serving ``address``."""
        self._ensure_actor(address)

    def unregister_address(self, address: str) -> None:
        """Keep the actor alive: envelopes already addressed here must still
        reach the delivery callback, which counts them as dropped once the
        messaging layer has forgotten the handler (graceful-leave parity
        with the deterministic runtime)."""

    def _ensure_actor(self, address: str) -> _Inbox:
        inbox = self._inboxes.get(address)
        if inbox is None:
            if self._closed:
                raise SimulationError(
                    "transport is shut down; cannot register new addresses"
                )
            inbox = _Inbox(self._inbox_capacity)
            self._inboxes[address] = inbox
            self._actors[address] = self._loop.create_task(
                self._actor_main(address, inbox)
            )
        return inbox

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current logical time (high-water mark of processed work)."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the logical clock forward to ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot move the clock backwards from {self._now} to {time}"
            )
        self._now = time

    def advance_by(self, delta: float) -> None:
        """Move the logical clock forward by ``delta`` time units."""
        if delta < 0:
            raise SimulationError("cannot advance the clock by a negative delta")
        self.advance_to(self._now + delta)

    # ------------------------------------------------------------------
    # message delivery
    # ------------------------------------------------------------------
    def post(self, envelope: Envelope, delay: float) -> None:
        """Accept an envelope for asynchronous delivery; never blocks.

        ``delay`` shaped the envelope's ``delivered_at`` stamp when the
        messaging layer built it; actual delivery happens as soon as the
        destination actor gets scheduled.
        """
        if self._deliver is None:
            raise SimulationError(
                "no delivery callback bound; call bind() before post()"
            )
        if self._closed:
            raise SimulationError("transport is shut down; cannot post")
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        entry = _InFlight(envelope)
        self._pending.setdefault(envelope.destination, []).append(entry)
        self._live_messages += 1
        if self._in_handler:
            self._actor_outbox.append(entry)
        else:
            self._driver_outbox.append(entry)

    def cancel_inbound(self, address: str) -> int:
        """Destroy every undelivered envelope addressed to ``address``."""
        cancelled = 0
        for entry in self._pending.get(address, ()):
            if not entry.cancelled:
                entry.cancelled = True
                cancelled += 1
        if cancelled:
            self._live_messages -= cancelled
            self._message_done.set()
        self._pending.pop(address, None)
        return cancelled

    def extract_inbound(self, address: str) -> List[Envelope]:
        """Take the undelivered envelopes for ``address``, in posting order."""
        extracted: List[Envelope] = []
        for entry in self._pending.get(address, ()):
            if not entry.cancelled:
                entry.cancelled = True
                extracted.append(entry.envelope)
        if extracted:
            self._live_messages -= len(extracted)
            self._message_done.set()
        self._pending.pop(address, None)
        return extracted

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute logical ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past ({time} < {self._now})"
            )
        event = _ScheduledEvent(
            time=time,
            sequence=next(self._timer_sequence),
            callback=callback,
            args=args,
        )
        heapq.heappush(self._timer_heap, event)
        self._live_events += 1
        return EventHandle(event, self)

    def schedule_in(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` logical time units."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self.schedule_at(self._now + delay, callback, *args)

    def _pop_timer(self) -> Optional[_ScheduledEvent]:
        while self._timer_heap:
            event = heapq.heappop(self._timer_heap)
            if event.cancelled:
                continue
            return event
        return None

    # ------------------------------------------------------------------
    # actors
    # ------------------------------------------------------------------
    async def _actor_main(self, address: str, inbox: _Inbox) -> None:
        """Serve one address forever: dequeue, deliver, flush the outbox."""
        while True:
            entry = await inbox.get()
            if entry.cancelled:
                continue  # cancel/extract already settled its accounting
            outbound = self._execute_handler(address, entry)
            self._live_messages -= 1
            self._message_done.set()
            for produced in outbound:
                if produced.cancelled:
                    continue
                await self._enqueue(produced)

    def _execute_handler(self, address: str, entry: _InFlight) -> List[_InFlight]:
        """Run the delivery callback; return the envelopes it posted."""
        envelope = entry.envelope
        pending = self._pending.get(envelope.destination)
        if pending is not None:
            try:
                pending.remove(entry)
            except ValueError:
                pass  # already settled by cancel/extract racing the dequeue
        if envelope.delivered_at > self._now:
            self._now = envelope.delivered_at
        self._events_processed += 1
        deliver = self._deliver
        assert deliver is not None  # bind() precedes any post
        self._in_handler = True
        try:
            deliver(envelope)
        except Exception as exc:  # surface handler bugs from drain()
            if self._failure is None:
                self._failure = exc
        finally:
            self._in_handler = False
        outbound = list(self._actor_outbox)
        self._actor_outbox.clear()
        return outbound

    async def _enqueue(self, entry: _InFlight) -> None:
        inbox = self._ensure_actor(entry.envelope.destination)
        await inbox.put(entry, self._backpressure_timeout)

    # ------------------------------------------------------------------
    # drain / shutdown
    # ------------------------------------------------------------------
    def drain(self, max_events: Optional[int] = None) -> int:
        """Run the actor network to quiescence; returns events processed.

        Quiescent means: driver outbox flushed, every in-flight envelope
        delivered (or cancelled/extracted), no pending timer left.  Timers
        fire between message waves, in due-time order, on the driver
        context — so membership operations scheduled through
        :meth:`schedule_in` observe ``is_draining`` exactly like they do on
        the deterministic runtime.
        """
        ensure_not_reentrant(self)
        if self._closed:
            raise SimulationError("transport is shut down; cannot drain")
        self._draining = True
        try:
            return self._loop.run_until_complete(self._drain_async(max_events))
        finally:
            self._draining = False

    async def _drain_async(self, max_events: Optional[int]) -> int:
        start = self._events_processed
        while True:
            await self._flush_driver_outbox()
            await self._await_message_quiescence(start, max_events)
            if self._driver_outbox:
                continue  # a handler ran on the driver context meanwhile
            event = self._pop_timer()
            if event is None:
                break
            self._fire_timer(event)
            self._check_budget(start, max_events)
        self._raise_failure()
        return self._events_processed - start

    async def _flush_driver_outbox(self) -> None:
        while self._driver_outbox:
            entry = self._driver_outbox.popleft()
            if entry.cancelled:
                continue
            await self._enqueue(entry)

    async def _await_message_quiescence(
        self, start: int, max_events: Optional[int]
    ) -> None:
        while self._live_messages > 0:
            self._raise_failure()
            self._check_budget(start, max_events)
            self._message_done.clear()
            if self._live_messages == 0:
                break
            await self._message_done.wait()
        self._raise_failure()

    def _fire_timer(self, event: _ScheduledEvent) -> None:
        if event.time > self._now:
            self._now = event.time
        self._live_events -= 1
        event.fired = True
        self._events_processed += 1
        event.callback(*event.args)

    def _check_budget(self, start: int, max_events: Optional[int]) -> None:
        if max_events is not None and self._events_processed - start > max_events:
            raise SimulationError(f"exceeded the maximum of {max_events} events")

    def _raise_failure(self) -> None:
        if self._failure is not None:
            failure = self._failure
            self._failure = None
            raise failure

    @property
    def is_draining(self) -> bool:
        """Whether :meth:`drain` is currently executing."""
        return self._draining

    @property
    def pending_events(self) -> int:
        """Undelivered envelopes plus uncancelled pending timers."""
        return self._live_messages + self._live_events

    @property
    def events_processed(self) -> int:
        """Total deliveries and timer firings since construction."""
        return self._events_processed

    def shutdown(self) -> None:
        """Drain outstanding work, stop every actor, close the loop.

        Idempotent.  After shutdown the transport refuses further posts,
        drains and registrations.
        """
        if self._closed:
            return
        if self.pending_events and not self._draining:
            self.drain()
        self._closed = True
        tasks = list(self._actors.values())
        for task in tasks:
            task.cancel()
        if tasks:
            self._loop.run_until_complete(
                asyncio.gather(*tasks, return_exceptions=True)
            )
        self._actors.clear()
        self._inboxes.clear()
        self._loop.close()

    @property
    def is_closed(self) -> bool:
        """Whether :meth:`shutdown` has completed."""
        return self._closed
