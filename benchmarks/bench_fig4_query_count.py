"""Figure 4 — effect of increasing the number of indexed queries.

Regenerates the per-tuple traffic cost and the ranked-node QPL / storage
distributions as the number of indexed continuous queries grows.

Expected shape (paper): more indexed queries mean more triggered rewrites and
therefore more load, but the ranked-node distribution keeps the same pattern
(the extra load is shared by many nodes).
"""

import pytest

from repro.experiments.figures import figure4
from repro.metrics.report import load_imbalance


@pytest.mark.benchmark(group="figure4")
def test_figure4_query_count(benchmark):
    result = benchmark.pedantic(figure4, rounds=1, iterations=1)
    print()
    print(result.to_text())

    counts = [str(c) for c in result.x_values]
    qpl_totals = [sum(result.distributions[f"qpl_ranked_{c}"]) for c in counts]
    storage_totals = [sum(result.distributions[f"storage_ranked_{c}"]) for c in counts]

    # More indexed queries -> more total QPL and storage load.
    assert qpl_totals == sorted(qpl_totals)
    assert storage_totals[-1] >= storage_totals[0]
    # Per-tuple traffic grows with the number of waiting queries.
    traffic = result.series["messages_per_node_per_tuple"]
    assert traffic[-1] >= traffic[0]
    # The distribution pattern stays comparable: the load imbalance of the
    # largest workload stays within an order of magnitude of the smallest.
    smallest = load_imbalance(result.distributions[f"qpl_ranked_{counts[0]}"])
    largest = load_imbalance(result.distributions[f"qpl_ranked_{counts[-1]}"])
    assert largest <= smallest * 10 + 10
