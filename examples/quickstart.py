#!/usr/bin/env python3
"""Quickstart: continuous multi-way joins over a simulated Chord DHT.

This example builds a small RJoin network, registers a relational schema,
submits a continuous 3-way join in SQL, publishes a handful of tuples and
prints the answers as they are delivered, together with the network metrics
the paper measures (traffic, query-processing load, storage load).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import RJoinConfig, RJoinEngine


def main() -> None:
    # 1. Build a simulated Chord network of 32 nodes.
    engine = RJoinEngine(RJoinConfig(num_nodes=32, seed=7))

    # 2. Register the relational schema (append-only relations).
    engine.register_relation("orders", ["order_id", "customer", "item"])
    engine.register_relation("payments", ["order_id", "amount"])
    engine.register_relation("shipments", ["order_id", "carrier"])

    # 3. Submit a continuous 3-way equi-join: report every order that has
    #    both a payment and a shipment.
    handle = engine.submit(
        "SELECT orders.customer, payments.amount, shipments.carrier "
        "FROM orders, payments, shipments "
        "WHERE orders.order_id = payments.order_id "
        "AND payments.order_id = shipments.order_id"
    )
    print(f"registered continuous query {handle.query_id}:")
    print(f"  {handle.query}\n")

    # 4. Publish tuples from arbitrary nodes of the network.  RJoin rewrites
    #    the query incrementally as matching tuples arrive.
    engine.publish("orders", (1001, "ada", "keyboard"))
    engine.publish("payments", (1001, 59))
    engine.publish("orders", (1002, "grace", "monitor"))
    engine.publish("shipments", (1001, "ACME-express"))   # completes order 1001
    engine.publish("payments", (1002, 249))
    engine.publish("shipments", (1002, "P2P-freight"))    # completes order 1002

    # 5. Answers are shipped directly to the node that submitted the query.
    print("answers delivered so far:")
    for answer in handle.answers:
        print(f"  {answer.values}   (produced by {answer.producer} "
              f"at t={answer.produced_at:g})")

    # 6. The engine tracks the same metrics the paper's evaluation reports.
    summary = engine.metrics_summary()
    print("\nnetwork metrics:")
    for key in ("total_messages", "ric_messages", "messages_per_node",
                "total_qpl", "total_storage", "participating_nodes"):
        print(f"  {key:>22}: {summary[key]:g}")

    # 7. The same program runs on the concurrent asyncio runtime, where each
    #    node is an actor task — answer bags are identical, only the event
    #    interleaving differs (see README "Runtimes & transports").
    with RJoinEngine(RJoinConfig(num_nodes=32, seed=7, runtime="asyncio")) as concurrent:
        concurrent.register_relation("orders", ["order_id", "customer", "item"])
        concurrent.register_relation("payments", ["order_id", "amount"])
        concurrent.register_relation("shipments", ["order_id", "carrier"])
        concurrent_handle = concurrent.submit(str(handle.query))
        concurrent.publish("orders", (1001, "ada", "keyboard"))
        concurrent.publish("payments", (1001, 59))
        concurrent.publish("shipments", (1001, "ACME-express"))
        same = sorted(concurrent_handle.values()) == sorted(
            values for values in handle.values() if values[0] == "ada"
        )
        print(f"\nasyncio runtime delivered the same order-1001 answers: {same}")


if __name__ == "__main__":
    main()
