"""The ``store-backends`` scenario and the backend config plumbing."""

from __future__ import annotations

import pytest

from repro.data.backends import BACKEND_NAMES
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import get_scenario
from repro.metrics.serialize import (
    RESULT_SCHEMA_VERSION,
    config_from_dict,
    config_to_dict,
)


class TestConfigPlumbing:
    def test_store_backend_default_and_validation(self):
        assert ExperimentConfig().store_backend == "memory"
        with pytest.raises(ExperimentError, match="unknown store backend"):
            ExperimentConfig(store_backend="floppy")

    def test_store_backend_serialization_round_trip(self):
        config = ExperimentConfig(store_backend="sqlite")
        data = config_to_dict(config)
        assert data["store_backend"] == "sqlite"
        assert config_from_dict(data).store_backend == "sqlite"

    def test_schema_version_bumped_for_store_backend(self):
        # v3 introduced the store_backend field; older checkpoints must be
        # recomputed rather than silently reused without the field.
        assert RESULT_SCHEMA_VERSION >= 3


class TestScenario:
    def test_scenario_covers_every_registered_backend(self):
        scenario = get_scenario("store-backends")
        assert scenario.axis == "store_backend"
        labels = [v.label for v in scenario.variants(full_scale=False)]
        assert labels == list(BACKEND_NAMES)
        for variant in scenario.variants(full_scale=False):
            config = scenario.config_for(variant, strategy="rjoin", seed=1)
            assert config.store_backend == variant.label
            assert config.window is not None, "scenario must apply GC pressure"

    def test_cells_expand_over_backends_and_seeds(self):
        scenario = get_scenario("store-backends")
        cells = scenario.cells(seeds=[1, 2], full_scale=False)
        assert len(cells) == len(BACKEND_NAMES) * 2
        assert {cell.config.store_backend for cell in cells} == set(BACKEND_NAMES)


class TestCrossBackendRuns:
    def test_experiment_answers_identical_across_backends(self):
        """A shrunken store-backends cell: every backend, same results."""
        scenario = get_scenario("store-backends")
        shrink = {
            "num_nodes": 12,
            "num_queries": 10,
            "num_tuples": 30,
            "warmup_tuples": 5,
        }
        summaries = {}
        for variant in scenario.variants(full_scale=False):
            config = scenario.config_for(
                variant, strategy="rjoin", seed=3, overrides=shrink
            )
            result = run_experiment(config)
            summaries[variant.label] = result
        memory = summaries["memory"]
        for backend, result in summaries.items():
            assert result.answers == memory.answers, backend
            assert result.summary["current_storage"] == (
                memory.summary["current_storage"]
            ), backend
            assert result.ranked_storage_current == (
                memory.ranked_storage_current
            ), backend
