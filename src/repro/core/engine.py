"""The public RJoin engine facade.

:class:`RJoinEngine` assembles the whole system: the Chord ring, the
runtime transport (the deterministic ``sim`` kernel or the concurrent
``asyncio`` actor runtime, selected by ``RJoinConfig.runtime``), the
messaging API with traffic accounting, one
:class:`~repro.core.node.RJoinNode` per DHT node, the indexing strategy, and
the answer registry.  Library users interact with three operations:

* :meth:`RJoinEngine.submit` — register a continuous query (SQL text or a
  parsed :class:`~repro.sql.ast.Query`) and obtain a
  :class:`~repro.core.answers.QueryHandle` that accumulates its answers,
* :meth:`RJoinEngine.remove_query` — retract a previously submitted query,
  deleting its state on every node (see :mod:`repro.core.lifecycle`),
* :meth:`RJoinEngine.publish` — insert a tuple into the network,
* :meth:`RJoinEngine.run` — drain the simulated network (deliver every
  pending message).

Metrics (network traffic, query-processing load, storage load) are available
at any time through :attr:`traffic`, :attr:`loads` and
:meth:`metrics_summary`, matching the definitions of the paper's Section 8.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from dataclasses import replace
from typing import (
    ContextManager,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.core.answers import Answer, QueryHandle
from repro.core.config import RJoinConfig
from repro.core.keys import tuple_index_keys
from repro.core.lifecycle import QueryLifecycleManager
from repro.core.membership import MembershipManager
from repro.core.node import NodeContext, RJoinNode
from repro.core.protocol import AnswerMessage, QueryState, RetractQueryMessage
from repro.core.strategy import IndexingStrategy, make_strategy
from repro.data.schema import Catalog, RelationSchema
from repro.data.tuples import Tuple
from repro.dht.api import DHTMessagingService
from repro.dht.chord import ChordRing
from repro.dht.hashing import IdentifierSpace
from repro.dht.loadbalance import IdMovementBalancer
from repro.errors import (
    DuplicateNodeError,
    EngineError,
    QueryRegistrationError,
    SchemaError,
    UnknownRelationError,
)
from repro.metrics.collectors import ChurnStats, LoadTracker
from repro.net.runtime import EventHandle, make_transport
from repro.net.simulator import SimulationKernel
from repro.net.stats import TrafficStats
from repro.obs.context import Observability
from repro.obs.instruments import histogram_percentiles
from repro.sql.ast import Query, WindowSpec
from repro.sql.parser import parse_query


class RJoinEngine:
    """A simulated DHT network running the RJoin algorithm."""

    def __init__(
        self,
        config: Optional[RJoinConfig] = None,
        catalog: Optional[Catalog] = None,
        strategy: Optional[IndexingStrategy] = None,
        store_backend: Optional[str] = None,
    ) -> None:
        """``store_backend`` overrides ``config.store_backend`` when given
        (``memory`` / ``sqlite`` / ``append-log``; see
        :func:`repro.data.backends.make_store`)."""
        self.config = config or RJoinConfig()
        if store_backend is not None:
            # replace() re-runs validation, so an unknown backend name fails
            # here rather than at the first node construction.
            self.config = replace(self.config, store_backend=store_backend)
        self.catalog = catalog or Catalog()
        self._rng = random.Random(self.config.seed)

        # Substrates -------------------------------------------------------
        self.space = IdentifierSpace(self.config.bits)
        self.transport = make_transport(self.config.runtime)
        #: The tracing/metrics facade, or ``None`` when observability is off
        #: (the instrumented paths then compile down to a single None check).
        self.obs: Optional[Observability] = None
        if self.config.observability == "on":
            self.obs = Observability(
                clock=lambda: self.transport.now,
                wall_clock=self.transport.wall_clock_spans,
                trace_path=self.config.trace_path,
            )
        self.traffic = TrafficStats()
        self.loads = LoadTracker()
        self.ring = ChordRing.create_network(
            self.config.num_nodes, space=self.space, seed=self.config.seed
        )
        self.api = DHTMessagingService(
            ring=self.ring,
            transport=self.transport,
            traffic=self.traffic,
            hop_delay=self.config.hop_delay,
            delay_jitter=self.config.delay_jitter,
            rng=random.Random(self.config.seed + 1),
            observability=self.obs,
        )
        self.strategy = strategy or make_strategy(self.config.strategy)

        # Application layer --------------------------------------------------
        altt_delta = self.config.resolve_altt_delta(self.api.max_transit_delay())
        self._context = NodeContext(
            api=self.api,
            space=self.space,
            config=self.config,
            strategy=self.strategy,
            loads=self.loads,
            catalog=self.catalog,
            rng=random.Random(self.config.seed + 2),
            clock=lambda: self.transport.now,
            sequence_clock=lambda: self._sequence,
            rate_oracle=self._oracle_rate,
            collect_answer=self._collect_answer,
            altt_delta=altt_delta,
            store_backend=self.config.store_backend,
            store_tuning=self.config.store_tuning,
            obs=self.obs,
            # Lifecycle callbacks resolve ``self.lifecycle`` / ``self.churn``
            # lazily: the context must exist before either does.
            resolve_owner=lambda query_id, default: self.lifecycle.resolve_owner(
                query_id, default
            ),
            is_retracted=lambda query_id: self.lifecycle.is_retracted(query_id),
            record_orphaned=lambda count: self.churn.record_orphaned(count),
            record_retracted=self._note_retraction_purge,
            record_candidates_scanned=lambda count: (
                self.churn.record_trigger_candidates_scanned(count)
            ),
            record_queries_triggered=lambda count: (
                self.churn.record_queries_triggered(count)
            ),
            record_shared_fanout=lambda count: (
                self.churn.record_shared_state_fanout(count)
            ),
        )
        self.nodes: Dict[str, RJoinNode] = {}
        for chord_node in self.ring.nodes:
            rjoin_node = RJoinNode(chord_node.address, self._context)
            self.nodes[chord_node.address] = rjoin_node
            self.api.register_handler(chord_node.address, rjoin_node.handle_envelope)

        # Load balancing -------------------------------------------------------
        self.balancer: Optional[IdMovementBalancer] = None
        if self.config.id_movement:
            self.balancer = IdMovementBalancer(
                self.ring, light_load_factor=self.config.light_load_factor
            )

        # Dynamic membership ---------------------------------------------------
        self.churn = ChurnStats()
        self.membership = MembershipManager(
            ring=self.ring,
            nodes=self.nodes,
            loads=self.loads,
            churn=self.churn,
            clock=lambda: self.transport.now,
        )
        self._churn_rng = random.Random(self.config.seed + 3)
        self._next_node_index = len(self.ring)
        #: Stale one-hop attempts recorded by nodes that have since departed;
        #: keeps the engine-wide counter monotone under churn.
        self._departed_stale_attempts = 0
        #: Join/leave operations requested while the network was mid-drain;
        #: applied at the next quiescent point (see :meth:`run`).
        self._pending_membership: List[tuple] = []

        # Bookkeeping -------------------------------------------------------
        self._handles: Dict[str, QueryHandle] = {}
        self._query_counter = 0
        self._sequence = 0
        self._published = 0
        self._oracle_counts: Dict[str, int] = {}
        #: Queries ever submitted (handles of removed queries leave
        #: :attr:`_handles` but stay counted here).
        self._submitted_total = 0
        #: Answers delivered to queries that have since been removed.
        self._retired_answers = 0
        #: Per-retraction purge accumulator fed by the nodes' ctx callback.
        self._retraction_purged = 0

        # Query lifecycle ------------------------------------------------------
        self.lifecycle = QueryLifecycleManager(
            ring=self.ring,
            nodes=self.nodes,
            handles=self._handles,
            churn=self.churn,
            clock=lambda: self.transport.now,
            enabled=self.config.owner_failover,
        )
        # Handle registrations re-home through the lifecycle layer's notion
        # of "home" (successor of the query's owner), not a key hash.
        self.membership.registration_home = self.lifecycle.registration_home

    # ------------------------------------------------------------------
    # schema management
    # ------------------------------------------------------------------
    def register_relation(
        self, name: str, attributes: Sequence[str]
    ) -> RelationSchema:
        """Register a relation schema with the engine's catalog."""
        return self.catalog.add_relation(name, attributes)

    def register_catalog(self, catalog: Catalog) -> None:
        """Merge every schema of ``catalog`` into the engine's catalog."""
        for schema in catalog:
            self.catalog.add(schema)

    # ------------------------------------------------------------------
    # continuous queries
    # ------------------------------------------------------------------
    def submit(
        self,
        query: Union[str, Query],
        owner: Optional[str] = None,
        window: Optional[WindowSpec] = None,
        process: bool = True,
    ) -> QueryHandle:
        """Submit a continuous query and return its :class:`QueryHandle`.

        Parameters
        ----------
        query:
            SQL text or an already built :class:`~repro.sql.ast.Query`.
        owner:
            Address of the submitting node; a random node is used by default.
        window:
            Optional sliding-window specification overriding the query's own.
        process:
            Whether to drain the network immediately (deliver the indexing
            messages).  Batch callers can pass ``False`` and call
            :meth:`run` once at the end.
        """
        if isinstance(query, str):
            parsed = parse_query(query, catalog=self.catalog)
        else:
            parsed = query.validate(self.catalog if len(self.catalog) else None)
        if window is not None:
            parsed = parsed.with_window(window)
        if owner is None:
            owner = self._rng.choice(self.ring.addresses)
        elif owner not in self.nodes:
            raise QueryRegistrationError(f"unknown owner node {owner!r}")

        self._query_counter += 1
        query_id = f"{owner}#{self._query_counter}"
        insertion_time = self.transport.now
        handle = QueryHandle(
            query_id=query_id,
            query=parsed,
            owner=owner,
            insertion_time=insertion_time,
        )
        self._handles[query_id] = handle
        self._submitted_total += 1
        self.lifecycle.register(handle)
        state = QueryState(
            query_id=query_id,
            owner=owner,
            query=parsed,
            insertion_time=insertion_time,
            is_input=True,
        )
        with self._operation("submit", f"sub-{query_id}", owner):
            self.nodes[owner].submit_query(state)
        if process:
            self.run()
        return handle

    def remove_query(self, query_id: str) -> int:
        """Retract a continuous query; returns the number of purged records.

        The network is drained first (so no rewritten query or answer of
        ``query_id`` is in flight), then a
        :class:`~repro.core.protocol.RetractQueryMessage` is sent from the
        owner to every live node — each deletes the query's local state:
        its input-query record, every rewritten query derived from it and
        any RIC round trip still pending on its behalf.  The engine-side
        handle is retired (its delivered answers stay counted in
        :attr:`total_answers` and remain readable on the handle object the
        caller holds), its replicated registration is dropped, and — once
        no active query remains — every node vacuums the state that only
        existed to serve queries: stored tuples and ALTT entries published
        before now, plus the candidate-table RIC caches.

        Removal leaves zero orphaned records on any node; the
        ``orphaned_state_records`` metric is the regression probe for that
        invariant.
        """
        handle = self._handles.get(query_id)
        if handle is None:
            raise EngineError(
                f"unknown (or already removed) query id {query_id!r}"
            )
        if self.transport.is_draining:
            raise EngineError(
                "remove_query is a synchronous engine operation; it must "
                "not be called from inside a network drain"
            )
        self.run()
        self.lifecycle.mark_retracted(query_id)
        origin = handle.owner
        if origin not in self.nodes:
            # Failover-disabled runs can retire queries whose owner has
            # departed; any live node can drive the retraction.
            origin = self.ring.owner_of_key(query_id).address
        retraction = RetractQueryMessage(query_id=query_id, origin=origin)
        self._retraction_purged = 0
        with self._operation("retract", f"rm-{query_id}", origin):
            for address in self.ring.addresses:
                self.api.send_direct(origin, retraction, address)
        self.run()
        purged = self._retraction_purged
        self.lifecycle.deregister(query_id)
        del self._handles[query_id]
        self._retired_answers += handle.count
        self.churn.record_query_removed(purged)
        if not self._handles:
            vacuumed = 0
            for node in self.nodes.values():
                vacuumed += node.vacuum(self.transport.now)
            if vacuumed:
                self.churn.record_vacuum(vacuumed)
        return purged

    def _note_retraction_purge(self, count: int) -> None:
        """Node-side retraction purges accumulate here (ctx callback)."""
        self._retraction_purged += count

    # ------------------------------------------------------------------
    # tuple publication
    # ------------------------------------------------------------------
    def publish(
        self,
        relation: str,
        values: Sequence[object],
        publisher: Optional[str] = None,
        process: bool = True,
    ) -> Tuple:
        """Publish a tuple of ``relation`` into the network (Procedure 1)."""
        if relation not in self.catalog:
            raise UnknownRelationError(
                f"relation {relation!r} is not registered with the engine"
            )
        if publisher is None:
            publisher = self._rng.choice(self.ring.addresses)
        elif publisher not in self.nodes:
            raise EngineError(f"unknown publisher node {publisher!r}")
        tup = self._build_tuple(relation, values, publisher)
        with self._operation("publish", f"pub-{tup.sequence}", publisher):
            self.nodes[publisher].publish_tuple(tup)
        published_before = self._published
        self._published += 1
        if process:
            self.run()
        self._maybe_gc(published_before)
        self._maybe_rebalance(published_before)
        return tup

    def publish_many(
        self,
        rows: Iterable[tuple],
        process_each: bool = True,
    ) -> List[Tuple]:
        """Publish ``(relation, values)`` pairs; returns the created tuples."""
        checked = self._checked_rows(rows, operation="publish_many")
        published = []
        for relation, values in checked:
            published.append(
                self.publish(relation, values, process=process_each)
            )
        if not process_each:
            self.run()
        return published

    def publish_batch(
        self,
        rows: Iterable[tuple],
        publisher: Optional[str] = None,
        process: bool = True,
    ) -> List[Tuple]:
        """Publish a whole batch of ``(relation, values)`` pairs at once.

        The vectorized fast path behind high-rate workloads: tuples are
        grouped per publishing node and handed to one ``multiSend`` each, so
        every indexing key is hashed once for the batch (memoised by the
        identifier space) and traffic accounting is coalesced per batch
        instead of per message.  The network is drained a single time at the
        end, and the garbage-collection / rebalancing hooks fire once per
        crossed scheduling boundary rather than once per tuple.

        ``publisher`` fixes the publishing node for the whole batch; by
        default each row draws a random publisher, matching :meth:`publish`.
        """
        if publisher is not None and publisher not in self.nodes:
            raise EngineError(f"unknown publisher node {publisher!r}")
        # Validate the whole batch (shape, relation, arity) before mutating any
        # engine state, so a bad row cannot leave phantom sequence numbers or
        # oracle counts behind.
        rows = self._checked_rows(rows, operation="publish_batch")
        published_before = self._published
        published: List[Tuple] = []
        by_publisher: Dict[str, List[Tuple]] = {}
        for relation, values in rows:
            address = publisher or self._rng.choice(self.ring.addresses)
            tup = self._build_tuple(relation, values, address)
            by_publisher.setdefault(address, []).append(tup)
            published.append(tup)
        for address, tuples in by_publisher.items():
            # One root span per publisher group, named after its first
            # sequence number: the whole multiSend fan-out of the group
            # shares one trace.
            trace_id = f"pub-{tuples[0].sequence}"
            with self._operation("publish_batch", trace_id, address):
                self.nodes[address].publish_tuples(tuples)
        self._published += len(published)
        if process:
            self.run()
            # One write transaction per node per batch: disk backends buffer
            # their inserts, so the whole drain's fan-out lands with a single
            # flush here instead of a lazy flush on the next probe.
            for node in self.nodes.values():
                node.tuple_store.flush()
        self._maybe_gc(published_before)
        self._maybe_rebalance(published_before)
        return published

    def _checked_rows(
        self, rows: Iterable[tuple], operation: str
    ) -> List[tuple]:
        """Validate ``(relation, values)`` rows without touching engine state.

        Every row must be a two-element ``(relation, values)`` pair naming a
        registered relation, with ``values`` a sequence of the schema's arity.
        Malformed rows raise a descriptive :class:`EngineError` (instead of the
        bare ``ValueError`` tuple unpacking would produce), unknown relations
        raise :class:`UnknownRelationError` and arity mismatches raise
        :class:`SchemaError` — all *before* any sequence number is assigned or
        any oracle count is recorded, so a bad row mid-batch cannot leave
        phantom state behind.
        """
        checked: List[tuple] = []
        for position, row in enumerate(rows):
            try:
                relation, values = row
            except (TypeError, ValueError):
                raise EngineError(
                    f"{operation} row {position} must be a (relation, values) "
                    f"pair; got {row!r}"
                ) from None
            if relation not in self.catalog:
                raise UnknownRelationError(
                    f"relation {relation!r} is not registered with the engine"
                )
            schema = self.catalog.get(relation)
            try:
                values = tuple(values)
            except TypeError:
                raise EngineError(
                    f"{operation} row {position}: values for relation "
                    f"{relation!r} must be a sequence; got {values!r}"
                ) from None
            if len(values) != schema.arity:
                raise SchemaError(
                    f"{operation} row {position}: tuple for relation "
                    f"{relation!r} has {len(values)} values but the schema "
                    f"has arity {schema.arity}"
                )
            checked.append((relation, values))
        return checked

    def _build_tuple(
        self, relation: str, values: Sequence[object], publisher: str
    ) -> Tuple:
        """Sequence, construct and oracle-record one publication."""
        schema = self.catalog.get(relation)
        # Construct (and schema-validate) first: the sequence counter and the
        # oracle counts only advance once the tuple is known to be well formed.
        tup = Tuple.from_schema(
            schema,
            values,
            pub_time=self.transport.now,
            sequence=self._sequence + 1,
            publisher=publisher,
        )
        self._sequence += 1
        self._record_oracle(tup, schema)
        return tup

    # ------------------------------------------------------------------
    # simulation control
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Deliver every pending message; returns the number of events processed.

        Ring-mutating operations requested while messages were in flight
        (graceful joins and leaves — see :meth:`add_node` /
        :meth:`remove_node`) are applied once the network is quiescent, so
        ownership never changes under a message that was routed to the old
        owner.  Crashes are the exception: they take effect immediately
        (see :meth:`crash_node`).
        """
        processed = self.transport.drain(
            max_events=self.config.max_events_per_publish
        )
        while self._pending_membership:
            ops, self._pending_membership = self._pending_membership, []
            for op in ops:
                self._apply_membership_op(op)
            processed += self.transport.drain(
                max_events=self.config.max_events_per_publish
            )
        return processed

    def tick(self, delta: float = 1.0) -> None:
        """Advance the simulated clock without publishing anything."""
        self.transport.advance_by(delta)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.transport.now

    @property
    def runtime(self) -> str:
        """Name of the runtime transport this engine runs on (``sim`` / ``asyncio``)."""
        return self.transport.name

    @property
    def kernel(self) -> SimulationKernel:
        """The deterministic event kernel (``sim`` runtime only).

        Tests and oracle harnesses use it for event-level surgery; on a
        concurrent runtime there is no kernel and this raises
        :class:`EngineError`.
        """
        kernel = self.transport.kernel
        if kernel is None:
            raise EngineError(
                f"the {self.transport.name!r} runtime has no simulation "
                "kernel; event-level control is a 'sim' runtime feature"
            )
        return kernel

    def close(self) -> None:
        """Shut the engine down: drain the transport and release resources.

        Idempotent.  Closes every node's tuple store (sqlite connections,
        log files) and stops the runtime's actors/loop.  The engine must
        not be used afterwards.
        """
        self.transport.shutdown()
        for node in self.nodes.values():
            node.tuple_store.close()
        if self.obs is not None:
            self.obs.close()

    def write_trace(self, path: str) -> int:
        """Dump the spans recorded so far as JSONL; returns the span count.

        Only meaningful with ``observability="on"`` and no ``trace_path``
        (spans retained in memory); with a ``trace_path`` the spans already
        stream to that file.
        """
        if self.obs is None:
            raise EngineError(
                "observability is off; enable it with "
                "RJoinConfig(observability='on') to record spans"
            )
        return self.obs.write_trace(path)

    def __enter__(self) -> "RJoinEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def published_tuples(self) -> int:
        """Number of tuples published so far."""
        return self._published

    # ------------------------------------------------------------------
    # answers
    # ------------------------------------------------------------------
    def _collect_answer(self, message: AnswerMessage, delivered_at: float) -> None:
        handle = self._handles.get(message.query_id)
        if handle is None:
            return
        handle.add_answer(
            Answer(
                query_id=message.query_id,
                values=message.values,
                produced_at=message.produced_at,
                delivered_at=delivered_at,
                producer=message.producer,
            )
        )
        if self.obs is not None:
            self.obs.record_answer_latency(delivered_at)

    def _operation(
        self, name: str, trace_id: str, node: str
    ) -> ContextManager[None]:
        """A root span for an engine-level operation (no-op when obs is off)."""
        if self.obs is None:
            return nullcontext()
        return self.obs.operation(name, trace_id, node)

    @property
    def handles(self) -> Mapping[str, QueryHandle]:
        """All submitted queries, keyed by query id."""
        return dict(self._handles)

    def handle(self, query_id: str) -> QueryHandle:
        """The handle of a previously submitted query."""
        try:
            return self._handles[query_id]
        except KeyError:
            raise EngineError(f"unknown query id {query_id!r}") from None

    @property
    def total_answers(self) -> int:
        """Total answers delivered across every submitted query.

        Includes the answers that queries removed through
        :meth:`remove_query` had received before their retraction.
        """
        return self._retired_answers + sum(
            handle.count for handle in self._handles.values()
        )

    # ------------------------------------------------------------------
    # rate oracle (used by the Worst baseline and by tests)
    # ------------------------------------------------------------------
    def _record_oracle(self, tup: Tuple, schema: RelationSchema) -> None:
        for key in tuple_index_keys(tup, schema):
            self._oracle_counts[key.text] = self._oracle_counts.get(key.text, 0) + 1

    def _oracle_rate(self, key_text: str) -> float:
        return float(self._oracle_counts.get(key_text, 0))

    # ------------------------------------------------------------------
    # garbage collection and load balancing hooks
    # ------------------------------------------------------------------
    @staticmethod
    def _crossed_boundary(before: int, after: int, every: int) -> bool:
        """Whether a ``every``-tuples scheduling boundary lies in ``(before, after]``."""
        return after // every > before // every

    def _maybe_gc(self, published_before: int) -> None:
        if not self._crossed_boundary(
            published_before, self._published, self.config.gc_every_tuples
        ):
            return
        if self.config.tuple_gc_window is None:
            return
        for node in self.nodes.values():
            node.gc_expired_state()

    def _maybe_rebalance(self, published_before: int) -> None:
        if self.balancer is None:
            return
        if not self._crossed_boundary(
            published_before, self._published, self.config.rebalance_every_tuples
        ):
            return
        self.rebalance()

    def rebalance(self) -> int:
        """Run one id-movement balancing round; returns the number of moves."""
        if self.balancer is None:
            raise EngineError("id movement is disabled in this configuration")
        self.run()  # do not move nodes while messages are in flight
        loads = {
            address: float(
                node.current_storage_items
                + self.loads.node(address).query_processing_load
            )
            for address, node in self.nodes.items()
        }
        moves = self.balancer.rebalance(loads)
        if moves:
            self.membership.rehome_misplaced(kind="move", subject="id-movement")
        return len(moves)

    # ------------------------------------------------------------------
    # dynamic membership: join / graceful leave / crash
    # ------------------------------------------------------------------
    def add_node(
        self, address: Optional[str] = None, node_id: Optional[int] = None
    ) -> str:
        """A new node joins the live ring; returns its address.

        The joining node takes over part of its successor's key range, and
        the state stored under those keys is re-homed onto it (counted in
        :attr:`churn`).  By default the node gets a fresh ``node-{index}``
        address and a uniformly random identifier, matching how the founding
        ring was placed.  When called while messages are in flight (e.g.
        from a kernel-scheduled churn event) the join is deferred to the
        next quiescent point so in-flight messages still reach the owner
        they were routed to.
        """
        if address is None:
            address = self._generate_address()
        elif self.ring.has_address(address):
            raise DuplicateNodeError(
                f"a node with address {address!r} already participates in the ring"
            )
        if self.transport.is_draining:
            self._pending_membership.append(("join", address, node_id))
            return address
        self.run()
        self._join_now(address, node_id)
        return address

    def remove_node(
        self, address: Optional[str] = None, graceful: bool = True
    ) -> str:
        """A node leaves the ring; returns the departed address.

        ``graceful=True`` models a cooperative departure: pending messages
        are drained first and the node hands its entire state (stored
        tuples, ALTT entries, input and rewritten queries) to the nodes now
        owning the keys, so no state is lost.  ``graceful=False`` is a
        crash (see :meth:`crash_node`).  Without an explicit ``address`` a
        random live node departs.
        """
        if not graceful:
            return self.crash_node(address)
        address = self._resolve_victim(address, operation="remove")
        if self.transport.is_draining:
            self._pending_membership.append(("leave", address))
            return address
        self.run()
        self._leave_now(address)
        return address

    def crash_node(self, address: Optional[str] = None) -> str:
        """A node fails abruptly; returns the crashed address.

        The node's entire state is destroyed (accounted as lost in
        :attr:`churn` and as dropped state in :attr:`loads`), and every
        message still in flight towards the dead address is destroyed by
        the network.  Unlike joins and leaves a crash takes effect
        immediately, even mid-drain — that is the point of modelling it.
        """
        address = self._resolve_victim(address, operation="crash")
        node = self.nodes.pop(address)
        # Owner failover: the survivor is the crashed node's ring successor —
        # exactly where submit() replicated the handle registrations — and it
        # must be resolved while the ring still knows the victim's position.
        owned, successor = self._failover_target(address)
        self.ring.remove_node(address)
        self.api.unregister_handler(address)
        if owned and successor is not None:
            owned_set = set(owned)
            rerouted = self.api.redirect_in_flight(
                address,
                lambda message: (
                    successor
                    if isinstance(message, AnswerMessage)
                    and message.query_id in owned_set
                    else None
                ),
            )
            if rerouted:
                self.churn.record_answers_rerouted(rerouted)
        self.api.drop_in_flight(address)
        self.membership.discard(node)
        if owned and successor is not None:
            self.lifecycle.failover_owner(address, successor)
        repaired = self.lifecycle.repair_replicas(address)
        if repaired:
            self.churn.record_replica_repairs(repaired)
        self._forget_departed(address, node)
        return address

    def _failover_target(self, address: str) -> tuple:
        """``(owned query ids, successor address)`` for a departing owner.

        Resolved on the *pre-departure* ring; the successor is ``None``
        when failover is disabled, the node owns no queries, or the ring is
        degenerate (single node).
        """
        if not self.lifecycle.enabled:
            return [], None
        owned = self.lifecycle.queries_owned_by(address)
        if not owned:
            return [], None
        chord_node = self.ring.node_by_address(address)
        successor = self.ring.successor_of(chord_node)
        if successor.address == address:
            return owned, None
        return owned, successor.address

    def schedule_membership_op(
        self,
        kind: str,
        delay: float = 0.0,
        address: Optional[str] = None,
        graceful: bool = True,
        min_nodes: int = 2,
        max_nodes: Optional[int] = None,
    ) -> EventHandle:
        """Schedule a membership change on the runtime transport.

        The operation fires ``delay`` (logical) time units from now — in the
        middle of whatever traffic is then in flight, which is exactly how
        real churn arrives.  ``min_nodes`` / ``max_nodes`` turn the fired
        event into a no-op when the ring has shrunk or grown past the bound
        by the time it triggers.  Returns a cancellable event handle.
        """
        if kind not in ("join", "leave", "crash"):
            raise EngineError(
                f"unknown membership operation {kind!r}; "
                "expected 'join', 'leave' or 'crash'"
            )
        return self.transport.schedule_in(
            delay, self._fire_membership_op, kind, address, graceful,
            min_nodes, max_nodes,
        )

    def _fire_membership_op(
        self,
        kind: str,
        address: Optional[str],
        graceful: bool,
        min_nodes: int,
        max_nodes: Optional[int],
    ) -> None:
        """Kernel callback: apply (or queue) one scheduled membership change."""
        if kind == "join":
            # Joins queued earlier in this drain have not grown the ring yet;
            # count them so a burst of events cannot overshoot ``max_nodes``.
            pending_joins = sum(
                1 for op in self._pending_membership if op[0] == "join"
            )
            if max_nodes is not None and len(self.ring) + pending_joins >= max_nodes:
                return
            self.add_node(address)
            return
        # Leaves queued earlier in this drain have not shrunk the ring yet;
        # count them so a burst of events cannot undershoot ``min_nodes``.
        pending_leaves = sum(1 for op in self._pending_membership if op[0] == "leave")
        if len(self.ring) - pending_leaves <= max(min_nodes, 1):
            return
        if address is not None and not self.ring.has_address(address):
            return
        if kind == "crash" or not graceful:
            self.crash_node(address)
        else:
            self.remove_node(address, graceful=True)

    def _apply_membership_op(self, op: tuple) -> None:
        """Apply one deferred join/leave at a quiescent point."""
        kind = op[0]
        if kind == "join":
            _, address, node_id = op
            if not self.ring.has_address(address):
                self._join_now(address, node_id)
        elif kind == "leave":
            _, address = op
            if self.ring.has_address(address) and len(self.ring) > 1:
                self._leave_now(address)

    def _join_now(self, address: str, node_id: Optional[int]) -> None:
        if node_id is None:
            node_id = self.ring.random_free_identifier(self._churn_rng)
        chord_node = self.ring.add_node(address, node_id)
        rjoin_node = RJoinNode(address, self._context)
        self.nodes[address] = rjoin_node
        self.api.register_handler(address, rjoin_node.handle_envelope)
        # Only the new node's successor can hold keys the newcomer now owns.
        successor = self.ring.successor_of(chord_node)
        displaced = [] if successor.address == address else [successor.address]
        self.membership.rehome_misplaced(displaced, kind="join", subject=address)

    def _leave_now(self, address: str) -> None:
        node = self.nodes.pop(address)
        # A cooperative departure re-registers the leaver's queries on its
        # successor just like a crash does — only without anything to lose.
        owned, successor = self._failover_target(address)
        self.ring.remove_node(address)
        self.api.unregister_handler(address)
        if owned and successor is not None:
            self.lifecycle.failover_owner(address, successor)
        self.membership.handoff(node)
        self._forget_departed(address, node)

    def _forget_departed(self, address: str, node: RJoinNode) -> None:
        """Purge every trace of a departed node from the survivors.

        RIC state pointing at the departed address — candidate-table
        entries, per-query piggy-backed caches, pending RIC round trips —
        is invalidated *eagerly* (churn-aware RIC): the lazy ownership check
        in ``RJoinNode._send_query`` would reject it anyway, but only after
        a stale one-hop attempt per affected indexing decision.  The
        departed node's store is also closed so backends holding external
        resources (sqlite connections) release them promptly.
        """
        for survivor in self.nodes.values():
            survivor.forget_address(address)
        self._departed_stale_attempts += node.stale_one_hop_attempts
        node.tuple_store.close()

    def _resolve_victim(self, address: Optional[str], operation: str) -> str:
        if len(self.ring) <= 1:
            raise EngineError(f"cannot {operation} the only node of the ring")
        if address is None:
            return self._churn_rng.choice(self.ring.addresses)
        if address not in self.nodes:
            raise EngineError(f"cannot {operation} unknown node {address!r}")
        return address

    def _generate_address(self) -> str:
        while True:
            address = f"node-{self._next_node_index}"
            self._next_node_index += 1
            if address not in self.nodes and not self.ring.has_address(address):
                return address

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def storage_distribution(self, current: bool = True) -> List[int]:
        """Per-node storage load, sorted decreasing.

        ``current=True`` reads the live node state (reflecting garbage
        collection and id movement); ``current=False`` returns the cumulative
        storage load recorded by the load tracker.
        """
        if current:
            return sorted(
                (node.current_storage_items for node in self.nodes.values()),
                reverse=True,
            )
        return self.loads.ranked_storage_load()

    def qpl_distribution(self) -> List[int]:
        """Per-node query-processing load, sorted decreasing."""
        return self.loads.ranked_query_processing_load()

    def metrics_summary(self) -> Dict[str, float]:
        """A flat summary of the paper's three metrics plus answer counts."""
        num_nodes = len(self.ring)
        return {
            "nodes": float(num_nodes),
            "published_tuples": float(self._published),
            "submitted_queries": float(self._submitted_total),
            "active_queries": float(len(self._handles)),
            "total_messages": float(self.traffic.total_messages),
            "ric_messages": float(self.traffic.total_ric_messages),
            "messages_per_node": self.traffic.messages_per_node(num_nodes),
            "ric_messages_per_node": self.traffic.ric_messages_per_node(num_nodes),
            "total_qpl": float(self.loads.total_query_processing_load),
            "qpl_per_node": self.loads.qpl_per_node(num_nodes),
            "total_storage": float(self.loads.total_storage_load),
            "storage_per_node": self.loads.storage_per_node(num_nodes),
            "current_storage": float(self.loads.total_current_storage),
            "answers": float(self.total_answers),
            "participating_nodes": float(self.loads.participating_nodes()),
            # Dynamic membership (node churn) ------------------------------
            "membership_events": float(self.churn.total_events),
            "joins": float(self.churn.joins),
            "leaves": float(self.churn.leaves),
            "crashes": float(self.churn.crashes),
            "records_rehomed": float(self.churn.records_rehomed),
            "bytes_rehomed": float(self.churn.bytes_rehomed),
            "records_lost": float(self.churn.records_lost),
            "bytes_lost": float(self.churn.bytes_lost),
            "dropped_messages": float(self.api.dropped_messages),
            "stale_one_hop_attempts": float(
                self._departed_stale_attempts
                + sum(node.stale_one_hop_attempts for node in self.nodes.values())
            ),
            # Query lifecycle (removal + owner failover) -------------------
            "queries_removed": float(self.churn.queries_removed),
            "records_retracted": float(self.churn.records_retracted),
            "records_vacuumed": float(self.churn.records_vacuumed),
            "orphaned_state_records": float(self.churn.orphaned_state_records),
            "failover_reregistrations": float(
                self.churn.failover_reregistrations
            ),
            "replica_repairs": float(self.churn.replica_repairs),
            "answers_rerouted": float(self.churn.answers_rerouted),
            # Million-query matching (query index + shared state) ----------
            "queries_triggered": float(self.churn.queries_triggered),
            "trigger_candidates_scanned": float(
                self.churn.trigger_candidates_scanned
            ),
            "shared_state_fanout": float(self.churn.shared_state_fanout),
            # Observability (latency/load histograms; zeros when off) ------
            **histogram_percentiles(
                self.obs.registry if self.obs is not None else None
            ),
        }

    @property
    def store_backend(self) -> str:
        """Name of the tuple-store backend every node of this engine uses."""
        return self.config.store_backend

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RJoinEngine(nodes={len(self.ring)}, strategy={self.strategy.name}, "
            f"queries={len(self._handles)}, tuples={self._published})"
        )
