"""Round-trip tests for the packed row codec behind the sqlite payloads."""

from __future__ import annotations

import pytest

from repro.data.rowcodec import pack_values, unpack_values
from repro.errors import CodecError


def roundtrip(values: tuple) -> tuple:
    return unpack_values(pack_values(values))


class TestRoundTrips:
    def test_homogeneous_int_rows_take_the_packed_path(self):
        values = (1, -2, 3_000_000_000, 0)
        payload = pack_values(values)
        assert payload[0:1] == b"I"
        assert roundtrip(values) == values

    def test_mixed_scalar_rows(self):
        values = ("text", 42, 3.5, None, True, False, b"\x00raw")
        payload = pack_values(values)
        assert payload[0:1] == b"V"
        result = roundtrip(values)
        assert result == values
        assert [type(v) for v in result] == [type(v) for v in values]

    def test_bools_do_not_collapse_to_ints(self):
        # bool is an int subclass; the fast path must not swallow it.
        values = (True, False, 1, 0)
        result = roundtrip(values)
        assert result == values
        assert [type(v) for v in result] == [bool, bool, int, int]

    def test_huge_ints_fall_back_to_pickle(self):
        values = (1 << 80, -(1 << 70))
        payload = pack_values(values)
        assert payload[0:1] == b"P"
        assert roundtrip(values) == values

    def test_exotic_values_fall_back_to_pickle(self):
        values = ((1, 2), {"k": "v"}, [3])
        payload = pack_values(values)
        assert payload[0:1] == b"P"
        assert roundtrip(values) == values

    def test_unicode_and_empty_strings(self):
        values = ("", "héllo ∞", "\x1f")
        assert roundtrip(values) == values

    def test_empty_row(self):
        assert roundtrip(()) == ()
        assert pack_values(())[0:1] == b"I"

    def test_int_mixed_with_huge_int_falls_back(self):
        values = (1, 1 << 80, "x")
        assert pack_values(values)[0:1] == b"P"
        assert roundtrip(values) == values

    def test_corrupt_tag_raises(self):
        with pytest.raises(CodecError, match="unknown row-codec tag"):
            unpack_values(b"V\xff")
