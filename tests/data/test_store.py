"""Tests for the per-node tuple store."""

import pytest

from repro.data.schema import RelationSchema
from repro.data.store import TupleStore
from repro.data.tuples import Tuple


@pytest.fixture
def schema():
    return RelationSchema("R", ["a", "b"])


def make_tuple(schema, values, seq, pub_time=0.0):
    return Tuple.from_schema(schema, values, pub_time=pub_time, sequence=seq)


class TestTupleStore:
    def test_add_and_lookup_by_key(self, schema):
        store = TupleStore()
        tup = make_tuple(schema, (1, 2), 1)
        store.add("R.a=1", tup, now=0.0)
        assert store.tuples_for_key("R.a=1") == [tup]
        assert store.tuples_for_key("other") == []

    def test_len_and_cumulative(self, schema):
        store = TupleStore()
        for seq in range(5):
            store.add("k", make_tuple(schema, (seq, seq), seq), now=float(seq))
        assert len(store) == 5
        assert store.cumulative_stored == 5
        store.clear()
        assert len(store) == 0
        assert store.cumulative_stored == 5  # cumulative survives clears

    def test_same_tuple_under_two_keys_costs_two_slots(self, schema):
        store = TupleStore()
        tup = make_tuple(schema, (1, 2), 1)
        store.add("k1", tup, now=0.0)
        store.add("k2", tup, now=0.0)
        assert len(store) == 2
        assert store.distinct_tuples() == 1

    def test_prefix_lookup_deduplicates(self, schema):
        store = TupleStore()
        tup = make_tuple(schema, (1, 2), 1)
        store.add("R\x1fa\x1f1", tup, now=0.0)
        store.add("R\x1fa\x1f2", make_tuple(schema, (2, 2), 2), now=0.0)
        store.add("S\x1fa\x1f1", make_tuple(schema, (3, 3), 3), now=0.0)
        result = store.tuples_for_prefix("R\x1fa\x1f")
        assert len(result) == 2

    def test_remove_older_than(self, schema):
        store = TupleStore()
        store.add("k", make_tuple(schema, (1, 1), 1), now=0.0)
        store.add("k", make_tuple(schema, (2, 2), 2), now=5.0)
        removed = store.remove_older_than("k", cutoff=3.0)
        assert removed == 1
        assert len(store.tuples_for_key("k")) == 1

    def test_remove_older_than_missing_key(self, schema):
        store = TupleStore()
        assert store.remove_older_than("nope", 1.0) == 0

    def test_remove_published_before(self, schema):
        store = TupleStore()
        store.add("k", make_tuple(schema, (1, 1), 1, pub_time=1.0), now=0.0)
        store.add("k", make_tuple(schema, (2, 2), 2, pub_time=9.0), now=0.0)
        assert store.remove_published_before(5.0) == 1
        assert store.has_key("k")

    def test_keys_and_iteration(self, schema):
        store = TupleStore()
        store.add("k1", make_tuple(schema, (1, 1), 1), now=0.0)
        store.add("k2", make_tuple(schema, (2, 2), 2), now=0.0)
        assert set(store.keys()) == {"k1", "k2"}
        assert len(list(store)) == 2

    def test_records_expose_metadata(self, schema):
        store = TupleStore()
        store.add("k", make_tuple(schema, (1, 1), 7), now=3.5)
        record = store.records_for_key("k")[0]
        assert record.stored_at == 3.5
        assert record.identity == ("R", 7)
        assert record.key == "k"


# ---------------------------------------------------------------------------
# Randomized equivalence against a naive scan-based reference
# ---------------------------------------------------------------------------
class NaiveStore:
    """The original O(total-keys) scan semantics, used as an oracle."""

    def __init__(self):
        self.by_key = {}

    def add(self, key, tup, now):
        self.by_key.setdefault(key, []).append((tup, now))

    def remove_older_than(self, key, cutoff):
        records = self.by_key.get(key, [])
        kept = [(t, s) for t, s in records if s >= cutoff]
        removed = len(records) - len(kept)
        if kept:
            self.by_key[key] = kept
        elif key in self.by_key:
            del self.by_key[key]
        return removed

    def remove_published_before(self, cutoff):
        removed = 0
        for key in list(self.by_key):
            records = self.by_key[key]
            kept = [(t, s) for t, s in records if t.pub_time >= cutoff]
            removed += len(records) - len(kept)
            if kept:
                self.by_key[key] = kept
            else:
                del self.by_key[key]
        return removed

    def remove_sequenced_before(self, cutoff):
        removed = 0
        for key in list(self.by_key):
            records = self.by_key[key]
            kept = [(t, s) for t, s in records if t.sequence >= cutoff]
            removed += len(records) - len(kept)
            if kept:
                self.by_key[key] = kept
            else:
                del self.by_key[key]
        return removed

    def tuples_for_key(self, key):
        return sorted(
            (t for t, _ in self.by_key.get(key, [])),
            key=lambda t: (t.pub_time, t.sequence),
        )

    def tuples_for_prefix(self, prefix):
        seen, result = set(), []
        for key, records in self.by_key.items():
            if not key.startswith(prefix):
                continue
            for tup, _ in records:
                if tup.identity not in seen:
                    seen.add(tup.identity)
                    result.append(tup)
        return sorted(result, key=lambda t: (t.pub_time, t.sequence))

    def __len__(self):
        return sum(len(records) for records in self.by_key.values())

    def distinct_tuples(self):
        return len({t.identity for records in self.by_key.values() for t, _ in records})


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
def test_indexed_store_matches_naive_scan_on_random_workload(schema, seed):
    """Prefix index, heap expiry and counters agree with the scan oracle."""
    import random

    rng = random.Random(seed)
    store, naive = TupleStore(), NaiveStore()
    relations = ["R", "S"]
    attributes = ["a", "b"]
    clock = 0.0
    for step in range(400):
        clock += rng.random()
        op = rng.random()
        if op < 0.55:
            seq = step + 1
            tup = make_tuple(
                schema, (rng.randint(0, 5), rng.randint(0, 5)), seq,
                pub_time=clock - rng.random(),  # jittered arrival
            )
            key = (
                f"{rng.choice(relations)}\x1f{rng.choice(attributes)}"
                f"\x1f{rng.randint(0, 9)!r}"
            )
            store.add(key, tup, now=clock)
            naive.add(key, tup, now=clock)
        elif op < 0.7:
            cutoff = clock - rng.uniform(0.0, 20.0)
            assert store.remove_published_before(cutoff) == \
                naive.remove_published_before(cutoff)
        elif op < 0.8:
            cutoff = step - rng.randint(0, 50)
            assert store.remove_sequenced_before(cutoff) == \
                naive.remove_sequenced_before(cutoff)
        elif op < 0.9:
            key = rng.choice(sorted(store.keys())) if len(store) else "none"
            cutoff = clock - rng.uniform(0.0, 10.0)
            assert store.remove_older_than(key, cutoff) == \
                naive.remove_older_than(key, cutoff)
        else:
            prefix = f"{rng.choice(relations)}\x1f{rng.choice(attributes)}\x1f"
            assert store.tuples_for_prefix(prefix) == naive.tuples_for_prefix(prefix)
        # Aggregates stay in lock-step after every operation.
        assert len(store) == len(naive)
        assert store.distinct_tuples() == naive.distinct_tuples()
        assert sorted(store.keys()) == sorted(naive.by_key.keys())
    for key in sorted(naive.by_key):
        assert store.tuples_for_key(key) == naive.tuples_for_key(key)


def test_prefix_results_are_publication_ordered(schema):
    store = TupleStore()
    store.add("R\x1fa\x1f1", make_tuple(schema, (1, 1), 3, pub_time=5.0), now=0.0)
    store.add("R\x1fa\x1f2", make_tuple(schema, (2, 2), 1, pub_time=1.0), now=0.0)
    store.add("R\x1fa\x1f3", make_tuple(schema, (3, 3), 2, pub_time=1.0), now=0.0)
    result = store.tuples_for_prefix("R\x1fa\x1f")
    assert [t.sequence for t in result] == [1, 2, 3]


def test_prefix_cache_invalidated_by_mutations(schema):
    store = TupleStore()
    prefix = "R\x1fa\x1f"
    store.add(prefix + "1", make_tuple(schema, (1, 1), 1, pub_time=1.0), now=1.0)
    assert len(store.tuples_for_prefix(prefix)) == 1
    store.add(prefix + "2", make_tuple(schema, (2, 2), 2, pub_time=2.0), now=2.0)
    assert len(store.tuples_for_prefix(prefix)) == 2
    store.remove_published_before(1.5)
    assert [t.sequence for t in store.tuples_for_prefix(prefix)] == [2]
    store.remove_key(prefix + "2")
    assert store.tuples_for_prefix(prefix) == []


def test_non_canonical_prefix_falls_back_to_scan(schema):
    store = TupleStore()
    store.add("R\x1fa\x1f10", make_tuple(schema, (1, 1), 1), now=0.0)
    store.add("R\x1fa\x1f11", make_tuple(schema, (2, 2), 2), now=0.0)
    store.add("R\x1fa\x1f20", make_tuple(schema, (3, 3), 3), now=0.0)
    store.add("plain-key", make_tuple(schema, (4, 4), 4), now=0.0)
    # A prefix extending into the value component is not a canonical bucket.
    assert len(store.tuples_for_prefix("R\x1fa\x1f1")) == 2
    assert len(store.tuples_for_prefix("plain")) == 1
    assert len(store.tuples_for_prefix("")) == 4
