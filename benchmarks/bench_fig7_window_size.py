"""Figure 7 — effect of the sliding-window size (W).

Regenerates the per-tuple traffic cost and the ranked-node QPL / storage
distributions for sliding-window joins with increasing window sizes.

Expected shape (paper): larger windows keep more combinations alive, so
traffic, query-processing load and storage all grow with W; small windows
garbage-collect rewritten queries early and keep the state small.
"""

import pytest

from repro.experiments.figures import figure7


@pytest.mark.benchmark(group="figure7")
def test_figure7_window_size(benchmark):
    result = benchmark.pedantic(figure7, rounds=1, iterations=1)
    print()
    print(result.to_text())

    qpl = result.series["qpl_per_node"]
    storage = result.series["total_current_storage"]
    traffic = result.series["messages_per_node_per_tuple"]

    # Larger windows -> more query processing, more live state, more traffic.
    assert qpl[-1] > qpl[0]
    assert storage[-1] > storage[0]
    assert traffic[-1] >= traffic[0]
    # The ranked distributions keep the same pattern: every window size keeps
    # a comparable share of nodes involved.
    sizes = result.x_values
    small = result.distributions[f"qpl_ranked_W{sizes[0]}"]
    large = result.distributions[f"qpl_ranked_W{sizes[-1]}"]
    assert sum(1 for v in large if v > 0) >= sum(1 for v in small if v > 0)
