"""Fixture file that does not parse (exercises the parse-error pseudo-rule)."""


def broken(:
    return None
