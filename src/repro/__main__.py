"""``python -m repro`` — the umbrella command-line entry point.

Dispatches to the existing sub-CLIs without re-implementing them::

    python -m repro experiments run baseline --out results/
    python -m repro experiments list
    python -m repro analysis check
    python -m repro obs summarize trace.jsonl

The direct module invocations (``python -m repro.experiments``,
``python -m repro.analysis``, ``python -m repro.obs``) keep working
unchanged; the umbrella just strips its subcommand and forwards the
remaining arguments verbatim.
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

#: Subcommand name → ``main(argv)``-style callable, resolved lazily so the
#: umbrella stays importable even when a subsystem's heavier dependencies
#: are unavailable in a trimmed environment.
_SUBCOMMANDS = ("experiments", "analysis", "obs")

_USAGE = """\
usage: python -m repro <command> [args...]

commands:
  experiments   scenario-grid runner (run / list / report); see
                `python -m repro experiments --help`
  analysis      in-tree static analysis (check / baseline); see
                `python -m repro analysis --help`
  obs           trace-file inspection (summarize / convert); see
                `python -m repro obs --help`
"""


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Dispatch ``repro <subcommand> args...`` to the matching sub-CLI."""
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0 if args else 2
    command, rest = args[0], args[1:]
    if command == "experiments":
        from repro.experiments.cli import main as experiments_main

        return experiments_main(rest)
    if command == "analysis":
        from repro.analysis.cli import main as analysis_main

        return analysis_main(rest)
    if command == "obs":
        from repro.obs.cli import main as obs_main

        return obs_main(rest)
    known = ", ".join(_SUBCOMMANDS)
    print(
        f"unknown command {command!r}; known commands: {known}",
        file=sys.stderr,
    )
    print(_USAGE, end="", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
