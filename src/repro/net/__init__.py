"""Network runtimes: the transport contract and its implementations.

The paper's evaluation runs many Chord nodes inside a single process and
measures message counts, query-processing load and storage load (Section 8).
This subpackage provides the node↔network boundary used for that purpose:

* :class:`~repro.net.runtime.Transport` — the transport-neutral runtime
  contract (delivery, in-flight surgery, timers, clock + drain loop), with
  :func:`~repro.net.runtime.make_transport` as the registry factory,
* :class:`~repro.net.simulator.SimulationKernel` /
  :class:`~repro.net.simulator.SimTransport` — the deterministic
  priority-queue discrete-event runtime (the test/oracle harness),
* :class:`~repro.net.runtime_asyncio.AsyncioTransport` — the concurrent
  runtime: one actor task per address, bounded inboxes, backpressure,
* :class:`~repro.net.messages.Message` / :class:`~repro.net.messages.Envelope`
  — the base message abstraction and its routing metadata,
* :class:`~repro.net.stats.TrafficStats` — per-node accounting of messages
  sent and routed (the paper's definition of network traffic).

The model follows the relaxed asynchronous system model of Section 2: there
is a known upper bound on message transmission delay; a message sent at time
``t`` over ``h`` hops is delivered at ``t + h * hop_delay`` (logical time on
the concurrent runtime).
"""

from repro.net.messages import Envelope, Message
from repro.net.runtime import (
    DEFAULT_TRANSPORT,
    TRANSPORT_NAMES,
    EventHandle,
    Transport,
    make_transport,
)
from repro.net.simulator import SimTransport, SimulationKernel
from repro.net.stats import TrafficStats

__all__ = [
    "DEFAULT_TRANSPORT",
    "Envelope",
    "EventHandle",
    "Message",
    "SimTransport",
    "SimulationKernel",
    "TRANSPORT_NAMES",
    "TrafficStats",
    "Transport",
    "make_transport",
]
