"""Tests for traffic accounting."""

from repro.net.stats import TrafficStats


class TestTrafficStats:
    def test_record_send_and_route(self):
        stats = TrafficStats()
        stats.record_send("a")
        stats.record_route("b")
        assert stats.node("a").sent == 1
        assert stats.node("b").routed == 1
        assert stats.total_messages == 2

    def test_ric_subsets(self):
        stats = TrafficStats()
        stats.record_send("a", is_ric=True)
        stats.record_route("b", is_ric=True)
        stats.record_send("a", is_ric=False)
        assert stats.total_ric_messages == 2
        assert stats.node("a").ric_sent == 1
        assert stats.node("a").ric_total == 1
        assert stats.node("a").total == 2

    def test_record_path_charges_sender_and_forwarders(self):
        stats = TrafficStats()
        hops = stats.record_path("s", ["f1", "f2", "dest"])
        assert hops == 3
        assert stats.node("s").sent == 1
        assert stats.node("f1").routed == 1
        assert stats.node("f2").routed == 1
        assert stats.node("dest").total == 0
        assert stats.total_messages == 3

    def test_per_node_averages(self):
        stats = TrafficStats()
        for _ in range(10):
            stats.record_send("a")
        assert stats.messages_per_node(5) == 2.0
        assert stats.messages_per_node(0) == 0.0
        assert stats.ric_messages_per_node(5) == 0.0

    def test_ranked_totals_sorted_descending(self):
        stats = TrafficStats()
        stats.record_send("a")
        for _ in range(3):
            stats.record_send("b")
        assert stats.ranked_totals() == [3, 1]

    def test_snapshot_and_reset(self):
        stats = TrafficStats()
        stats.record_send("a", is_ric=True)
        assert stats.snapshot() == (1, 1)
        stats.reset()
        assert stats.snapshot() == (0, 0)
        assert stats.per_node() == {}

    def test_unknown_node_has_zero_counters(self):
        stats = TrafficStats()
        assert stats.node("ghost").total == 0
