"""Tests for the send / multiSend / sendDirect messaging API."""

from dataclasses import dataclass

import pytest

from repro.dht.api import DHTMessagingService
from repro.dht.chord import ChordRing
from repro.dht.hashing import IdentifierSpace
from repro.errors import RoutingError
from repro.net.messages import Message
from repro.net.simulator import SimulationKernel
from repro.net.stats import TrafficStats


@dataclass
class Ping(Message):
    payload: str = "ping"


@pytest.fixture
def setup():
    ring = ChordRing.create_network(16, space=IdentifierSpace(16), seed=1)
    kernel = SimulationKernel()
    traffic = TrafficStats()
    api = DHTMessagingService(ring, kernel, traffic, hop_delay=1.0)
    received = []
    for address in ring.addresses:
        api.register_handler(
            address, lambda env, addr=address: received.append((addr, env))
        )
    return ring, kernel, traffic, api, received


class TestSend:
    def test_send_reaches_owner(self, setup):
        ring, kernel, traffic, api, received = setup
        identifier = ring.space.hash_key("some-key")
        owner = ring.successor(identifier)
        api.send(ring.addresses[0], Ping(), identifier)
        kernel.run_until_idle()
        assert len(received) == 1
        address, envelope = received[0]
        assert address == owner.address
        assert envelope.destination == owner.address
        assert envelope.hops == len(envelope.route) - 1

    def test_send_charges_each_transmitting_node(self, setup):
        ring, kernel, traffic, api, received = setup
        identifier = ring.space.hash_key("k")
        envelope = api.send(ring.addresses[0], Ping(), identifier)
        kernel.run_until_idle()
        assert traffic.total_messages == envelope.hops

    def test_local_delivery_costs_nothing(self, setup):
        ring, kernel, traffic, api, received = setup
        identifier = ring.space.hash_key("local")
        owner = ring.successor(identifier)
        api.send(owner.address, Ping(), identifier)
        kernel.run_until_idle()
        assert traffic.total_messages == 0
        assert len(received) == 1

    def test_delivery_delay_proportional_to_hops(self, setup):
        ring, kernel, traffic, api, received = setup
        identifier = ring.space.hash_key("delay")
        envelope = api.send(ring.addresses[0], Ping(), identifier)
        assert envelope.delivered_at == pytest.approx(envelope.hops * 1.0)
        kernel.run_until_idle()
        assert kernel.now == pytest.approx(envelope.delivered_at)

    def test_ric_messages_counted_separately(self, setup):
        ring, kernel, traffic, api, received = setup
        identifier = ring.space.hash_key("ric")
        envelope = api.send(ring.addresses[0], Ping(), identifier, is_ric=True)
        kernel.run_until_idle()
        assert traffic.total_ric_messages == envelope.hops
        assert traffic.total_messages == envelope.hops


class TestMultiSend:
    def test_multi_send_delivers_each_message(self, setup):
        ring, kernel, traffic, api, received = setup
        identifiers = [ring.space.hash_key(f"k{i}") for i in range(5)]
        messages = [Ping(payload=f"m{i}") for i in range(5)]
        api.multi_send(ring.addresses[0], messages, identifiers)
        kernel.run_until_idle()
        assert len(received) == 5

    def test_multi_send_length_mismatch(self, setup):
        ring, kernel, traffic, api, received = setup
        with pytest.raises(RoutingError):
            api.multi_send(ring.addresses[0], [Ping()], [1, 2])


class TestSendDirect:
    def test_send_direct_one_hop(self, setup):
        ring, kernel, traffic, api, received = setup
        sender, destination = ring.addresses[0], ring.addresses[5]
        envelope = api.send_direct(sender, Ping(), destination)
        kernel.run_until_idle()
        assert envelope.hops == 1
        assert traffic.total_messages == 1
        assert received[0][0] == destination

    def test_send_direct_to_self_is_free(self, setup):
        ring, kernel, traffic, api, received = setup
        sender = ring.addresses[0]
        api.send_direct(sender, Ping(), sender)
        kernel.run_until_idle()
        assert traffic.total_messages == 0
        assert received[0][0] == sender


class TestDeliveryEdgeCases:
    def test_unregistered_destination_drops_message(self, setup):
        ring, kernel, traffic, api, received = setup
        destination = ring.addresses[3]
        api.unregister_handler(destination)
        api.send_direct(ring.addresses[0], Ping(), destination)
        kernel.run_until_idle()
        assert api.dropped_messages == 1
        assert not received

    def test_max_transit_delay_bounds_hops(self, setup):
        ring, kernel, traffic, api, received = setup
        assert api.max_transit_delay() >= ring.space.bits * 0.0

    def test_jitter_adds_delay(self):
        ring = ChordRing.create_network(8, space=IdentifierSpace(16), seed=2)
        kernel = SimulationKernel()
        api = DHTMessagingService(
            ring, kernel, TrafficStats(), hop_delay=1.0, delay_jitter=0.5
        )
        api.register_handler(ring.addresses[0], lambda env: None)
        identifier = ring.space.hash_key("jitter")
        envelope = api.send(ring.addresses[0], Ping(), identifier)
        assert envelope.delivered_at >= envelope.hops * 1.0
