"""Wire messages of the RJoin protocol.

The message vocabulary corresponds to the procedures of Section 3, the RIC
machinery of Sections 6–7 and answer delivery:

* :class:`NewTupleMessage` — Procedure 1/2: a published tuple indexed at a
  given key (attribute or value level),
* :class:`IndexQueryMessage` — an input query being indexed at the attribute
  level,
* :class:`EvalMessage` — Procedure 3: a rewritten query being (re)indexed,
  together with the key it was indexed under and piggy-backed RIC
  information,
* :class:`RicRequestMessage` / :class:`RicReplyMessage` — the chained RIC
  information gathering of Section 6 (each candidate appends its observation
  and forwards the request; the last one replies directly to the origin),
* :class:`AnswerMessage` — an answer of an input query, sent directly to the
  node that submitted it,
* :class:`RetractQueryMessage` — the lifecycle layer's retraction of a
  continuous query: broadcast to every node so each one purges the query's
  local state (input record, rewritten queries, pending RIC round trips).

:class:`QueryState` is the mutable evaluation state shipped inside the query
messages: the (rewritten) query, the identity and owner of the originating
input query, its insertion time, the window state of the tuples consumed so
far, and the piggy-backed RIC entries.

Multi-query sharing (PR 8) extends the state with *subscribers*: when two
continuous queries reach the same rewritten form (same residual query,
window state and insertion time — equal modulo query id), the storing node
keeps one physical record whose state lists every interested input query as
a :class:`Subscriber`.  The record triggers once per arriving tuple and the
answer fans out to each subscriber's owner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple as TupleT

from repro.core.keys import IndexKey
from repro.core.ric import RicEntry
from repro.core.windows import WindowState
from repro.data.tuples import Tuple
from repro.net.messages import Message
from repro.sql.ast import Query


@dataclass(frozen=True)
class Subscriber:
    """One input query interested in a shared query state's answers."""

    query_id: str
    owner: str


@dataclass
class QueryState:
    """The evaluation state of a continuous query (input or rewritten).

    ``query_id``/``owner`` identify the *primary* subscriber — the input
    query the state was originally derived for.  ``extra_subscribers`` lists
    any further input queries merged into this state by multi-query sharing;
    it is empty for unshared states, which keeps the wire format backward
    compatible.
    """

    query_id: str
    owner: str
    query: Query
    insertion_time: float
    is_input: bool = True
    window_state: Optional[WindowState] = None
    consumed: int = 0
    ric_info: Dict[str, RicEntry] = field(default_factory=dict)
    extra_subscribers: TupleT[Subscriber, ...] = ()

    def derive(
        self,
        query: Query,
        window_state: Optional[WindowState],
        extra_ric: Optional[Dict[str, RicEntry]] = None,
    ) -> "QueryState":
        """The state of the query obtained by consuming one more tuple."""
        ric_info = dict(self.ric_info)
        if extra_ric:
            ric_info.update(extra_ric)
        return QueryState(
            query_id=self.query_id,
            owner=self.owner,
            query=query,
            insertion_time=self.insertion_time,
            is_input=False,
            window_state=window_state,
            consumed=self.consumed + 1,
            ric_info=ric_info,
            extra_subscribers=self.extra_subscribers,
        )

    @property
    def distinct(self) -> bool:
        """Whether the originating input query requested set semantics."""
        return self.query.distinct

    # ------------------------------------------------------------------
    # multi-query sharing
    # ------------------------------------------------------------------
    @property
    def subscribers(self) -> TupleT[Subscriber, ...]:
        """Every input query served by this state, primary first."""
        return (Subscriber(self.query_id, self.owner),) + self.extra_subscribers

    @property
    def subscriber_ids(self) -> TupleT[str, ...]:
        """The query ids of every subscriber, primary first."""
        return tuple(sub.query_id for sub in self.subscribers)

    def serves(self, query_id: str) -> bool:
        """Whether ``query_id`` is among this state's subscribers."""
        if self.query_id == query_id:
            return True
        return any(sub.query_id == query_id for sub in self.extra_subscribers)

    def attach_subscribers(self, subscribers: TupleT[Subscriber, ...]) -> int:
        """Merge more subscribers into this state; returns how many attached.

        The subscriber list is a *multiset*: each merged state contributes
        one subscription entry even when its query id is already present.
        Two canonically equal partial states of the same query (derived from
        distinct tuples with identical values) must each deliver a copy of
        every future answer — deduplicating here would collapse the answer
        bag's multiplicity.
        """
        self.extra_subscribers = self.extra_subscribers + tuple(subscribers)
        return len(subscribers)

    def detach_subscriber(self, query_id: str) -> bool:
        """Remove every subscription of ``query_id``; True when none remain.

        A query is retracted as a whole, so all of its multiset entries go
        at once.  Detaching the primary subscriber promotes the first
        remaining extra subscriber to primary (the state keeps its insertion
        time and window state — the merge precondition guarantees they are
        identical for every subscriber).  Detaching the last subscriber
        leaves the state intact and returns True: the caller must drop the
        physical record.
        """
        remaining = tuple(
            sub for sub in self.extra_subscribers if sub.query_id != query_id
        )
        if self.query_id == query_id:
            if not remaining:
                return True
            promoted = remaining[0]
            self.query_id = promoted.query_id
            self.owner = promoted.owner
            remaining = remaining[1:]
        self.extra_subscribers = remaining
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "input" if self.is_input else f"rewritten(consumed={self.consumed})"
        return f"QueryState({self.query_id}, {kind}, {self.query})"


@dataclass
class NewTupleMessage(Message):
    """A freshly published tuple routed to one of its indexing keys."""

    tuple: Tuple
    key: IndexKey
    publisher: str

    @property
    def level(self) -> str:
        """Indexing level the tuple arrives at (``attribute`` or ``value``)."""
        return self.key.level


@dataclass
class IndexQueryMessage(Message):
    """An input query being indexed at an attribute-level key."""

    state: QueryState
    key: IndexKey


@dataclass
class EvalMessage(Message):
    """A rewritten query being indexed (Procedure 3)."""

    state: QueryState
    key: IndexKey


@dataclass
class RicRequestMessage(Message):
    """A chained request for RIC information (Section 6).

    ``target_key`` is the key the receiving node must report about;
    ``pending`` holds the keys still to be visited; ``collected`` accumulates
    the observations gathered so far along the chain.
    """

    request_id: str
    origin: str
    target_key: IndexKey
    pending: TupleT[IndexKey, ...] = ()
    collected: TupleT[RicEntry, ...] = ()


@dataclass
class RicReplyMessage(Message):
    """The final RIC reply, sent directly back to the requesting node."""

    request_id: str
    collected: TupleT[RicEntry, ...] = ()


@dataclass
class AnswerMessage(Message):
    """An answer tuple of an input query, delivered to its owner."""

    query_id: str
    values: TupleT[Any, ...]
    produced_at: float
    producer: str


@dataclass
class RetractQueryMessage(Message):
    """Retraction of a continuous query (query lifecycle subsystem).

    ``origin`` is the node driving the retraction (normally the query's
    owner); every receiving node deletes its state for ``query_id`` —
    the stored input-query record, every rewritten query derived from it,
    and any RIC round trip still pending on its behalf.
    """

    query_id: str
    origin: str
