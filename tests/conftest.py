"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.data.schema import Catalog


@pytest.fixture
def small_catalog() -> Catalog:
    """A three-relation catalog used by most engine-level tests."""
    catalog = Catalog()
    catalog.add_relation("R", ["a", "b"])
    catalog.add_relation("S", ["c", "d"])
    catalog.add_relation("T", ["e", "f"])
    return catalog


@pytest.fixture
def engine(small_catalog) -> RJoinEngine:
    """A small deterministic engine over the three-relation catalog."""
    eng = RJoinEngine(RJoinConfig(num_nodes=16, seed=7), catalog=small_catalog)
    return eng


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random generator."""
    return random.Random(1234)


def make_engine(catalog: Catalog, **config_overrides) -> RJoinEngine:
    """Helper used by tests that need custom engine configurations."""
    params = {"num_nodes": 16, "seed": 7}
    params.update(config_overrides)
    return RJoinEngine(RJoinConfig(**params), catalog=catalog)
