"""Tests for the SQL tokenizer and parser."""

import pytest

from repro.data.schema import AttributeRef, Catalog
from repro.errors import SQLSyntaxError, UnsupportedQueryError
from repro.sql.ast import Constant, JoinPredicate, SelectionPredicate
from repro.sql.parser import parse_query, tokenize


class TestTokenizer:
    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("select R.a from R")
        assert tokens[0].kind == "keyword" and tokens[0].text == "SELECT"

    def test_numbers_and_strings(self):
        tokens = tokenize("42 3.5 'hello'")
        assert [t.kind for t in tokens[:-1]] == ["number", "number", "string"]

    def test_garbage_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @ FROM R")

    def test_eof_token_appended(self):
        assert tokenize("R")[-1].kind == "eof"


class TestParser:
    def test_simple_two_way_join(self):
        query = parse_query("SELECT R.a, S.d FROM R, S WHERE R.b = S.c")
        assert query.relations == ("R", "S")
        assert query.select_items == (AttributeRef("R", "a"), AttributeRef("S", "d"))
        assert query.join_predicates == (
            JoinPredicate(AttributeRef("R", "b"), AttributeRef("S", "c")),
        )
        assert not query.distinct
        assert query.window is None

    def test_multi_way_join_from_the_paper(self):
        text = (
            "SELECT S.B, M.A FROM R, S, J, M "
            "WHERE R.A = S.A AND S.B = J.B AND J.C = M.C"
        )
        query = parse_query(text)
        assert query.arity == 4
        assert query.num_joins == 3

    def test_selection_predicates_both_orientations(self):
        query = parse_query(
            "SELECT S.B FROM S, P WHERE 3 = S.A AND P.B = 7 AND S.B = P.B"
        )
        assert (
            SelectionPredicate(AttributeRef("S", "A"), 3)
            in query.selection_predicates
        )
        assert (
            SelectionPredicate(AttributeRef("P", "B"), 7)
            in query.selection_predicates
        )
        assert query.num_joins == 1

    def test_string_literals(self):
        query = parse_query("SELECT R.a FROM R WHERE R.b = 'alert'")
        assert query.selection_predicates[0].value == "alert"

    def test_float_literals(self):
        query = parse_query("SELECT R.a FROM R WHERE R.b = 1.5")
        assert query.selection_predicates[0].value == 1.5

    def test_constants_in_select_list(self):
        query = parse_query("SELECT 5, S.B FROM S, P WHERE 3 = S.A AND S.B = P.B")
        assert query.select_items[0] == Constant(5)

    def test_distinct(self):
        query = parse_query("SELECT DISTINCT R.a FROM R, S WHERE R.a = S.c")
        assert query.distinct

    def test_window_tuples(self):
        query = parse_query(
            "SELECT R.a FROM R, S WHERE R.a = S.c WINDOW 100 TUPLES"
        )
        assert query.window is not None
        assert query.window.mode == "tuples"
        assert query.window.size == 100

    def test_window_time_default(self):
        query = parse_query("SELECT R.a FROM R, S WHERE R.a = S.c WINDOW 30 TIME")
        assert query.window.mode == "time"

    def test_missing_from_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT R.a WHERE R.a = 1")

    def test_trailing_garbage_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT R.a FROM R extra")

    def test_bad_predicate_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT R.a FROM R WHERE R.a >")

    def test_contradictory_constant_predicate(self):
        with pytest.raises(UnsupportedQueryError):
            parse_query("SELECT R.a FROM R WHERE 1 = 2")

    def test_trivially_true_constant_predicate_dropped(self):
        query = parse_query("SELECT R.a FROM R WHERE 2 = 2")
        assert not query.predicates()

    def test_self_join_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            parse_query("SELECT R.a FROM R, R WHERE R.a = R.b")

    def test_disconnected_join_graph_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            parse_query("SELECT R.a FROM R, S, T WHERE R.a = S.c")

    def test_catalog_validation(self):
        catalog = Catalog()
        catalog.add_relation("R", ["a"])
        catalog.add_relation("S", ["c"])
        parse_query("SELECT R.a FROM R, S WHERE R.a = S.c", catalog=catalog)
        with pytest.raises(Exception):
            parse_query("SELECT R.zzz FROM R, S WHERE R.a = S.c", catalog=catalog)

    def test_relation_not_in_from_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            parse_query("SELECT R.a FROM R, S WHERE R.a = S.c AND T.a = R.a")

    def test_validate_can_be_disabled(self):
        query = parse_query(
            "SELECT R.a FROM R, S, T WHERE R.a = S.c", validate=False
        )
        assert query.arity == 3
