"""Unit contract of the metrics instruments (histogram/counter/gauge).

The histogram properties matter beyond unit hygiene: deterministic
percentiles are what makes ``metrics_summary`` reproducible across sim
reruns, and bucket-wise mergeability is what lets worker processes fold
their registries into one.
"""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.instruments import (
    HISTOGRAMS,
    PERCENTILE_POINTS,
    Counter,
    Gauge,
    Histogram,
    HistogramSpec,
    MetricsRegistry,
    histogram_percentiles,
)


def spec(buckets=(1.0, 2.0, 4.0), name="probe"):
    return HistogramSpec(
        name=name, buckets=buckets, unit="logical", description="test"
    )


class TestHistogram:
    def test_records_land_in_inclusive_upper_bound_buckets(self):
        hist = Histogram(spec())
        for value in (0.5, 1.0, 1.5, 2.0, 3.9, 100.0):
            hist.record(value)
        # buckets: <=1, <=2, <=4, overflow
        assert hist.bucket_counts() == [2, 2, 1, 1]
        assert hist.count == 6
        assert hist.max == 100.0
        assert hist.mean == pytest.approx(sum((0.5, 1.0, 1.5, 2.0, 3.9, 100.0)) / 6)

    def test_percentile_is_bucket_upper_bound_nearest_rank(self):
        hist = Histogram(spec())
        for _ in range(99):
            hist.record(0.5)
        hist.record(3.0)
        assert hist.percentile(0.50) == 1.0
        assert hist.percentile(0.99) == 1.0
        assert hist.percentile(1.0) == 4.0

    def test_percentile_overflow_bucket_reports_observed_max(self):
        hist = Histogram(spec())
        hist.record(50.0)
        assert hist.percentile(0.5) == 50.0

    def test_empty_percentile_is_zero(self):
        assert Histogram(spec()).percentile(0.95) == 0.0

    def test_percentile_fraction_validated(self):
        hist = Histogram(spec())
        with pytest.raises(ObservabilityError):
            hist.percentile(0.0)
        with pytest.raises(ObservabilityError):
            hist.percentile(1.5)

    def test_merge_adds_bucket_counts(self):
        left, right = Histogram(spec()), Histogram(spec())
        for value in (0.5, 3.0):
            left.record(value)
        for value in (1.5, 9.0):
            right.record(value)
        left.merge(right)
        assert left.count == 4
        assert left.bucket_counts() == [1, 1, 1, 1]
        assert left.max == 9.0

    def test_merge_rejects_different_buckets(self):
        left = Histogram(spec())
        right = Histogram(spec(buckets=(1.0, 8.0)))
        with pytest.raises(ObservabilityError):
            left.merge(right)

    def test_buckets_must_be_strictly_increasing(self):
        with pytest.raises(ObservabilityError):
            Histogram(spec(buckets=(1.0, 1.0, 2.0)))
        with pytest.raises(ObservabilityError):
            Histogram(spec(buckets=()))


class TestCounter:
    def test_labelled_increments(self):
        counter = Counter("deliveries")
        counter.inc("node-1")
        counter.inc("node-1", amount=2)
        counter.inc("node-2")
        counter.inc()  # total only
        assert counter.value == 5
        assert counter.by_label == {"node-1": 3, "node-2": 1}

    def test_label_overflow_collapses_into_other(self):
        counter = Counter("keys", max_labels=2)
        counter.inc("a")
        counter.inc("b")
        counter.inc("c")
        counter.inc("d")
        counter.inc("a")  # existing labels keep counting past the bound
        assert counter.by_label == {"a": 2, "b": 1, Counter.OVERFLOW_LABEL: 2}
        assert counter.value == 5

    def test_merge_folds_totals_and_labels(self):
        left, right = Counter("c"), Counter("c")
        left.inc("x")
        right.inc("x")
        right.inc("y", amount=3)
        left.merge(right)
        assert left.value == 5
        assert left.by_label == {"x": 2, "y": 3}


class TestGauge:
    def test_tracks_last_value_and_high_water_mark(self):
        gauge = Gauge("pending")
        gauge.set(3.0)
        gauge.set(10.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        assert gauge.max == 10.0

    def test_merge_keeps_joint_maximum(self):
        left, right = Gauge("g"), Gauge("g")
        left.set(5.0)
        right.set(3.0)
        left.merge(right)
        assert left.value == 3.0
        assert left.max == 5.0


class TestMetricsRegistry:
    def test_declared_histograms_exist_eagerly(self):
        registry = MetricsRegistry()
        for declared in HISTOGRAMS:
            assert registry.histogram(declared.name).spec is declared

    def test_undeclared_histogram_raises(self):
        with pytest.raises(ObservabilityError, match="not declared"):
            MetricsRegistry().histogram("made_up")

    def test_counters_and_gauges_created_on_demand(self):
        registry = MetricsRegistry()
        assert registry.counter("hits") is registry.counter("hits")
        assert registry.gauge("depth") is registry.gauge("depth")

    def test_merge_folds_every_instrument_kind(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        right.histogram("answer_latency").record(2.0)
        right.counter("hits").inc("n1")
        right.gauge("depth").set(7.0)
        left.merge(right)
        assert left.histogram("answer_latency").count == 1
        assert left.counter("hits").by_label == {"n1": 1}
        assert left.gauge("depth").max == 7.0

    def test_snapshot_is_json_safe(self):
        import json

        registry = MetricsRegistry()
        registry.histogram("hop_delay").record(1.0)
        registry.counter("hits").inc("n1")
        registry.gauge("depth").set(2.0)
        dump = json.dumps(registry.snapshot())
        assert "hop_delay" in dump and "hits" in dump and "depth" in dump


class TestHistogramPercentilesFold:
    def test_none_registry_yields_all_keys_as_zero(self):
        folded = histogram_percentiles(None)
        assert len(folded) == len(HISTOGRAMS) * len(PERCENTILE_POINTS)
        assert set(folded.values()) == {0.0}
        for declared in HISTOGRAMS:
            for suffix, _ in PERCENTILE_POINTS:
                assert f"{declared.name}_{suffix}" in folded

    def test_live_registry_surfaces_recorded_percentiles(self):
        registry = MetricsRegistry()
        for _ in range(100):
            registry.histogram("answer_latency").record(1.0)
        folded = histogram_percentiles(registry)
        assert folded["answer_latency_p50"] == 1.0
        assert folded["answer_latency_p99"] == 1.0
        assert folded["hop_delay_p50"] == 0.0
