"""The ``python -m repro.obs`` CLI over a real recorded trace.

Each test drives a tiny ``observability="on"`` run, dumps its spans and
exercises the summarize/convert subcommands on the artifact — the same
round trip a user performs on a trace file CI uploaded.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.__main__ import main as umbrella_main
from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.obs.cli import critical_path, main as obs_main
from repro.obs.trace import load_spans
from repro.workload.generator import WorkloadGenerator, WorkloadSpec


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    """A JSONL trace from a small observability-on run."""
    spec = WorkloadSpec(
        num_relations=3,
        attributes_per_relation=3,
        value_domain=4,
        join_arity=2,
        seed=77,
    )
    generator = WorkloadGenerator(spec)
    engine = RJoinEngine(RJoinConfig(num_nodes=8, seed=7, observability="on"))
    engine.register_catalog(generator.catalog)
    for query in generator.generate_queries(4):
        engine.submit(query)
    for generated in generator.generate_tuples(12):
        engine.publish(generated.relation, generated.values)
    path = tmp_path_factory.mktemp("trace") / "trace.jsonl"
    count = engine.write_trace(str(path))
    engine.close()
    assert count > 0
    return path


class TestSummarize:
    def test_reports_span_totals_and_critical_paths(self, trace_file):
        out = io.StringIO()
        assert obs_main(["summarize", str(trace_file)], out=out) == 0
        text = out.getvalue()
        spans = load_spans(str(trace_file))
        assert f"{len(spans)} spans" in text
        assert "hop breakdown by message kind:" in text
        assert "critical path:" in text
        assert "slowest" in text

    def test_top_must_be_positive(self, trace_file):
        assert obs_main(["summarize", str(trace_file), "--top", "0"]) == 1

    def test_missing_trace_file_is_a_clean_error(self, tmp_path):
        assert obs_main(["summarize", str(tmp_path / "absent.jsonl")]) == 1

    def test_empty_trace_is_reported_not_crashed(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        out = io.StringIO()
        assert obs_main(["summarize", str(empty)], out=out) == 0
        assert "empty trace" in out.getvalue()


class TestConvert:
    def test_writes_loadable_chrome_trace(self, trace_file, tmp_path):
        output = tmp_path / "chrome.json"
        out = io.StringIO()
        code = obs_main(["convert", str(trace_file), "--output", str(output)], out=out)
        assert code == 0
        payload = json.loads(output.read_text())
        spans = load_spans(str(trace_file))
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(spans)
        assert "perfetto" in out.getvalue()


class TestUmbrellaDispatch:
    def test_python_m_repro_obs_reaches_the_cli(self, trace_file):
        assert umbrella_main(["obs", "summarize", str(trace_file)]) == 0


class TestCriticalPath:
    def test_walks_parent_links_root_first(self, trace_file):
        spans = load_spans(str(trace_file))
        by_trace = {}
        for span in spans:
            by_trace.setdefault(span.trace_id, []).append(span)
        multi = max(by_trace.values(), key=len)
        path = critical_path(multi)
        assert path[0].parent_id is None
        for parent, child in zip(path, path[1:]):
            assert child.parent_id == parent.span_id
