"""Ranked Zipf sampling.

A Zipf distribution with parameter ``θ`` over ``n`` items assigns item of
rank ``i`` (1-based) probability proportional to ``1 / i^θ``.  ``θ = 0``
degenerates to the uniform distribution; the paper's default ``θ = 0.9`` is
highly skewed.  Sampling uses the inverse-CDF method over the precomputed
cumulative weights, so drawing a value costs ``O(log n)``.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError


class ZipfSampler:
    """Draws 0-based item indices from a ranked Zipf distribution."""

    def __init__(
        self,
        num_items: int,
        theta: float = 0.9,
        rng: Optional[random.Random] = None,
        shuffle_ranks: bool = False,
    ):
        if num_items <= 0:
            raise ConfigurationError("a Zipf sampler needs at least one item")
        if theta < 0:
            raise ConfigurationError("the Zipf parameter theta must be non-negative")
        self.num_items = num_items
        self.theta = theta
        # A fixed-seed fallback keeps the sampler deterministic even when no
        # RNG is threaded through (the workload generator always passes one).
        self._rng = rng or random.Random(0)
        weights = np.arange(1, num_items + 1, dtype=float) ** (-theta)
        probabilities = weights / weights.sum()
        self._probabilities: List[float] = probabilities.tolist()
        self._cumulative: List[float] = np.cumsum(probabilities).tolist()
        # Guard against floating point drift on the last bucket.
        self._cumulative[-1] = 1.0
        if shuffle_ranks:
            self._rank_to_item = list(range(num_items))
            self._rng.shuffle(self._rank_to_item)
        else:
            self._rank_to_item = list(range(num_items))

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample(self) -> int:
        """Draw one item index."""
        u = self._rng.random()
        rank = bisect.bisect_left(self._cumulative, u)
        if rank >= self.num_items:
            rank = self.num_items - 1
        return self._rank_to_item[rank]

    def sample_many(self, count: int) -> List[int]:
        """Draw ``count`` item indices."""
        return [self.sample() for _ in range(count)]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def probability_of_rank(self, rank: int) -> float:
        """Probability assigned to the item of 0-based ``rank``."""
        if not 0 <= rank < self.num_items:
            raise ConfigurationError(
                f"rank must be in [0, {self.num_items}); got {rank}"
            )
        return self._probabilities[rank]

    def probabilities(self) -> Sequence[float]:
        """Probabilities by rank (rank 0 is the most popular item)."""
        return list(self._probabilities)

    def expected_skew_ratio(self) -> float:
        """Ratio between the most and least popular item probabilities."""
        return self._probabilities[0] / self._probabilities[-1]
