"""Wall-clock speedup of the parallel grid runner vs the serial loop.

Times the same scenario grid three ways and records everything in
``benchmarks/BENCH_parallel.json``:

* **serial** — the plain in-process loop (``workers=1``, no checkpoint
  reuse): what running the grid through the old figure-style harness costs,
* **parallel (cold)** — fanned across worker processes, fresh output
  directory.  ``cold_speedup = serial / parallel`` exceeds 1 whenever the
  host has more than one core; on a single-core host the process fan-out
  cannot beat the serial loop (the GIL-free workers still timeshare one
  CPU), which the report calls out via ``cpu_count``/``single_core_host``,
* **parallel (resume)** — re-running the sweep over the already streamed
  per-cell checkpoints, the driver's steady state when a grid is interrupted
  or extended.  This beats the serial loop on wall-clock on any host.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--smoke]
        [--workers N] [--scenario NAME] [--output PATH]

``--smoke`` shrinks every cell to a correctness sweep (used by
``run_all.py`` / the ``bench_smoke`` marker); the recorded speedups are only
meaningful in the default mode, where each cell carries real work.

The report also records a **sim vs asyncio** head-to-head on a query-flood
style workload (many standing queries, one tuple stream) under
``query_flood_runtime_comparison``: wall-clock seconds per runtime, a
per-phase breakdown (submit vs publish) with the drain-loop event count and
``drain_events_per_sec`` for each runtime — so the throughput ratio is
explainable (is asyncio slower because it processed more events, or because
each event cost more?) — plus the throughput ratio itself.  Deliberately
*not* keyed ``*_per_second``, so the CI regression gate never compares any
of it — on a single-core host the asyncio runtime timeshares one event loop
and the ratio hovers at or below 1x; the number only becomes a speedup
claim on real multi-core hardware.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import tempfile
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.experiments.parallel import run_grid
from repro.net.runtime import DEFAULT_TRANSPORT, TRANSPORT_NAMES
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_parallel.json"
DEFAULT_SCENARIO = "skew-sweep"
DEFAULT_WORKERS = 4

#: Grid sizing for the timed run: ten cells (5 thetas × 2 seeds) at the
#: scenario's default sizes — each cell carries over a second of real
#: experiment work, so process fan-out pays for itself.
DEFAULT_SEEDS = (41, 42)
DEFAULT_OVERRIDES: Dict[str, object] = {}
SMOKE_SEEDS = (41,)
SMOKE_OVERRIDES = {
    "num_nodes": 12,
    "num_queries": 8,
    "num_tuples": 6,
    "warmup_tuples": 0,
}


def run_runtime_comparison(
    num_nodes: int = 24,
    num_queries: int = 40,
    num_tuples: int = 160,
    smoke: bool = False,
) -> Dict[str, object]:
    """Time the identical query-flood workload on every registered runtime.

    Both engines see the same queries and the same tuple stream; the bag
    sizes must agree (the cross-runtime equality the test suite proves in
    full), and the submit and publication phases are timed separately, with
    the drain-loop event count of each phase, so the sim/asyncio ratio is
    explainable from the per-phase numbers instead of being one opaque
    total.  Sizing note: answers grow combinatorially with the workload
    (40 queries × 160 tuples already produce ~190k answers, a ~5 s timed
    window per runtime) — scale with care.
    """
    if smoke:
        num_nodes, num_queries, num_tuples = 8, 6, 20
    spec = WorkloadSpec(
        num_relations=4,
        attributes_per_relation=3,
        value_domain=4,
        join_arity=3,
        seed=901,
    )
    generator = WorkloadGenerator(spec)
    queries = generator.generate_queries(num_queries)
    tuples = generator.generate_tuples(num_tuples)
    seconds: Dict[str, float] = {}
    answers: Dict[str, int] = {}
    phases: Dict[str, Dict[str, float]] = {}
    for runtime in TRANSPORT_NAMES:
        engine = RJoinEngine(
            RJoinConfig(num_nodes=num_nodes, seed=90, runtime=runtime)
        )
        engine.register_catalog(generator.catalog)
        submit_start = perf_counter()
        handles = [engine.submit(query) for query in queries]
        submit_seconds = perf_counter() - submit_start
        submit_events = engine.transport.events_processed
        start = perf_counter()
        for generated in tuples:
            engine.publish(generated.relation, generated.values)
        publish_seconds = perf_counter() - start
        publish_events = engine.transport.events_processed - submit_events
        seconds[runtime] = publish_seconds
        phases[runtime] = {
            "submit_seconds": submit_seconds,
            "submit_events_processed": float(submit_events),
            "publish_seconds": publish_seconds,
            "publish_events_processed": float(publish_events),
            # Deliberately ``_per_sec`` (not ``_per_second``): the CI
            # regression gate's RATE_KEY pattern must not compare drain
            # throughput across heterogeneous hosts.
            "drain_events_per_sec": (
                publish_events / publish_seconds if publish_seconds > 0 else 0.0
            ),
        }
        answers[runtime] = sum(handle.count for handle in handles)
        engine.close()
    if len(set(answers.values())) != 1:
        raise AssertionError(
            f"runtimes disagreed on the answer-bag size: {answers}"
        )
    asyncio_seconds = seconds["asyncio"]
    return {
        "num_nodes": num_nodes,
        "num_queries": num_queries,
        "num_tuples": num_tuples,
        "answers": answers["sim"],
        "sim_seconds": seconds["sim"],
        "asyncio_seconds": asyncio_seconds,
        "phases": phases,
        "asyncio_over_sim_throughput": (
            seconds["sim"] / asyncio_seconds if asyncio_seconds > 0 else 0.0
        ),
    }


def run_bench(
    scenario: str = DEFAULT_SCENARIO,
    workers: int = DEFAULT_WORKERS,
    smoke: bool = False,
    runtime: str = DEFAULT_TRANSPORT,
) -> Dict[str, object]:
    """Time the serial and the parallel sweep of one scenario grid."""
    seeds: List[int] = list(SMOKE_SEEDS if smoke else DEFAULT_SEEDS)
    overrides = dict(SMOKE_OVERRIDES if smoke else DEFAULT_OVERRIDES)
    overrides["runtime"] = runtime
    with tempfile.TemporaryDirectory(prefix="bench_parallel_") as tmp:
        serial = run_grid(
            scenario,
            Path(tmp) / "serial",
            workers=1,
            seeds=seeds,
            overrides=overrides,
            resume=False,
        )
        parallel = run_grid(
            scenario,
            Path(tmp) / "parallel",
            workers=workers,
            seeds=seeds,
            overrides=overrides,
            resume=False,
        )
        resumed = run_grid(
            scenario,
            Path(tmp) / "parallel",
            workers=workers,
            seeds=seeds,
            overrides=overrides,
            resume=True,
        )
    # Both sweeps must have produced identical per-cell metrics: the speedup
    # only counts if the parallel path computes the same grid.
    serial_summaries = {
        outcome.cell.cell_id: outcome.summary for outcome in serial.outcomes
    }
    parallel_summaries = {
        outcome.cell.cell_id: outcome.summary for outcome in parallel.outcomes
    }
    if serial_summaries != parallel_summaries:
        raise AssertionError("parallel grid results diverged from serial")
    if resumed.computed != 0:
        raise AssertionError("resume pass recomputed cells it should have cached")
    cpu_count = multiprocessing.cpu_count()

    def _speedup(seconds: float) -> float:
        return serial.elapsed_seconds / seconds if seconds > 0 else 0.0

    return {
        "scenario": scenario,
        "cells": len(serial.outcomes),
        "workers": workers,
        "runtime": runtime,
        "cpu_count": cpu_count,
        "single_core_host": cpu_count == 1,
        "smoke": smoke,
        "serial_seconds": serial.elapsed_seconds,
        "parallel_seconds": parallel.elapsed_seconds,
        "resume_seconds": resumed.elapsed_seconds,
        "cold_speedup": _speedup(parallel.elapsed_seconds),
        "resume_speedup": _speedup(resumed.elapsed_seconds),
        "query_flood_runtime_comparison": run_runtime_comparison(smoke=smoke),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes (correctness sweep only)"
    )
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--scenario", default=DEFAULT_SCENARIO)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--runtime",
        choices=TRANSPORT_NAMES,
        default=DEFAULT_TRANSPORT,
        help="node runtime the grid cells run on (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    report = run_bench(
        scenario=args.scenario,
        workers=args.workers,
        smoke=args.smoke,
        runtime=args.runtime,
    )
    print(
        f"{report['scenario']} [{report['runtime']}]: {report['cells']} cells — "
        f"serial {report['serial_seconds']:.2f}s, "
        f"parallel({report['workers']}) {report['parallel_seconds']:.2f}s "
        f"({report['cold_speedup']:.2f}x), "
        f"resume {report['resume_seconds']:.2f}s "
        f"({report['resume_speedup']:.2f}x)"
    )
    if report["single_core_host"]:
        print(
            "note: single-core host — process fan-out cannot beat the serial "
            "loop cold; see resume_speedup for the driver's steady state"
        )
    if not args.smoke:
        args.output.write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
