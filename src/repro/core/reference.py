"""Centralised continuous-join oracle.

The reference engine evaluates continuous multi-way equi-joins exactly as
Definition 1 (bag semantics) and Definition 2 (new answers / set semantics)
of the paper prescribe, but in a single process with global knowledge:

* all published tuples are kept in one table per relation,
* when a tuple ``t`` is published, every query submitted at or before
  ``pubT(t)`` receives the *new* answers that involve ``t`` — combinations of
  ``t`` with previously published tuples (one per other relation, each
  published at or after the query's insertion time), satisfying every join
  and selection predicate and, for window queries, fitting inside the
  sliding window,
* ``DISTINCT`` queries deduplicate their answer values.

It exists purely for validation: integration and property-based tests check
that the distributed RJoin engine delivers exactly the same bag (or set) of
answers on delay-free runs, which is the paper's soundness + eventual
completeness + no-accidental-duplicates claim (Theorems 1 and 2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple as TupleT

from repro.core.windows import combination_valid
from repro.data.schema import AttributeRef, Catalog
from repro.data.tuples import Tuple
from repro.errors import EngineError, UnknownRelationError
from repro.sql.ast import Constant, Query


@dataclass
class _RegisteredQuery:
    query_id: str
    query: Query
    insertion_time: float
    answers: List[TupleT[Any, ...]] = field(default_factory=list)
    seen: Set[TupleT[Any, ...]] = field(default_factory=set)


class ReferenceEngine:
    """A single-node oracle for continuous multi-way equi-join semantics."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._queries: Dict[str, _RegisteredQuery] = {}
        #: Removed queries, kept so their answer history stays inspectable
        #: (mirrors the engine: a retracted query's handle retains the
        #: answers delivered before the retraction).
        self._removed: Dict[str, _RegisteredQuery] = {}
        self._tuples: Dict[str, List[Tuple]] = {}
        self._sequence = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def submit(
        self, query: Query, query_id: Optional[str] = None, insertion_time: float = 0.0
    ) -> str:
        """Register a continuous query; returns its id."""
        query.validate(self.catalog)
        if query_id is None:
            query_id = f"ref#{len(self._queries) + 1}"
        if query_id in self._queries:
            raise EngineError(f"duplicate query id {query_id!r}")
        self._queries[query_id] = _RegisteredQuery(
            query_id=query_id, query=query, insertion_time=insertion_time
        )
        return query_id

    def remove_query(self, query_id: str) -> None:
        """Retract a continuous query: later publications produce no answers.

        Mirrors :meth:`repro.core.engine.RJoinEngine.remove_query` so that
        oracle-equality tests hold across removals; the answers produced
        before the retraction remain available through :meth:`answers`.
        """
        try:
            self._removed[query_id] = self._queries.pop(query_id)
        except KeyError:
            raise EngineError(
                f"unknown (or already removed) query id {query_id!r}"
            ) from None

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------
    def publish(
        self,
        relation: str,
        values: Sequence[Any],
        pub_time: Optional[float] = None,
        sequence: Optional[int] = None,
    ) -> Dict[str, List[TupleT[Any, ...]]]:
        """Publish a tuple and return the new answers it produces per query id."""
        if relation not in self.catalog:
            raise UnknownRelationError(f"unknown relation {relation!r}")
        schema = self.catalog.get(relation)
        self._sequence += 1
        tup = Tuple.from_schema(
            schema,
            values,
            pub_time=self._sequence if pub_time is None else pub_time,
            sequence=self._sequence if sequence is None else sequence,
        )
        return self.publish_tuple(tup)

    def publish_tuple(self, tup: Tuple) -> Dict[str, List[TupleT[Any, ...]]]:
        """Publish an already constructed tuple (pub_time/sequence preserved)."""
        produced: Dict[str, List[TupleT[Any, ...]]] = {}
        for registered in self._queries.values():
            new_answers = self._new_answers_for(registered, tup)
            if new_answers:
                produced[registered.query_id] = new_answers
                registered.answers.extend(new_answers)
        # Store the tuple only after computing the new answers so that the
        # combinations never use the new tuple twice.
        self._tuples.setdefault(tup.relation, []).append(tup)
        return produced

    # ------------------------------------------------------------------
    # answers
    # ------------------------------------------------------------------
    def answers(self, query_id: str) -> List[TupleT[Any, ...]]:
        """All answers produced for ``query_id`` so far (bag or set order-insensitive).

        Removed queries keep their pre-retraction answer history.
        """
        registered = self._queries.get(query_id) or self._removed.get(query_id)
        if registered is None:
            raise EngineError(f"unknown query id {query_id!r}")
        return list(registered.answers)

    def answer_count(self, query_id: str) -> int:
        """Number of answers produced for ``query_id``."""
        return len(self.answers(query_id))

    def all_answers(self) -> Dict[str, List[TupleT[Any, ...]]]:
        """Answers of every registered query."""
        return {qid: list(reg.answers) for qid, reg in self._queries.items()}

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _new_answers_for(
        self, registered: _RegisteredQuery, tup: Tuple
    ) -> List[TupleT[Any, ...]]:
        query = registered.query
        if tup.relation not in query.relations:
            return []
        if tup.pub_time < registered.insertion_time:
            return []

        # Candidate tuples per relation: the new tuple for its own relation,
        # previously published tuples (>= insertion time) for the others.
        per_relation: List[List[Tuple]] = []
        for relation in query.relations:
            if relation == tup.relation:
                per_relation.append([tup])
                continue
            stored = [
                candidate
                for candidate in self._tuples.get(relation, [])
                if candidate.pub_time >= registered.insertion_time
            ]
            if not stored:
                return []
            per_relation.append(stored)

        answers: List[TupleT[Any, ...]] = []
        for combination in itertools.product(*per_relation):
            by_relation = {t.relation: t for t in combination}
            if not self._satisfies(query, by_relation):
                continue
            if query.window is not None:
                clocks = tuple(
                    query.window.clock_of(t) for t in combination
                )
                if not combination_valid(query.window, clocks):
                    continue
            values = self._project(query, by_relation)
            if query.distinct:
                if values in registered.seen:
                    continue
                registered.seen.add(values)
            answers.append(values)
        return answers

    def _satisfies(self, query: Query, by_relation: Dict[str, Tuple]) -> bool:
        for jp in query.join_predicates:
            left = self._value_of(jp.left, by_relation)
            right = self._value_of(jp.right, by_relation)
            if left != right:
                return False
        for sp in query.selection_predicates:
            if self._value_of(sp.attribute, by_relation) != sp.value:
                return False
        return True

    def _project(
        self, query: Query, by_relation: Dict[str, Tuple]
    ) -> TupleT[Any, ...]:
        values: List[Any] = []
        for item in query.select_items:
            if isinstance(item, Constant):
                values.append(item.value)
            else:
                values.append(self._value_of(item, by_relation))
        return tuple(values)

    def _value_of(self, ref: AttributeRef, by_relation: Dict[str, Tuple]) -> Any:
        schema = self.catalog.get(ref.relation)
        return by_relation[ref.relation].value_of(ref.attribute, schema)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def published_tuples(self) -> int:
        """Number of tuples published so far."""
        return sum(len(tuples) for tuples in self._tuples.values())

    @property
    def registered_queries(self) -> int:
        """Number of registered continuous queries."""
        return len(self._queries)
