"""Opt-in smoke run of the benchmark suite (``-m bench_smoke``).

Deselected by default (see ``pytest.ini``); run explicitly with::

    PYTHONPATH=src python -m pytest -m bench_smoke
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

_RUN_ALL_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "run_all.py"


def _load_run_all():
    spec = importlib.util.spec_from_file_location("bench_run_all", _RUN_ALL_PATH)
    module = importlib.util.module_from_spec(spec)
    # run_all.py imports its sibling microbenchmark module by name.
    sys.path.insert(0, str(_RUN_ALL_PATH.parent))
    try:
        spec.loader.exec_module(module)
    finally:
        sys.path.remove(str(_RUN_ALL_PATH.parent))
    return module


@pytest.mark.bench_smoke
def test_every_benchmark_survives_smoke_mode():
    module = _load_run_all()
    sys.path.insert(0, str(_RUN_ALL_PATH.parent))
    try:
        failures = module.run_all(verbose=False)
    finally:
        sys.path.remove(str(_RUN_ALL_PATH.parent))
    assert failures == [], "\n".join(failures)
