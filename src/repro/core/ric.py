"""Rate-of-incoming-tuples (RIC) bookkeeping — Sections 6 and 7.

Before indexing a query, RJoin asks the candidate nodes for information about
the rate of incoming tuples for the candidate keys (RIC information), then
indexes the query where the predicted rate is lowest.  Three pieces of local
state support this:

* :class:`RateTracker` — every node records, per indexing key it is
  responsible for, the arrival times of incoming tuples; the reported rate is
  the number of arrivals observed during the last time window (or the total
  count when no window is configured — "we observe what has happened ... and
  assume a similar behavior for the future"),
* :class:`RicEntry` — one observation: key, rate, the address of the node
  that reported it and when it was reported,
* :class:`CandidateTable` (CT) — the per-node cache of RIC entries
  (Section 7): entries learned by asking candidates, or received piggy-backed
  on rewritten queries, are kept so that future indexing decisions for the
  same key need no extra messages; stale entries can be refreshed.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Mapping, Optional


@dataclass(frozen=True)
class RicEntry:
    """One piece of RIC information about an indexing key."""

    key_text: str
    rate: float
    address: str
    observed_at: float

    def is_fresh(self, now: float, freshness: Optional[float]) -> bool:
        """Whether the entry is still considered valid at time ``now``."""
        if freshness is None:
            return True
        return (now - self.observed_at) <= freshness


class RateTracker:
    """Per-node arrival counting for the keys the node is responsible for.

    ``max_keys`` bounds the number of distinct keys the tracker holds state
    for: recording an arrival for a fresh key beyond the bound evicts the
    least recently *recorded* key first (deterministic LRU).  RIC entries
    are advisory — an evicted key simply reports a rate (and total) of zero
    until tuples arrive for it again — so the bound trades a little rate
    fidelity under million-distinct-key floods for a hard memory ceiling.
    ``None`` keeps state for every key ever seen.
    """

    def __init__(
        self, window: Optional[float] = None, max_keys: Optional[int] = None
    ) -> None:
        """``window`` bounds the observation horizon; ``None`` counts forever."""
        self.window = window
        self.max_keys = max_keys
        self.evicted_keys = 0
        self._arrivals: Dict[str, Deque[float]] = {}
        # Insertion-ordered: the first key is always the least recently
        # recorded one (record() re-appends the key it touches).
        self._totals: OrderedDict[str, int] = OrderedDict()

    def record(self, key_text: str, now: float) -> None:
        """Record the arrival of a tuple for ``key_text`` at time ``now``."""
        totals = self._totals
        if key_text in totals:
            totals[key_text] += 1
            totals.move_to_end(key_text)
        else:
            if self.max_keys is not None and len(totals) >= self.max_keys:
                evicted, _ = totals.popitem(last=False)
                self._arrivals.pop(evicted, None)
                self.evicted_keys += 1
            totals[key_text] = 1
        if self.window is None:
            return
        arrivals = self._arrivals.setdefault(key_text, deque())
        arrivals.append(now)
        self._prune(arrivals, now)

    def rate(self, key_text: str, now: float) -> float:
        """Observed arrival count for ``key_text`` over the configured horizon."""
        if self.window is None:
            return float(self._totals.get(key_text, 0))
        arrivals = self._arrivals.get(key_text)
        if not arrivals:
            return 0.0
        self._prune(arrivals, now)
        return float(len(arrivals))

    def total(self, key_text: str) -> int:
        """Lifetime arrival count for ``key_text`` (zero once evicted)."""
        return self._totals.get(key_text, 0)

    def _prune(self, arrivals: Deque[float], now: float) -> None:
        assert self.window is not None
        cutoff = now - self.window
        while arrivals and arrivals[0] < cutoff:
            arrivals.popleft()

    def tracked_keys(self) -> List[str]:
        """Keys for which arrival state is currently held."""
        return list(self._totals.keys())

    def __len__(self) -> int:
        """Number of keys currently tracked; never exceeds ``max_keys``."""
        return len(self._totals)


class CandidateTable:
    """Cache of RIC entries (and candidate node addresses) — Section 7."""

    def __init__(self, freshness: Optional[float] = None) -> None:
        """``freshness`` is the maximum age of a usable entry (``None`` = no limit)."""
        self.freshness = freshness
        self._entries: Dict[str, RicEntry] = {}
        self._hits = 0
        self._misses = 0

    def update(self, entry: RicEntry) -> None:
        """Insert ``entry``, keeping the most recently observed one per key."""
        current = self._entries.get(entry.key_text)
        if current is None or entry.observed_at >= current.observed_at:
            self._entries[entry.key_text] = entry

    def update_many(self, entries: Iterable[RicEntry]) -> None:
        """Insert several entries at once."""
        for entry in entries:
            self.update(entry)

    def lookup(self, key_text: str, now: float) -> Optional[RicEntry]:
        """Return a fresh cached entry for ``key_text`` or None."""
        entry = self._entries.get(key_text)
        if entry is not None and entry.is_fresh(now, self.freshness):
            self._hits += 1
            return entry
        self._misses += 1
        return None

    def invalidate_address(self, address: str) -> int:
        """Drop every cached entry reported by ``address``; returns the count.

        Called eagerly when a node leaves the ring (graceful departure or
        crash): entries pointing at the departed node can never satisfy the
        one-hop shortcut again, so keeping them only produces stale one-hop
        attempts that the lazy ownership check must then reject.
        """
        stale = [
            key_text
            for key_text, entry in self._entries.items()
            if entry.address == address
        ]
        for key_text in stale:
            del self._entries[key_text]
        return len(stale)

    def clear(self) -> None:
        """Drop every cached entry (the hit/miss counters are preserved).

        The query-lifecycle vacuum: cached RIC observations only inform the
        indexing decisions of continuous queries, so once the last active
        query is removed the cache is dead weight.
        """
        self._entries.clear()

    def address_of(self, key_text: str) -> Optional[str]:
        """Last known responsible node for ``key_text`` (even if the rate is stale)."""
        entry = self._entries.get(key_text)
        return entry.address if entry is not None else None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        """Number of lookups answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of lookups that required contacting the candidate node."""
        return self._misses


def merge_ric_info(
    base: Mapping[str, RicEntry], extra: Iterable[RicEntry]
) -> Dict[str, RicEntry]:
    """Merge RIC observations, preferring the most recent entry per key.

    Used to build the information piggy-backed on rewritten queries: the
    forwarding node packs what it knows so that the receiving node only needs
    to ask about candidate keys introduced by the rewriting step.
    """
    merged: Dict[str, RicEntry] = dict(base)
    for entry in extra:
        current = merged.get(entry.key_text)
        if current is None or entry.observed_at >= current.observed_at:
            merged[entry.key_text] = entry
    return merged
