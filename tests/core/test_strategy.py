"""Tests for candidate enumeration and the four indexing strategies."""

import random

import pytest

from repro.core.keys import attribute_key, value_key
from repro.core.strategy import (
    FirstCandidateStrategy,
    RJoinStrategy,
    RandomStrategy,
    WorstStrategy,
    available_strategies,
    input_query_candidates,
    make_strategy,
    rewritten_query_candidates,
)
from repro.errors import ConfigurationError
from repro.sql.parser import parse_query


def rng():
    return random.Random(0)


class TestInputCandidates:
    def test_candidates_cover_every_where_clause_pair(self):
        query = parse_query(
            "SELECT R.a FROM R, S, T WHERE R.a = S.b AND S.c = T.d", validate=False
        )
        candidates = input_query_candidates(query)
        assert attribute_key("R", "a") in candidates
        assert attribute_key("S", "b") in candidates
        assert attribute_key("S", "c") in candidates
        assert attribute_key("T", "d") in candidates
        assert all(not key.is_value_level for key in candidates)

    def test_selection_pairs_included(self):
        query = parse_query("SELECT R.a FROM R WHERE R.b = 5", validate=False)
        assert attribute_key("R", "b") in input_query_candidates(query)

    def test_fallback_to_select_list(self):
        query = parse_query("SELECT R.a FROM R")
        assert input_query_candidates(query) == [attribute_key("R", "a")]

    def test_no_duplicates(self):
        query = parse_query(
            "SELECT R.a FROM R, S WHERE R.a = S.b AND R.a = S.c", validate=False
        )
        candidates = input_query_candidates(query)
        assert len(candidates) == len(set(candidates))


class TestRewrittenCandidates:
    def test_value_level_from_explicit_and_implied_selections(self):
        query = parse_query(
            "SELECT S.a FROM S, T WHERE S.b = 3 AND S.c = T.d AND T.d = 7",
            validate=False,
        )
        candidates = rewritten_query_candidates(query, allow_attribute_level=False)
        assert value_key("S", "b", 3) in candidates
        assert value_key("T", "d", 7) in candidates
        # implied: S.c = 7 through S.c = T.d = 7
        assert value_key("S", "c", 7) in candidates
        assert all(key.is_value_level for key in candidates)

    def test_attribute_level_family_included_when_allowed(self):
        query = parse_query(
            "SELECT S.a FROM S, T WHERE S.b = 3 AND S.c = T.d", validate=False
        )
        with_attr = rewritten_query_candidates(query, allow_attribute_level=True)
        without = rewritten_query_candidates(query, allow_attribute_level=False)
        assert attribute_key("S", "c") in with_attr
        assert attribute_key("T", "d") in with_attr
        assert attribute_key("S", "c") not in without

    def test_value_candidates_only_for_remaining_relations(self):
        query = parse_query(
            "SELECT S.a FROM S WHERE S.b = 3", validate=False
        )
        candidates = rewritten_query_candidates(query)
        assert candidates == [value_key("S", "b", 3)]

    def test_fallback_when_no_selections(self):
        query = parse_query("SELECT S.a FROM S, T WHERE S.b = T.c", validate=False)
        candidates = rewritten_query_candidates(query, allow_attribute_level=False)
        assert candidates  # falls back to attribute-level pairs
        assert all(not key.is_value_level for key in candidates)


class TestStrategies:
    def setup_method(self):
        self.candidates = [
            attribute_key("R", "a"),
            value_key("S", "b", 1),
            value_key("T", "c", 2),
        ]
        self.rates = {
            self.candidates[0].text: 50.0,
            self.candidates[1].text: 5.0,
            self.candidates[2].text: 1.0,
        }

    def test_rjoin_picks_lowest_rate(self):
        assert (
            RJoinStrategy().choose(self.candidates, self.rates, rng())
            == self.candidates[2]
        )

    def test_rjoin_tie_break_prefers_value_level(self):
        rates = {key.text: 0.0 for key in self.candidates}
        chosen = RJoinStrategy().choose(self.candidates, rates, rng())
        assert chosen.is_value_level

    def test_worst_picks_highest_rate(self):
        assert (
            WorstStrategy().choose(self.candidates, self.rates, rng())
            == self.candidates[0]
        )

    def test_worst_tie_break_prefers_attribute_level(self):
        rates = {key.text: 0.0 for key in self.candidates}
        chosen = WorstStrategy().choose(self.candidates, rates, rng())
        assert not chosen.is_value_level

    def test_random_is_uniform_over_candidates(self):
        strategy = RandomStrategy()
        seen = {
            strategy.choose(self.candidates, {}, random.Random(i)).text
            for i in range(50)
        }
        assert len(seen) == len(self.candidates)

    def test_first_picks_document_order(self):
        assert (
            FirstCandidateStrategy().choose(self.candidates, self.rates, rng())
            == self.candidates[0]
        )

    def test_missing_rates_default_to_zero(self):
        chosen = RJoinStrategy().choose(self.candidates, {}, rng())
        assert chosen.is_value_level

    def test_empty_candidates_rejected(self):
        for strategy in (
            RJoinStrategy(),
            WorstStrategy(),
            RandomStrategy(),
            FirstCandidateStrategy(),
        ):
            with pytest.raises(ConfigurationError):
                strategy.choose([], {}, rng())

    def test_requires_ric_flags(self):
        assert RJoinStrategy().requires_ric
        assert not WorstStrategy().requires_ric
        assert WorstStrategy().uses_oracle
        assert not RandomStrategy().requires_ric
        assert not FirstCandidateStrategy().uses_oracle


class TestFactory:
    def test_make_strategy_by_name(self):
        assert isinstance(make_strategy("rjoin"), RJoinStrategy)
        assert isinstance(make_strategy("WORST"), WorstStrategy)
        assert isinstance(make_strategy("random"), RandomStrategy)
        assert isinstance(make_strategy("first"), FirstCandidateStrategy)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_strategy("optimal")

    def test_available_strategies(self):
        assert set(available_strategies()) == {"first", "random", "rjoin", "worst"}
