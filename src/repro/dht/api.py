"""The DHT messaging API used by RJoin.

Section 2 of the paper defines three primitives, all implemented here on top
of the Chord ring and the discrete-event kernel:

* ``send(msg, id)`` — deliver ``msg`` to ``Successor(id)`` in O(log N) hops,
* ``multiSend(msg, I)`` / ``multiSend(M, I)`` — deliver one (or a matching)
  message to the successor of each identifier in ``I``,
* ``sendDirect(msg, addr)`` — deliver ``msg`` to a known address in one hop.

Each transmission (the originating send plus every routing hop) is charged
to the transmitting node in :class:`~repro.net.stats.TrafficStats`, matching
the traffic definition of Section 8.  Deliveries are posted to the runtime
:class:`~repro.net.runtime.Transport` with a delay proportional to the hop
count, which realises the bounded-delay asynchronous model used by the
formal analysis (Section 4).  The service is transport-neutral: the same
code runs on the deterministic ``sim`` kernel and the concurrent
``asyncio`` actor runtime.
"""

from __future__ import annotations

import random
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.dht.chord import ChordNode, ChordRing
from repro.errors import ConfigurationError, RoutingError
from repro.net.messages import Envelope, Message
from repro.net.runtime import Transport
from repro.net.simulator import SimulationKernel, SimTransport
from repro.net.stats import TrafficStats
from repro.obs.context import Observability
from repro.obs.trace import TraceContext

MessageHandler = Callable[[Envelope], None]


class DHTMessagingService:
    """Implementation of ``send`` / ``multiSend`` / ``sendDirect``.

    Parameters
    ----------
    ring:
        The Chord ring used for lookups and routing paths.
    transport:
        The runtime transport deliveries are posted to.  A bare
        :class:`~repro.net.simulator.SimulationKernel` is also accepted for
        backward compatibility and wrapped in a
        :class:`~repro.net.simulator.SimTransport` sharing that kernel.
    traffic:
        Traffic accounting sink.
    hop_delay:
        Simulated time taken by one hop (the paper's bounded delay δ is
        ``hop_delay`` times the maximum route length).
    delay_jitter:
        Optional extra random delay (uniform in ``[0, delay_jitter]``) added
        per message, used by tests that exercise the ALTT/Δ machinery with
        out-of-order deliveries.
    observability:
        Optional :class:`~repro.obs.context.Observability` facade.  When
        given, every posted envelope is stamped with a trace context and
        every delivery runs inside a span that records the transit
        instruments (hop delay, inbox depth, handler service time).
    """

    def __init__(
        self,
        ring: ChordRing,
        transport: Union[Transport, SimulationKernel, None] = None,
        traffic: Optional[TrafficStats] = None,
        hop_delay: float = 1.0,
        delay_jitter: float = 0.0,
        rng: Optional[random.Random] = None,
        observability: Optional[Observability] = None,
    ) -> None:
        if hop_delay < 0 or delay_jitter < 0:
            raise ConfigurationError("delays must be non-negative")
        if transport is None:
            transport = SimTransport()
        elif isinstance(transport, SimulationKernel):
            transport = SimTransport(transport)
        self.ring = ring
        self.transport = transport
        self.transport.bind(self._deliver)
        self.traffic = traffic if traffic is not None else TrafficStats()
        self.hop_delay = hop_delay
        self.delay_jitter = delay_jitter
        self._rng = rng or random.Random(0)
        self._obs = observability
        self._handlers: Dict[str, MessageHandler] = {}
        self._dropped = 0

    @property
    def kernel(self) -> SimulationKernel:
        """Deprecated: the underlying simulation kernel (``sim`` runtime only).

        Deliveries are now posted through :attr:`transport`; use that (or
        ``transport.kernel`` when deterministic event surgery is really
        needed).
        """
        warnings.warn(
            "DHTMessagingService.kernel is deprecated; use "
            "DHTMessagingService.transport (transport.kernel exposes the "
            "sim runtime's kernel)",
            DeprecationWarning,
            stacklevel=2,
        )
        kernel = self.transport.kernel
        if kernel is None:
            raise ConfigurationError(
                f"the {self.transport.name!r} runtime has no simulation kernel"
            )
        return kernel

    # ------------------------------------------------------------------
    # handler registration
    # ------------------------------------------------------------------
    def register_handler(self, address: str, handler: MessageHandler) -> None:
        """Register the application-layer message handler of a node."""
        self._handlers[address] = handler
        self.transport.register_address(address)

    def unregister_handler(self, address: str) -> None:
        """Remove the handler of a departed node (its messages are dropped)."""
        self._handlers.pop(address, None)
        self.transport.unregister_address(address)

    def drop_in_flight(self, address: str) -> int:
        """Destroy every undelivered message addressed to ``address``.

        Models an abrupt crash: deliveries already in flight towards the
        dead address are cancelled (the network loses them) and counted as
        dropped.  Returns the number of messages destroyed.
        """
        dropped = self.transport.cancel_inbound(address)
        self._dropped += dropped
        return dropped

    def redirect_in_flight(
        self,
        address: str,
        reroute: Callable[[Message], Optional[str]],
    ) -> int:
        """Re-route undelivered messages addressed to ``address``.

        Every undelivered message to ``address`` is taken off the network;
        ``reroute(message)`` (evaluated once per message) names its new
        destination, or ``None`` to drop it — the same fate
        :meth:`drop_in_flight` would apply.  Models owner failover: when a
        query owner crashes, answers still in flight towards it are re-sent
        by their producers to the re-registered owner once the failure is
        detected — so each re-routed message is a fresh, fully charged
        direct transmission from its original sender.  Messages whose
        sender has itself left the ring cannot be re-sent and are counted
        as dropped.  Returns the number of re-routed messages.
        """
        pending = self.transport.extract_inbound(address)
        rerouted = 0
        for envelope in pending:
            destination = reroute(envelope.message)
            if destination is None or not self.ring.has_address(
                envelope.sender
            ):
                self._dropped += 1
                continue
            # The extracted envelope was never delivered, so its span was
            # never opened: the re-send carries the *same* trace context and
            # the eventual delivery stays inside the original trace.
            self.send_direct(
                envelope.sender,
                envelope.message,
                destination,
                trace=envelope.trace,
            )
            rerouted += 1
        return rerouted

    @property
    def dropped_messages(self) -> int:
        """Messages the network lost instead of delivering.

        Counts both deliveries whose destination had no registered handler
        (the address departed after the message was sent) and in-flight
        messages destroyed by a crash (:meth:`drop_in_flight`).
        """
        return self._dropped

    # ------------------------------------------------------------------
    # maximum-delay estimate (Section 4)
    # ------------------------------------------------------------------
    def max_transit_delay(self) -> float:
        """An upper bound on the delivery delay of any single message.

        A lookup takes at most ``bits`` hops with perfect finger tables; the
        bound is used to derive a safe ALTT expiry Δ.
        """
        max_hops = self.ring.space.bits
        return max_hops * self.hop_delay + self.delay_jitter

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    def send(
        self,
        sender: str,
        message: Message,
        identifier: int,
        is_ric: bool = False,
    ) -> Envelope:
        """``send(msg, id)``: deliver ``message`` to ``Successor(identifier)``."""
        sender_node = self.ring.node_by_address(sender)
        path = self.ring.route_path(sender_node, identifier)
        return self._transmit(sender_node, path, message, identifier, is_ric)

    def multi_send(
        self,
        sender: str,
        messages: Sequence[Message],
        identifiers: Sequence[int],
        is_ric: bool = False,
    ) -> List[Envelope]:
        """``multiSend(M, I)``: deliver ``messages[j]`` to ``Successor(identifiers[j])``.

        When a single message instance should reach several identifiers
        (``multiSend(msg, I)`` in the paper), pass a list repeating the same
        message object; the cost model is identical (``d * O(log N)`` hops).
        """
        if len(messages) != len(identifiers):
            raise RoutingError(
                "multi_send requires one identifier per message "
                f"({len(messages)} messages, {len(identifiers)} identifiers)"
            )
        sender_node = self.ring.node_by_address(sender)
        envelopes = []
        sends = 0
        routed: Dict[str, int] = {}
        for message, identifier in zip(messages, identifiers):
            path = self.ring.route_path(sender_node, identifier)
            envelope = self._transmit(
                sender_node, path, message, identifier, is_ric, record_traffic=False
            )
            envelopes.append(envelope)
            # Coalesce the traffic accounting over the whole batch: one
            # counter update per transmitting node instead of one per message.
            if envelope.hops > 0:
                sends += 1
                for forwarder in envelope.route[1:-1]:
                    routed[forwarder] = routed.get(forwarder, 0) + 1
        if sends:
            self.traffic.record_send(sender, is_ric=is_ric, count=sends)
        for forwarder, count in routed.items():
            self.traffic.record_route(forwarder, is_ric=is_ric, count=count)
        return envelopes

    def send_direct(
        self,
        sender: str,
        message: Message,
        destination: str,
        is_ric: bool = False,
        trace: Optional[TraceContext] = None,
    ) -> Envelope:
        """``sendDirect(msg, addr)``: deliver ``message`` to a known address in one hop."""
        sender_node = self.ring.node_by_address(sender)
        if destination == sender:
            # Local delivery: no network transmission.
            path = [sender_node]
        elif self.ring.has_address(destination):
            path = [sender_node, self.ring.node_by_address(destination)]
        else:
            # The destination left the ring (or crashed) after handing out
            # its address.  The sender cannot know that: the transmission is
            # still paid for, and the message is dropped on (non-)delivery
            # because no handler is registered for the address any more.
            # Only the address matters for delivery, so a placeholder node
            # stands in for the departed destination on the path.
            path = [sender_node, ChordNode(0, destination)]
        return self._transmit(
            sender_node,
            path,
            message,
            identifier=None,
            is_ric=is_ric,
            direct=True,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _transmit(
        self,
        sender_node: ChordNode,
        path: List[ChordNode],
        message: Message,
        identifier: Optional[int],
        is_ric: bool,
        direct: bool = False,
        record_traffic: bool = True,
        trace: Optional[TraceContext] = None,
    ) -> Envelope:
        destination = path[-1]
        hops = len(path) - 1
        if hops > 0 and record_traffic:
            self.traffic.record_path(
                sender_node.address,
                [node.address for node in path[1:]],
                is_ric=is_ric,
            )
        delay = hops * self.hop_delay
        if self.delay_jitter > 0:
            delay += self._rng.uniform(0.0, self.delay_jitter)
        envelope = Envelope(
            message=message,
            sender=sender_node.address,
            destination=destination.address,
            target_identifier=identifier,
            route=tuple(node.address for node in path),
            hops=hops,
            sent_at=self.transport.now,
            delivered_at=self.transport.now + delay,
            direct=direct,
        )
        if self._obs is not None:
            envelope.trace = (
                trace if trace is not None else self._obs.context_for(envelope)
            )
        self.transport.post(envelope, delay)
        return envelope

    def _deliver(self, envelope: Envelope) -> None:
        handler = self._handlers.get(envelope.destination)
        if handler is None:
            self._dropped += 1
            if self._obs is not None:
                self._obs.record_dropped(envelope)
            return
        if self._obs is None:
            handler(envelope)
            return
        span = self._obs.delivery_begin(envelope, self.transport.pending_events)
        try:
            handler(envelope)
        finally:
            self._obs.delivery_end(span)
