"""Tests for the declarative scenario registry."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.scenarios import (
    SCENARIOS,
    Scenario,
    Variant,
    get_scenario,
    scenario_names,
)
from repro.experiments.config import ExperimentConfig
from repro.sql.ast import WindowSpec

EXPLORATORY = (
    "baseline",
    "skew-sweep",
    "window-churn",
    "bursty",
    "query-flood",
    "hot-key",
    "node-churn",
    "query-churn",
    "owner-failover",
    "latency",
    "store-backends",
)
FIGURES = ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig9")


class TestRegistry:
    def test_required_scenarios_registered(self):
        for name in EXPLORATORY + FIGURES:
            assert name in SCENARIOS, name

    def test_get_scenario_unknown_name(self):
        with pytest.raises(ExperimentError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    def test_scenario_names_sorted(self):
        names = scenario_names()
        assert names == sorted(names)
        assert set(EXPLORATORY) <= set(names)

    def test_register_is_idempotent_by_name(self):
        scenario = get_scenario("baseline")
        assert SCENARIOS["baseline"] is scenario


class TestCellExpansion:
    def test_grid_shape(self):
        scenario = get_scenario("skew-sweep")
        cells = scenario.cells(seeds=[1, 2], strategies=["rjoin", "worst"])
        assert len(cells) == len(scenario.default_variants) * 2 * 2
        ids = [cell.cell_id for cell in cells]
        assert len(set(ids)) == len(ids)

    def test_cell_configs_carry_variant_strategy_seed(self):
        scenario = get_scenario("skew-sweep")
        cell = scenario.cells(seeds=[5], strategies=["worst"])[0]
        assert cell.config.strategy == "worst"
        assert cell.config.seed == 5
        assert cell.config.zipf_theta == 0.0
        assert cell.config.name == "skew-sweep-theta=0.0"

    def test_overrides_apply_before_variant(self):
        scenario = get_scenario("skew-sweep")
        cell = scenario.cells(seeds=[1], overrides={"num_nodes": 20})[0]
        assert cell.config.num_nodes == 20

    def test_cell_ids_are_filesystem_safe(self):
        for name in EXPLORATORY:
            for cell in get_scenario(name).cells(seeds=[1]):
                assert "/" not in cell.cell_id
                assert " " not in cell.cell_id

    def test_variant_named(self):
        scenario = get_scenario("hot-key")
        variant = scenario.variant_named("hot=0.5")
        assert variant.overrides["hot_key_fraction"] == 0.5
        with pytest.raises(ExperimentError):
            scenario.variant_named("missing")


class TestScenarioSemantics:
    def test_bursty_uses_batch_publication(self):
        scenario = get_scenario("bursty")
        for cell in scenario.cells(seeds=[1]):
            assert cell.config.publish_mode == "batch"
            assert cell.config.batch_size in (5, 20, 50)

    def test_window_churn_sets_sliding_windows(self):
        scenario = get_scenario("window-churn")
        sizes = sorted(
            cell.config.window.size for cell in scenario.cells(seeds=[1])
        )
        assert sizes == [10.0, 25.0, 50.0, 100.0]
        assert all(
            cell.config.window.mode == "tuples"
            for cell in scenario.cells(seeds=[1])
        )

    def test_query_flood_has_more_queries_than_tuples(self):
        for cell in get_scenario("query-flood").cells(seeds=[1]):
            assert cell.config.num_queries >= 10 * cell.config.num_tuples

    def test_hot_key_sweeps_fraction(self):
        fractions = sorted(
            cell.config.hot_key_fraction
            for cell in get_scenario("hot-key").cells(seeds=[1])
        )
        assert fractions == [0.0, 0.25, 0.5, 0.9]

    def test_baseline_covers_all_four_strategies(self):
        strategies = {
            cell.strategy for cell in get_scenario("baseline").cells(seeds=[1])
        }
        assert strategies == {"worst", "random", "rjoin", "first"}

    def test_full_scale_bases(self):
        scenario = get_scenario("fig3")
        assert scenario.base(full_scale=False).num_nodes == 100
        assert scenario.base(full_scale=True).num_nodes == 1000
        default_sweep = [
            v.overrides["num_tuples"] for v in scenario.variants(full_scale=False)
        ]
        paper_sweep = [
            v.overrides["num_tuples"] for v in scenario.variants(full_scale=True)
        ]
        assert default_sweep == [20, 40, 80, 160]
        assert paper_sweep[-1] == 2560


class TestCustomScenario:
    def test_variant_apply(self):
        base = ExperimentConfig(num_nodes=16, num_queries=10, num_tuples=10)
        variant = Variant(
            label="w", overrides={"window": WindowSpec(size=5, mode="tuples")}
        )
        config = variant.apply(base)
        assert config.window.size == 5

    def test_cells_from_unregistered_scenario(self):
        scenario = Scenario(
            name="adhoc",
            description="not registered",
            axis="num_tuples",
            default_base=ExperimentConfig(num_nodes=16, num_queries=10, num_tuples=10),
            default_variants=(Variant(label="n=10", overrides={"num_tuples": 10}),),
            seeds=(1,),
        )
        cells = scenario.cells()
        assert len(cells) == 1
        assert cells[0].cell_id == "adhoc__n=10__rjoin__seed1"
        assert "adhoc" not in SCENARIOS
