"""RJoin — the paper's primary contribution.

The core package implements the recursive join algorithm of Sections 3–7:

* :mod:`repro.core.keys` — attribute-level and value-level indexing keys,
* :mod:`repro.core.rewriting` — incremental query rewriting (tuple ⨝ query),
* :mod:`repro.core.windows` — sliding-window validity and garbage collection,
* :mod:`repro.core.dedup` — DISTINCT / set-semantics projection tracking,
* :mod:`repro.core.altt` — attribute-level tuple table (Section 4, Δ expiry),
* :mod:`repro.core.ric` — rate-of-incoming-tuples bookkeeping, candidate
  table and piggy-backing,
* :mod:`repro.core.strategy` — indexing-candidate enumeration and the
  RJoin / Random / Worst / First strategies,
* :mod:`repro.core.protocol` — the wire messages (newTuple, Eval, RIC, ...),
* :mod:`repro.core.node` — the per-node protocol handlers (Procedures 1–3),
* :mod:`repro.core.membership` — ownership deltas and state re-homing for
  dynamic ring membership (join / graceful leave / crash / id movement),
* :mod:`repro.core.engine` — the public engine facade,
* :mod:`repro.core.reference` — the centralised continuous-join oracle used
  to validate soundness, completeness and duplicate-freedom.
"""

from repro.core.answers import Answer, QueryHandle
from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.core.membership import MembershipManager, RehomeReport
from repro.core.reference import ReferenceEngine
from repro.core.strategy import (
    FirstCandidateStrategy,
    IndexingStrategy,
    RJoinStrategy,
    RandomStrategy,
    WorstStrategy,
    make_strategy,
)

__all__ = [
    "Answer",
    "FirstCandidateStrategy",
    "IndexingStrategy",
    "MembershipManager",
    "QueryHandle",
    "RJoinConfig",
    "RJoinEngine",
    "RJoinStrategy",
    "RandomStrategy",
    "ReferenceEngine",
    "RehomeReport",
    "WorstStrategy",
    "make_strategy",
]
