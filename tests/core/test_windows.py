"""Tests for sliding-window validity and garbage collection."""


from repro.core.windows import (
    WindowState,
    admits,
    combination_valid,
    expired,
    extend,
    initial_state,
    tuple_expired,
)
from repro.data.schema import RelationSchema
from repro.data.tuples import Tuple
from repro.sql.ast import WindowSpec


SCHEMA = RelationSchema("R", ["a"])


def tup(pub_time, sequence=0):
    return Tuple.from_schema(SCHEMA, (1,), pub_time=pub_time, sequence=sequence)


class TestWindowState:
    def test_span_uses_plus_one_convention(self):
        state = WindowState(min_clock=3, max_clock=7)
        assert state.span == 5

    def test_extension_updates_bounds(self):
        state = WindowState(min_clock=3, max_clock=7)
        assert state.extended_with(1) == WindowState(1, 7)
        assert state.extended_with(9) == WindowState(3, 9)
        assert state.extended_with(5) == state


class TestAdmission:
    def test_windowless_always_admits(self):
        assert admits(None, None, tup(100))
        assert extend(None, None, tup(100)) is None

    def test_first_tuple_always_admitted(self):
        window = WindowSpec(size=5, mode="time")
        assert admits(window, None, tup(1000))
        state = extend(window, None, tup(1000))
        assert state == WindowState(1000, 1000)
        assert initial_state(window, tup(1000)) == state

    def test_within_window_admitted(self):
        window = WindowSpec(size=5, mode="time")
        state = initial_state(window, tup(10))
        assert admits(window, state, tup(14))      # span 5 <= 5
        assert not admits(window, state, tup(15))  # span 6 > 5

    def test_order_independence(self):
        window = WindowSpec(size=5, mode="time")
        state = initial_state(window, tup(14))
        assert admits(window, state, tup(10))
        assert not admits(window, state, tup(9))

    def test_tuple_mode_uses_sequence_numbers(self):
        window = WindowSpec(size=3, mode="tuples")
        state = initial_state(window, tup(0.0, sequence=10))
        assert admits(window, state, tup(99.0, sequence=12))
        assert not admits(window, state, tup(0.1, sequence=14))


class TestExpiry:
    def test_expired_when_oldest_tuple_out_of_reach(self):
        window = WindowSpec(size=5, mode="time")
        state = WindowState(min_clock=10, max_clock=12)
        assert not expired(window, state, current_clock=14)
        assert expired(window, state, current_clock=15)

    def test_windowless_never_expires(self):
        assert not expired(None, WindowState(0, 0), current_clock=1e9)
        assert not expired(WindowSpec(size=5), None, current_clock=1e9)

    def test_tuple_expired(self):
        window = WindowSpec(size=5, mode="time")
        assert not tuple_expired(window, tup(10), current_clock=14)
        assert tuple_expired(window, tup(10), current_clock=15)
        assert not tuple_expired(None, tup(10), current_clock=1e9)


class TestCombinationValidity:
    def test_combination_valid(self):
        window = WindowSpec(size=5, mode="time")
        assert combination_valid(window, (10, 12, 14))
        assert not combination_valid(window, (10, 16))
        assert combination_valid(window, ())
        assert combination_valid(None, (0, 1e9))

    def test_consistency_with_incremental_admission(self):
        """Incremental admits() accepts exactly the combinations combination_valid() does."""
        window = WindowSpec(size=4, mode="time")
        clocks = [3, 5, 6, 8]
        state = None
        admitted_all = True
        for clock in clocks:
            candidate = tup(clock)
            if not admits(window, state, candidate):
                admitted_all = False
                break
            state = extend(window, state, candidate)
        assert admitted_all == combination_valid(window, tuple(clocks))
