"""End-to-end experiment runner.

An experiment follows the structure used throughout Section 8:

1. build a Chord network of ``num_nodes`` nodes,
2. submit ``num_queries`` random k-way join queries (they get indexed and
   wait for tuples),
3. publish ``num_tuples`` tuples drawn from the Zipf workload, draining the
   network after every publication,
4. collect the three metrics (network traffic split into total and
   RIC-related, query processing load, storage load), overall, per node
   (ranked distributions), per checkpoint and — when requested — cumulatively
   per published tuple (Figure 8).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.experiments.config import ExperimentConfig
from repro.workload.generator import WorkloadGenerator, WorkloadSpec


@dataclass
class ExperimentResult:
    """Everything measured during one experiment run."""

    config: ExperimentConfig
    summary: Dict[str, float]
    #: Metric totals right before the first measured tuple was published
    #: (i.e. after the warm-up tuples and the query-indexing phase).  The
    #: figures report the difference between the final/checkpoint values and
    #: this baseline so that warm-up load is excluded.
    baseline: Dict[str, float] = field(default_factory=dict)
    #: Metric totals right after the warm-up phase (before query indexing);
    #: used when a figure should include the query-indexing cost (Figure 2
    #: reports total traffic including the RIC requests of input queries) but
    #: still exclude the warm-up tuples.
    warmup_baseline: Dict[str, float] = field(default_factory=dict)
    # Traffic -----------------------------------------------------------------
    messages_total: int = 0
    ric_messages_total: int = 0
    messages_tuple_phase: int = 0
    ric_messages_tuple_phase: int = 0
    # Ranked per-node distributions ------------------------------------------
    ranked_qpl: List[int] = field(default_factory=list)
    ranked_storage: List[int] = field(default_factory=list)
    ranked_storage_current: List[int] = field(default_factory=list)
    ranked_traffic: List[int] = field(default_factory=list)
    # Checkpoints / per-tuple series -------------------------------------------
    checkpoints: Dict[int, Dict[str, float]] = field(default_factory=dict)
    cumulative_qpl: List[int] = field(default_factory=list)
    cumulative_storage: List[int] = field(default_factory=list)
    answers: int = 0

    # ------------------------------------------------------------------
    # derived quantities used by the figures
    # ------------------------------------------------------------------
    @property
    def messages_per_node(self) -> float:
        """Total messages per node (Figure 2a)."""
        return self.messages_total / self.config.num_nodes

    @property
    def ric_messages_per_node(self) -> float:
        """RIC-related messages per node (the "Request RIC" series)."""
        return self.ric_messages_total / self.config.num_nodes

    @property
    def messages_per_node_per_tuple(self) -> float:
        """Tuple-phase messages per node per published tuple (Figures 3a–7a)."""
        tuples = max(self.config.num_tuples, 1)
        return self.messages_tuple_phase / self.config.num_nodes / tuples

    @property
    def ric_messages_per_node_per_tuple(self) -> float:
        """Tuple-phase RIC messages per node per published tuple."""
        tuples = max(self.config.num_tuples, 1)
        return self.ric_messages_tuple_phase / self.config.num_nodes / tuples

    def delta(
        self,
        metric: str,
        at: Optional[Dict[str, float]] = None,
        since_warmup: bool = False,
    ) -> float:
        """``metric`` at a snapshot (default: the final summary) minus a baseline.

        ``since_warmup=True`` subtracts the post-warm-up baseline (so the
        query-indexing phase is included); the default subtracts the
        post-query-indexing baseline (tuple phase only).
        """
        snapshot = self.summary if at is None else at
        reference = self.warmup_baseline if since_warmup else self.baseline
        return snapshot.get(metric, 0.0) - reference.get(metric, 0.0)

    def checkpoint_delta(
        self, checkpoint: int, metric: str, since_warmup: bool = False
    ) -> float:
        """Baseline-adjusted value of ``metric`` at a tuple-count checkpoint."""
        return self.delta(
            metric, at=self.checkpoints[checkpoint], since_warmup=since_warmup
        )

    @property
    def qpl_per_node(self) -> float:
        """Average query processing load per node incurred by the measured tuples."""
        return self.delta("qpl_per_node")

    @property
    def storage_per_node(self) -> float:
        """Average (cumulative) storage load per node incurred by the measured tuples."""
        return self.delta("storage_per_node")

    @property
    def participating_nodes(self) -> int:
        """Nodes that incurred any query-processing load."""
        return int(self.summary.get("participating_nodes", 0))

    @property
    def max_qpl(self) -> int:
        """Load of the most loaded node (QPL)."""
        return self.ranked_qpl[0] if self.ranked_qpl else 0

    @property
    def max_storage(self) -> int:
        """Load of the most loaded node (current storage)."""
        return self.ranked_storage_current[0] if self.ranked_storage_current else 0


def build_engine(config: ExperimentConfig) -> RJoinEngine:
    """Create an engine configured for ``config`` (without any workload)."""
    rj_config = RJoinConfig(
        num_nodes=config.num_nodes,
        runtime=config.runtime,
        strategy=config.strategy,
        store_backend=config.store_backend,
        append_log_compact_min_dead=config.append_log_compact_min_dead,
        append_log_compact_fraction=config.append_log_compact_fraction,
        seed=config.seed,
        owner_failover=config.owner_failover,
        shared_query_state=config.shared_query_state,
        id_movement=config.id_movement,
        hop_delay=config.hop_delay,
        delay_jitter=config.delay_jitter,
        tuple_gc_window=config.window,
        observability=config.observability,
        trace_path=config.trace_path,
        # The experiments explore the full candidate space of Section 6
        # (families (a), (b) and (c)); this is what separates the Worst and
        # Random baselines from RJoin in Figure 2.
        allow_attribute_level_rewrites=True,
    )
    return RJoinEngine(rj_config)


def build_workload(config: ExperimentConfig) -> WorkloadGenerator:
    """Create the workload generator matching ``config``."""
    spec = WorkloadSpec(
        num_relations=config.num_relations,
        attributes_per_relation=config.attributes_per_relation,
        value_domain=config.value_domain,
        zipf_theta=config.zipf_theta,
        join_arity=config.join_arity,
        window=config.window,
        distinct=config.distinct,
        burst_size=config.batch_size,
        hot_key_fraction=config.hot_key_fraction,
        hot_value_count=config.hot_value_count,
        seed=config.seed,
    )
    return WorkloadGenerator(spec)


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one experiment and return every measured series."""
    engine = build_engine(config)
    generator = build_workload(config)
    engine.register_catalog(generator.catalog)

    # Phase 0: warm-up tuples train the rate observations (RIC / oracle) so
    # that query-indexing decisions are informed; their load is excluded from
    # every reported metric through the baseline snapshot below.
    for generated in generator.generate_tuples(config.warmup_tuples):
        engine.publish(generated.relation, generated.values)
    warmup_baseline = engine.metrics_summary()

    # Phase 1: submit and index the continuous queries.  Handles are kept in
    # submission order so the query-churn schedule can pick deterministic
    # victims (oldest / newest) later.
    active_handles = []
    for query in generator.generate_queries(config.num_queries):
        active_handles.append(engine.submit(query, process=False))
    engine.run()
    baseline = engine.metrics_summary()
    messages_after_queries, ric_after_queries = engine.traffic.snapshot()

    # Phase 2: publish tuples, tracking checkpoints and per-tuple load.  In
    # batch mode the stream is grouped into bursts handed to publish_batch
    # (one network drain per burst); snapshots are then taken at burst
    # granularity, so per-tuple series repeat the post-burst value for every
    # tuple of the burst and checkpoints snap to the end of the burst that
    # crosses them.
    checkpoints: Dict[int, Dict[str, float]] = {}
    cumulative_qpl: List[int] = []
    cumulative_storage: List[int] = []
    checkpoint_set = set(config.checkpoints)

    # Membership churn: the ChurnSpec's tuple-indexed schedule becomes
    # kernel-scheduled events.  Each event is scheduled right after the
    # publication that crossed its index, with a small simulated delay so
    # that it fires *while the next publication's messages are in flight* —
    # joins and graceful leaves then defer to the next quiescent point,
    # crashes take effect immediately and destroy in-flight traffic.
    churn_schedule = (
        config.churn.events_for(config.num_tuples)
        if config.churn is not None and config.churn.enabled
        else []
    )
    churn_cursor = 0

    # Query churn: the QueryChurnSpec's tuple-indexed schedule removes (and
    # optionally re-submits) continuous queries between publications.  Unlike
    # membership churn, removal is a synchronous engine operation — it drains
    # the network, broadcasts the retraction and verifies the purge — so it
    # runs inline rather than on the kernel.
    query_churn_schedule = (
        config.query_churn.events_for(config.num_tuples)
        if config.query_churn is not None and config.query_churn.enabled
        else []
    )
    query_churn_cursor = 0
    victim_rng = random.Random(config.seed + 7919)

    def _dispatch_query_churn(index: int) -> None:
        nonlocal query_churn_cursor
        spec = config.query_churn
        while (
            query_churn_cursor < len(query_churn_schedule)
            and query_churn_schedule[query_churn_cursor] <= index
        ):
            query_churn_cursor += 1
            if len(active_handles) <= spec.min_queries or not active_handles:
                continue
            if spec.target == "oldest":
                victim = active_handles.pop(0)
            elif spec.target == "newest":
                victim = active_handles.pop()
            else:
                victim = active_handles.pop(
                    victim_rng.randrange(len(active_handles))
                )
            engine.remove_query(victim.query_id)
            if spec.resubmit:
                active_handles.append(engine.submit(victim.query))

    def _dispatch_churn(index: int) -> None:
        nonlocal churn_cursor
        spec = config.churn
        while (
            churn_cursor < len(churn_schedule)
            and churn_schedule[churn_cursor][0] <= index
        ):
            _, kind = churn_schedule[churn_cursor]
            churn_cursor += 1
            engine.schedule_membership_op(
                kind,
                delay=spec.op_delay,
                graceful=spec.graceful,
                min_nodes=spec.min_nodes,
                max_nodes=spec.max_nodes,
            )

    def _capture(index: int, previous_index: int) -> None:
        if config.capture_per_tuple:
            qpl_total, storage_total = engine.loads.snapshot()
            for _ in range(index - previous_index):
                cumulative_qpl.append(qpl_total - int(baseline.get("total_qpl", 0)))
                cumulative_storage.append(
                    storage_total - int(baseline.get("total_storage", 0))
                )
        crossed = [c for c in checkpoint_set if previous_index < c <= index]
        if crossed:
            summary_now = engine.metrics_summary()
            for checkpoint in crossed:
                checkpoints[checkpoint] = summary_now

    if config.publish_mode == "batch":
        index = 0
        for batch in generator.tuple_batches(
            config.num_tuples, config.batch_size
        ):
            engine.publish_batch(
                [(generated.relation, generated.values) for generated in batch]
            )
            previous_index, index = index, index + len(batch)
            _dispatch_churn(index)
            _dispatch_query_churn(index)
            _capture(index, previous_index)
    else:
        for index, generated in enumerate(
            generator.tuple_stream(config.num_tuples), start=1
        ):
            engine.publish(generated.relation, generated.values)
            _dispatch_churn(index)
            _dispatch_query_churn(index)
            _capture(index, index - 1)

    # Churn events scheduled after the last publication are still pending on
    # the kernel; fire them (and their re-homing) before the final snapshot.
    if churn_schedule:
        engine.run()

    summary = engine.metrics_summary()
    messages_total, ric_total = engine.traffic.snapshot()
    per_node_traffic = [
        counters.total for counters in engine.traffic.per_node().values()
    ]
    result = ExperimentResult(
        config=config,
        summary=summary,
        baseline=baseline,
        warmup_baseline=warmup_baseline,
        messages_total=messages_total,
        ric_messages_total=ric_total,
        messages_tuple_phase=messages_total - messages_after_queries,
        ric_messages_tuple_phase=ric_total - ric_after_queries,
        ranked_qpl=engine.qpl_distribution(),
        ranked_storage=engine.loads.ranked_storage_load(),
        ranked_storage_current=engine.storage_distribution(current=True),
        ranked_traffic=sorted(per_node_traffic, reverse=True),
        checkpoints=checkpoints,
        cumulative_qpl=cumulative_qpl,
        cumulative_storage=cumulative_storage,
        answers=int(summary.get("answers", 0)),
    )
    # Release the runtime (actor tasks, event loop, store handles): on the
    # asyncio transport a garbage-collected loop would warn about pending
    # actor tasks, and sqlite/append-log stores hold real file handles.
    engine.close()
    return result
