"""Transport-conformance suite for every registered runtime.

Every implementation of :class:`repro.net.runtime.Transport` must obey the
same node ↔ network contract — at-most-once delivery, loss-free drain,
in-flight surgery (drop and redirect), cancellable timers, a monotonic
logical clock and an inert post-shutdown state — so the whole suite is
parametrized over the registry, mirroring the store-backend conformance
pattern in ``tests/data/test_store_backends.py``.  A new runtime only has
to register in :func:`repro.net.runtime.make_transport` to be held to the
same invariants.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.net.messages import Envelope, Message
from repro.net.runtime import TRANSPORT_NAMES, Transport, make_transport
from repro.net.runtime_asyncio import AsyncioTransport

pytestmark = pytest.mark.hard_timeout(120)


class Recorder:
    """Delivery callback that records envelopes in arrival order."""

    def __init__(self):
        self.delivered = []

    def __call__(self, envelope: Envelope) -> None:
        self.delivered.append(envelope)

    def ids(self):
        return [env.message.message_id for env in self.delivered]

    def ids_for(self, address: str):
        return [
            env.message.message_id
            for env in self.delivered
            if env.destination == address
        ]


def envelope(destination: str, sender: str = "node-0", delay: float = 1.0):
    return Envelope(
        message=Message(),
        sender=sender,
        destination=destination,
        sent_at=0.0,
        delivered_at=delay,
    )


@pytest.fixture(params=TRANSPORT_NAMES)
def transport(request):
    runtime = make_transport(request.param)
    yield runtime
    runtime.shutdown()


@pytest.fixture
def recorder(transport):
    rec = Recorder()
    transport.bind(rec)
    for address in ("node-0", "node-1", "node-2"):
        transport.register_address(address)
    return rec


class TestFactory:
    def test_every_registered_runtime_constructs(self):
        for name in TRANSPORT_NAMES:
            runtime = make_transport(name)
            assert isinstance(runtime, Transport)
            assert runtime.name == name
            runtime.shutdown()

    def test_unknown_runtime_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown runtime"):
            make_transport("carrier-pigeon")

    def test_only_sim_exposes_a_kernel(self):
        for name in TRANSPORT_NAMES:
            runtime = make_transport(name)
            if name == "sim":
                assert runtime.kernel is not None
            else:
                assert runtime.kernel is None
            runtime.shutdown()


class TestDelivery:
    def test_post_requires_bind(self, transport):
        with pytest.raises(SimulationError, match="bind"):
            transport.post(envelope("node-1"), 1.0)

    def test_every_posted_envelope_arrives_exactly_once(
        self, transport, recorder
    ):
        posted = [envelope(f"node-{i % 3}") for i in range(12)]
        for env in posted:
            transport.post(env, 1.0)
        assert transport.pending_events == 12
        transport.drain()
        assert transport.pending_events == 0
        assert sorted(recorder.ids()) == sorted(
            env.message.message_id for env in posted
        )
        # A second drain is a no-op: nothing is delivered twice.
        transport.drain()
        assert len(recorder.delivered) == 12

    def test_per_destination_posting_order_is_preserved(
        self, transport, recorder
    ):
        # Equal delays: the deterministic runtime delivers in (time,
        # insertion) order, the concurrent one in inbox-FIFO order — both
        # reduce to posting order per destination.
        posted = [envelope("node-1") for _ in range(8)]
        for env in posted:
            transport.post(env, 1.0)
        transport.drain()
        assert recorder.ids_for("node-1") == [
            env.message.message_id for env in posted
        ]

    def test_handler_cascade_completes_within_one_drain(
        self, transport, recorder
    ):
        # A handler that posts a follow-up message: the drain must not
        # declare quiescence until the cascade has run dry.
        hops = []

        def chaining(env: Envelope) -> None:
            recorder(env)
            if len(hops) < 5:
                hops.append(env)
                transport.post(envelope("node-2", sender=env.destination), 0.5)

        transport.bind(chaining)
        transport.post(envelope("node-1"), 1.0)
        transport.drain()
        assert transport.pending_events == 0
        assert len(recorder.delivered) == 6  # the seed plus five follow-ups

    def test_handler_exceptions_surface_from_drain(self, transport, recorder):
        def exploding(env: Envelope) -> None:
            raise SimulationError("handler bug")

        transport.bind(exploding)
        transport.post(envelope("node-1"), 1.0)
        with pytest.raises(SimulationError, match="handler bug"):
            transport.drain()

    def test_max_events_bounds_runaway_cascades(self, transport, recorder):
        # Self-limiting at 200 rounds so the teardown drain (which runs
        # without a budget) still terminates after the budgeted drain raises.
        rounds = []

        def ping_pong(env: Envelope) -> None:
            if len(rounds) >= 200:
                return
            rounds.append(env.destination)
            target = "node-2" if env.destination == "node-1" else "node-1"
            transport.post(envelope(target, sender=env.destination), 0.5)

        transport.bind(ping_pong)
        transport.post(envelope("node-1"), 1.0)
        with pytest.raises(SimulationError, match="maximum"):
            transport.drain(max_events=50)

    def test_is_draining_is_visible_to_handlers(self, transport, recorder):
        observed = []

        def observing(env: Envelope) -> None:
            observed.append(transport.is_draining)

        transport.bind(observing)
        assert transport.is_draining is False
        transport.post(envelope("node-1"), 1.0)
        transport.drain()
        assert observed == [True]
        assert transport.is_draining is False


class TestInFlightSurgery:
    def test_cancel_inbound_drops_only_that_address(self, transport, recorder):
        for _ in range(3):
            transport.post(envelope("node-1"), 1.0)
        for _ in range(2):
            transport.post(envelope("node-2"), 1.0)
        assert transport.cancel_inbound("node-1") == 3
        assert transport.pending_events == 2
        transport.drain()
        assert recorder.ids_for("node-1") == []
        assert len(recorder.ids_for("node-2")) == 2

    def test_cancel_inbound_with_nothing_in_flight(self, transport, recorder):
        assert transport.cancel_inbound("node-1") == 0

    def test_extract_inbound_returns_posting_order(self, transport, recorder):
        posted = [envelope("node-1") for _ in range(4)]
        for env in posted:
            transport.post(env, 1.0)
        transport.post(envelope("node-2"), 1.0)
        extracted = transport.extract_inbound("node-1")
        assert [env.message.message_id for env in extracted] == [
            env.message.message_id for env in posted
        ]
        transport.drain()
        # Extracted envelopes never reach the callback; others still do.
        assert recorder.ids_for("node-1") == []
        assert len(recorder.ids_for("node-2")) == 1

    def test_extracted_envelopes_can_be_reposted(self, transport, recorder):
        # Owner failover: take the in-flight answers off the network, then
        # re-post them towards the new owner.
        for _ in range(3):
            transport.post(envelope("node-1"), 1.0)
        for env in transport.extract_inbound("node-1"):
            env.destination = "node-2"
            transport.post(env, 1.0)
        transport.drain()
        assert recorder.ids_for("node-1") == []
        assert len(recorder.ids_for("node-2")) == 3


class TestTimers:
    def test_timers_fire_in_due_time_order(self, transport, recorder):
        fired = []
        transport.schedule_in(3.0, fired.append, "late")
        transport.schedule_in(1.0, fired.append, "early")
        transport.schedule_at(transport.now + 2.0, fired.append, "middle")
        transport.drain()
        assert fired == ["early", "middle", "late"]

    def test_cancelled_timer_never_fires(self, transport, recorder):
        fired = []
        handle = transport.schedule_in(1.0, fired.append, "cancelled")
        transport.schedule_in(2.0, fired.append, "kept")
        assert transport.pending_events == 2
        handle.cancel()
        assert handle.cancelled
        assert transport.pending_events == 1
        handle.cancel()  # idempotent
        assert transport.pending_events == 1
        transport.drain()
        assert fired == ["kept"]

    def test_cancel_after_firing_is_a_no_op(self, transport, recorder):
        fired = []
        handle = transport.schedule_in(1.0, fired.append, "fired")
        transport.drain()
        handle.cancel()
        assert fired == ["fired"]
        assert transport.pending_events == 0

    def test_scheduling_in_the_past_is_rejected(self, transport, recorder):
        transport.advance_by(10.0)
        with pytest.raises(SimulationError, match="past"):
            transport.schedule_at(5.0, lambda: None)
        with pytest.raises(SimulationError, match="non-negative"):
            transport.schedule_in(-1.0, lambda: None)

    def test_timer_posting_messages_is_drained(self, transport, recorder):
        transport.schedule_in(
            1.0, lambda: transport.post(envelope("node-1"), 0.5)
        )
        transport.drain()
        assert len(recorder.ids_for("node-1")) == 1
        assert transport.pending_events == 0


class TestClock:
    def test_clock_never_moves_backwards(self, transport, recorder):
        transport.advance_to(5.0)
        assert transport.now == 5.0
        with pytest.raises(SimulationError, match="backwards"):
            transport.advance_to(1.0)
        with pytest.raises(SimulationError, match="negative"):
            transport.advance_by(-1.0)

    def test_drain_ratchets_the_clock_to_processed_work(
        self, transport, recorder
    ):
        transport.post(envelope("node-1", delay=2.5), 2.5)
        transport.schedule_in(4.0, lambda: None)
        transport.drain()
        assert transport.now >= 4.0
        assert recorder.delivered[0].delivered_at <= transport.now


class TestShutdown:
    def test_shutdown_drains_outstanding_work(self, transport, recorder):
        transport.post(envelope("node-1"), 1.0)
        transport.schedule_in(1.0, lambda: None)
        transport.shutdown()
        assert len(recorder.ids_for("node-1")) == 1
        assert transport.pending_events == 0

    def test_shutdown_is_idempotent_and_refuses_posts(
        self, transport, recorder
    ):
        transport.shutdown()
        transport.shutdown()
        with pytest.raises(SimulationError, match="shut down"):
            transport.post(envelope("node-1"), 1.0)


class TestBackpressure:
    """Asyncio-specific: bounded inboxes must not deadlock traffic cycles."""

    def test_driver_flood_beyond_capacity_is_fully_delivered(self):
        runtime = AsyncioTransport(inbox_capacity=2, backpressure_timeout=0.01)
        rec = Recorder()
        runtime.bind(rec)
        for _ in range(20):
            runtime.post(envelope("node-1"), 1.0)
        runtime.drain()
        runtime.shutdown()
        assert len(rec.delivered) == 20

    def test_traffic_cycle_with_tiny_inboxes_does_not_deadlock(self):
        runtime = AsyncioTransport(inbox_capacity=1, backpressure_timeout=0.01)
        rounds = []

        def ping_pong(env: Envelope) -> None:
            rounds.append(env.destination)
            if len(rounds) < 12:
                target = "node-2" if env.destination == "node-1" else "node-1"
                runtime.post(envelope(target, sender=env.destination), 0.5)

        runtime.bind(ping_pong)
        runtime.post(envelope("node-1"), 1.0)
        runtime.post(envelope("node-2"), 1.0)
        runtime.drain()
        # Two interleaved chains: one extra envelope can already be in
        # flight when the stop condition trips, so 12 or 13 deliveries.
        assert 12 <= len(rounds) <= 13
        assert runtime.pending_events == 0
        runtime.shutdown()

    def test_inbox_capacity_is_validated(self):
        with pytest.raises(SimulationError, match="at least 1"):
            AsyncioTransport(inbox_capacity=0)
