"""Backend-conformance suite for every registered tuple-store backend.

Every implementation of :class:`repro.data.backends.StoreBackend` must obey
the same contract — publication ordering, strict expiry cutoffs, prefix
matching with identity deduplication, re-homing round-trips and counter
consistency — so the whole suite is parametrized over the registry.  A new
backend only has to register in :func:`repro.data.backends.make_store` to be
held to the same invariants.
"""

from __future__ import annotations

import pytest

from repro.data.backends import (
    BACKEND_NAMES,
    SEPARATOR,
    StoreBackend,
    StoreTuning,
    make_store,
)
from repro.data.schema import RelationSchema
from repro.data.tuples import Tuple
from repro.errors import ConfigurationError


@pytest.fixture
def schema():
    return RelationSchema("R", ["a", "b"])


@pytest.fixture(params=BACKEND_NAMES)
def store(request):
    backend = make_store(request.param)
    yield backend
    backend.close()


def key_for(relation: str, attribute: str, value) -> str:
    return f"{relation}{SEPARATOR}{attribute}{SEPARATOR}{value!r}"


def prefix_for(relation: str, attribute: str) -> str:
    return f"{relation}{SEPARATOR}{attribute}{SEPARATOR}"


def make_tuple(schema, values, seq, pub_time=0.0):
    return Tuple.from_schema(schema, values, pub_time=pub_time, sequence=seq)


class TestFactory:
    def test_every_registered_backend_constructs(self):
        for name in BACKEND_NAMES:
            backend = make_store(name)
            assert isinstance(backend, StoreBackend)
            assert backend.name == name
            backend.close()

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown store backend"):
            make_store("tape-drive")


class TestConformance:
    def test_exact_key_lookup(self, store, schema):
        tup = make_tuple(schema, (1, 2), 1)
        record = store.add("k", tup, now=0.0)
        assert record.tuple == tup
        assert record.key == "k"
        assert store.tuples_for_key("k") == [tup]
        assert store.tuples_for_key("missing") == []
        assert store.has_key("k")
        assert not store.has_key("missing")

    def test_publication_ordering_despite_insertion_order(self, store, schema):
        late = make_tuple(schema, (1, 1), 3, pub_time=5.0)
        early = make_tuple(schema, (2, 2), 1, pub_time=1.0)
        middle = make_tuple(schema, (3, 3), 2, pub_time=3.0)
        for tup in (late, early, middle):
            store.add("k", tup, now=0.0)
        assert [t.sequence for t in store.tuples_for_key("k")] == [1, 2, 3]
        assert [r.tuple.sequence for r in store.records_for_key("k")] == [1, 2, 3]

    def test_prefix_match_dedups_and_orders(self, store, schema):
        shared = make_tuple(schema, (1, 2), 1, pub_time=2.0)
        store.add(key_for("R", "a", 1), shared, now=0.0)
        store.add(key_for("R", "a", 2), shared, now=0.0)  # same publication
        other = make_tuple(schema, (9, 9), 2, pub_time=1.0)
        store.add(key_for("R", "a", 9), other, now=0.0)
        store.add(key_for("S", "a", 1), make_tuple(schema, (7, 7), 3), now=0.0)
        result = store.tuples_for_prefix(prefix_for("R", "a"))
        assert [t.sequence for t in result] == [2, 1]  # ordered, deduplicated
        assert store.tuples_for_prefix(prefix_for("R", "zzz")) == []

    def test_arbitrary_prefix_fallback(self, store, schema):
        store.add("plain-key-1", make_tuple(schema, (1, 1), 1), now=0.0)
        store.add("plain-key-2", make_tuple(schema, (2, 2), 2), now=0.0)
        store.add("other", make_tuple(schema, (3, 3), 3), now=0.0)
        result = store.tuples_for_prefix("plain-key")
        assert sorted(t.sequence for t in result) == [1, 2]

    def test_remove_published_before_is_strict(self, store, schema):
        store.add("k", make_tuple(schema, (1, 1), 1, pub_time=1.0), now=0.0)
        store.add("k", make_tuple(schema, (2, 2), 2, pub_time=2.0), now=0.0)
        store.add("j", make_tuple(schema, (3, 3), 3, pub_time=3.0), now=0.0)
        assert store.remove_published_before(2.0) == 1
        assert [t.sequence for t in store.tuples_for_key("k")] == [2]
        assert len(store) == 2
        assert store.remove_published_before(2.0) == 0

    def test_remove_sequenced_before_is_strict(self, store, schema):
        # Sequence order deliberately disagrees with publication order.
        store.add("k", make_tuple(schema, (1, 1), 5, pub_time=1.0), now=0.0)
        store.add("k", make_tuple(schema, (2, 2), 2, pub_time=2.0), now=0.0)
        store.add("j", make_tuple(schema, (3, 3), 9, pub_time=0.5), now=0.0)
        assert store.remove_sequenced_before(5) == 1
        assert sorted(t.sequence for t in store.tuples_for_key("k")) == [5]
        assert store.remove_sequenced_before(5) == 0
        assert len(store) == 2

    def test_expiry_interleaved_with_new_writes(self, store, schema):
        for seq in range(1, 6):
            store.add(
                "k", make_tuple(schema, (seq, seq), seq, pub_time=float(seq)), now=0.0
            )
        assert store.remove_published_before(3.0) == 2
        # Writes after a GC tick must be seen by the next tick.
        store.add("k", make_tuple(schema, (9, 9), 9, pub_time=3.5), now=0.0)
        assert store.remove_published_before(4.0) == 2  # pub 3.0 and 3.5
        assert [t.sequence for t in store.tuples_for_key("k")] == [4, 5]

    def test_remove_older_than_uses_stored_at(self, store, schema):
        store.add("k", make_tuple(schema, (1, 1), 1), now=0.0)
        store.add("k", make_tuple(schema, (2, 2), 2), now=5.0)
        assert store.remove_older_than("k", cutoff=5.0) == 1
        assert [t.sequence for t in store.tuples_for_key("k")] == [2]
        assert store.remove_older_than("missing", cutoff=5.0) == 0

    def test_remove_key_returns_records_in_publication_order(self, store, schema):
        store.add("k", make_tuple(schema, (2, 2), 2, pub_time=2.0), now=0.5)
        store.add("k", make_tuple(schema, (1, 1), 1, pub_time=1.0), now=0.25)
        removed = store.remove_key("k")
        assert [r.tuple.sequence for r in removed] == [1, 2]
        assert [r.stored_at for r in removed] == [0.25, 0.5]
        assert not store.has_key("k")
        assert len(store) == 0
        assert store.remove_key("k") == []

    @pytest.mark.parametrize("destination", BACKEND_NAMES)
    def test_rehoming_round_trip_lands_in_any_backend(
        self, store, schema, destination
    ):
        """Records extracted from one backend replay into any other kind."""
        key = key_for("R", "a", 1)
        tuples = [
            make_tuple(schema, (seq, seq), seq, pub_time=float(seq))
            for seq in (3, 1, 2)
        ]
        for tup in tuples:
            store.add(key, tup, now=10.0 + tup.sequence)
        target = make_store(destination)
        try:
            for record in store.remove_key(key):
                target.add(record.key, record.tuple, record.stored_at)
            assert len(store) == 0
            assert [t.sequence for t in target.tuples_for_key(key)] == [1, 2, 3]
            assert [r.stored_at for r in target.records_for_key(key)] == [
                11.0,
                12.0,
                13.0,
            ]
            assert target.tuples_for_prefix(prefix_for("R", "a")) == sorted(
                tuples, key=lambda t: t.sequence
            )
        finally:
            target.close()

    def test_len_and_distinct_consistency(self, store, schema):
        shared = make_tuple(schema, (1, 2), 1)
        store.add("k1", shared, now=0.0)
        store.add("k2", shared, now=0.0)
        store.add("k1", make_tuple(schema, (3, 4), 2), now=0.0)
        assert len(store) == 3
        assert store.distinct_tuples() == 2
        store.remove_key("k2")
        assert len(store) == 2
        assert store.distinct_tuples() == 2  # identity 1 still lives under k1
        store.remove_key("k1")
        assert len(store) == 0
        assert store.distinct_tuples() == 0

    def test_cumulative_stored_survives_clear(self, store, schema):
        for seq in range(5):
            store.add("k", make_tuple(schema, (seq, seq), seq), now=0.0)
        assert store.cumulative_stored == 5
        store.clear()
        assert len(store) == 0
        assert store.cumulative_stored == 5
        assert not store.has_key("k")
        store.add("k", make_tuple(schema, (1, 1), 99), now=0.0)
        assert len(store) == 1
        assert store.cumulative_stored == 6

    def test_keys_and_iteration(self, store, schema):
        store.add("a", make_tuple(schema, (1, 1), 1), now=0.0)
        store.add("b", make_tuple(schema, (2, 2), 2), now=0.0)
        assert sorted(store.keys()) == ["a", "b"]
        assert sorted(r.tuple.sequence for r in store) == [1, 2]

    def test_empty_store_edge_cases(self, store):
        assert len(store) == 0
        assert store.distinct_tuples() == 0
        assert list(store.keys()) == []
        assert list(store) == []
        assert store.remove_published_before(100.0) == 0
        assert store.remove_sequenced_before(100) == 0
        assert store.tuples_for_prefix("anything") == []
        store.clear()

    def test_values_round_trip_exactly(self, store, schema):
        """Backends that serialize (sqlite) must preserve value types."""
        tup = make_tuple(schema, ("text", 42), 1)
        store.add("k", tup, now=0.0)
        (stored,) = store.tuples_for_key("k")
        assert stored.values == ("text", 42)
        assert isinstance(stored.values[1], int)
        assert stored.identity == tup.identity


class TestBatchOperations:
    """The set-at-a-time APIs must agree exactly with their per-item forms."""

    def test_add_batch_matches_per_item_adds(self, store, schema):
        entries = [
            (key_for("R", "a", seq % 3), make_tuple(schema, (seq, seq), seq), float(seq))
            for seq in range(1, 9)
        ]
        records = store.add_batch(entries)
        assert [r.tuple.sequence for r in records] == list(range(1, 9))
        assert [r.key for r in records] == [key for key, _, _ in entries]
        assert [r.stored_at for r in records] == [now for _, _, now in entries]
        assert len(store) == 8
        assert store.cumulative_stored == 8
        expected = make_store(store.name)
        try:
            for key, tup, now in entries:
                expected.add(key, tup, now)
            for key in {key for key, _, _ in entries}:
                assert store.tuples_for_key(key) == expected.tuples_for_key(key)
        finally:
            expected.close()

    def test_match_batch_agrees_with_per_probe_lookups(self, store, schema):
        shared = make_tuple(schema, (1, 2), 1, pub_time=2.0)
        store.add(key_for("R", "a", 1), shared, now=0.0)
        store.add(key_for("R", "a", 2), shared, now=0.0)
        store.add(key_for("R", "a", 9), make_tuple(schema, (9, 9), 2, pub_time=1.0), now=0.0)
        store.add(key_for("S", "b", 1), make_tuple(schema, (7, 7), 3), now=0.0)
        store.add("plain-key", make_tuple(schema, (4, 4), 4), now=0.0)
        probes = [
            ("prefix", prefix_for("R", "a")),
            ("key", key_for("R", "a", 1)),
            ("prefix", prefix_for("S", "b")),
            ("key", "missing-key"),
            ("prefix", prefix_for("R", "zzz")),
            ("prefix", "plain"),
            ("prefix", prefix_for("R", "a")),  # repeated probe
        ]
        batched = store.match_batch(probes)
        assert len(batched) == len(probes)
        for (kind, text), result in zip(probes, batched):
            if kind == "key":
                assert result == store.tuples_for_key(text)
            else:
                assert result == store.tuples_for_prefix(text)

    def test_match_batch_rejects_unknown_probe_kind(self, store):
        with pytest.raises(ConfigurationError, match="unknown probe kind"):
            store.match_batch([("range", "whatever")])

    def test_key_probe_keeps_duplicate_identities(self, store, schema):
        # The contract allows the same publication under one key twice; key
        # probes must not deduplicate.
        tup = make_tuple(schema, (1, 1), 1)
        store.add("k", tup, now=0.0)
        store.add("k", tup, now=1.0)
        (result,) = store.match_batch([("key", "k")])
        assert result == [tup, tup]

    def test_tuples_for_prefixes_maps_each_prefix(self, store, schema):
        store.add(key_for("R", "a", 1), make_tuple(schema, (1, 1), 1), now=0.0)
        store.add(key_for("R", "b", 2), make_tuple(schema, (2, 2), 2), now=0.0)
        prefixes = [prefix_for("R", "a"), prefix_for("R", "b"), prefix_for("T", "a")]
        mapping = store.tuples_for_prefixes(prefixes)
        assert set(mapping) == set(prefixes)
        for prefix in prefixes:
            assert mapping[prefix] == store.tuples_for_prefix(prefix)

    def test_batch_results_stay_consistent_across_writes_and_gc(self, store, schema):
        """Memoised bucket results must track interleaved mutation exactly."""
        prefix = prefix_for("R", "a")
        for seq in range(1, 11):
            store.add(
                key_for("R", "a", seq % 4),
                make_tuple(schema, (seq, seq), seq, pub_time=float(seq)),
                now=0.0,
            )
        first = store.tuples_for_prefix(prefix)
        assert [t.sequence for t in first] == list(range(1, 11))
        # Write after the result was memoised — including one out of
        # publication order.
        store.add(
            key_for("R", "a", 1),
            make_tuple(schema, (12, 12), 12, pub_time=12.0),
            now=0.0,
        )
        store.add(
            key_for("R", "a", 2),
            make_tuple(schema, (11, 11), 11, pub_time=5.5),
            now=0.0,
        )
        assert [t.sequence for t in store.tuples_for_prefix(prefix)] == [
            1, 2, 3, 4, 5, 11, 6, 7, 8, 9, 10, 12,
        ]
        # Ranged GC, keyed removal and re-probing must all agree again.
        assert store.remove_published_before(5.0) == 4
        store.remove_key(key_for("R", "a", 3))
        (after,) = store.match_batch([("prefix", prefix)])
        # seq 3 (already expired) and seq 7 lived under value 3.
        assert {t.sequence for t in after} == {5, 6, 8, 9, 10, 11, 12}
        assert after == store.tuples_for_prefix(prefix)

    def test_remove_expired_combines_both_cutoffs(self, store, schema):
        for seq in range(1, 7):
            store.add(
                "k",
                make_tuple(schema, (seq, seq), seq, pub_time=float(seq)),
                now=0.0,
            )
        # pub_time < 3.0 removes 1, 2; sequence < 5 additionally removes 3, 4.
        assert store.remove_expired(published_before=3.0, sequenced_before=5) == 4
        assert [t.sequence for t in store.tuples_for_key("k")] == [5, 6]
        assert store.remove_expired() == 0

    def test_remove_expired_matches_single_cutoff_forms(self, store, schema):
        for seq in range(1, 5):
            store.add(
                "k",
                make_tuple(schema, (seq, seq), seq, pub_time=float(seq)),
                now=0.0,
            )
        assert store.remove_expired(published_before=2.0) == 1
        assert store.remove_expired(sequenced_before=4) == 2
        assert [t.sequence for t in store.tuples_for_key("k")] == [4]


class TestStoreTuning:
    def test_invalid_tuning_is_rejected(self):
        with pytest.raises(ConfigurationError):
            StoreTuning(compact_min_dead=0)
        with pytest.raises(ConfigurationError):
            StoreTuning(compact_dead_fraction=0.0)
        with pytest.raises(ConfigurationError):
            StoreTuning(compact_dead_fraction=1.5)

    def test_append_log_honours_aggressive_thresholds(self, schema):
        tuning = StoreTuning(compact_min_dead=1, compact_dead_fraction=0.01)
        store = make_store("append-log", tuning=tuning)
        try:
            assert store.compact_min_dead == 1
            for seq in range(1, 21):
                store.add(
                    "k",
                    make_tuple(schema, (seq, seq), seq, pub_time=float(seq)),
                    now=0.0,
                )
            assert store.remove_published_before(11.0) == 10
            # With a tombstone floor of one, a single sweep must compact.
            assert store.compactions >= 1
            assert [t.sequence for t in store.tuples_for_key("k")] == list(
                range(11, 21)
            )
        finally:
            store.close()

    def test_memory_and_sqlite_ignore_tuning(self, schema):
        tuning = StoreTuning(compact_min_dead=1, compact_dead_fraction=0.01)
        for name in ("memory", "sqlite"):
            store = make_store(name, tuning=tuning)
            try:
                store.add("k", make_tuple(schema, (1, 1), 1), now=0.0)
                assert store.tuples_for_key("k")[0].sequence == 1
            finally:
                store.close()
