"""Query-lifecycle cost: removal vs query count, failover, matching vs Q.

Three suites, recorded in ``benchmarks/BENCH_query_lifecycle.json``:

* **remove** — builds a warmed-up engine per population size (queries
  indexed, tuples stored), then retracts a fixed batch of queries and
  records wall-clock per removal plus the records each retraction purged.
  Removal walks every node's query tables, so the per-removal cost grows
  with the indexed population — the sweep makes that visible.
* **failover** — builds a warmed-up engine, then repeatedly crashes the
  owner of a live query handle and records wall-clock per failover and
  re-registrations per crash (handle adoption by the ring successor plus
  replica repair).
* **matching** — trigger-match throughput as the resident query count
  scales through 10^3/10^4/10^5 (delegated to
  ``bench_query_matching._measure_matching``): the lifecycle of a large
  query population is only viable when tuple arrivals stay sublinear in
  it, so the sweep rides along here as well as in the dedicated report.

Usage::

    PYTHONPATH=src python benchmarks/bench_query_lifecycle.py [--smoke]
        [--removals N] [--crashes N] [--nodes N] [--tuples N]

``--smoke`` shrinks everything to a correctness sweep (used by
``run_all.py`` / the ``bench_smoke`` marker).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_query_lifecycle.json"

DEFAULT_SIZES = {
    "nodes": 48,
    "tuples": 200,
    "query_counts": (100, 200, 400),
    "removals": 40,
    "crashes": 12,
    "matching_counts": (1_000, 10_000, 100_000),
    "matching_probes": 20_000,
}
SMOKE_SIZES = {
    "nodes": 12,
    "tuples": 20,
    "query_counts": (8,),
    "removals": 3,
    "crashes": 2,
    "matching_counts": (200,),
    "matching_probes": 500,
}


def _import_sibling(name: str):
    """Import a sibling benchmark module (works from the repo root too)."""
    try:
        return __import__(name)
    except ImportError:
        return __import__(f"benchmarks.{name}", fromlist=[name])


def _build_engine(nodes: int, queries: int, tuples: int, seed: int = 9):
    """A warmed-up engine plus its handles, in submission order."""
    spec = WorkloadSpec(
        num_relations=6,
        attributes_per_relation=4,
        value_domain=20,
        join_arity=3,
        seed=seed,
    )
    generator = WorkloadGenerator(spec)
    engine = RJoinEngine(RJoinConfig(num_nodes=nodes, seed=seed))
    engine.register_catalog(generator.catalog)
    handles = []
    for query in generator.generate_queries(queries):
        handles.append(engine.submit(query, process=False))
    engine.run()
    for generated in generator.generate_tuples(tuples):
        engine.publish(generated.relation, generated.values, process=False)
    engine.run()
    return engine, handles


def _measure_removal(
    nodes: int, queries: int, tuples: int, removals: int
) -> Dict[str, object]:
    """Time ``removals`` retractions against a ``queries``-strong population."""
    engine, handles = _build_engine(nodes, queries, tuples)
    removals = min(removals, len(handles))
    started = time.perf_counter()
    for handle in handles[:removals]:
        engine.remove_query(handle.query_id)
    elapsed = time.perf_counter() - started
    per_removal = elapsed / removals if removals else 0.0
    return {
        "name": f"remove-q{queries}",
        "queries": queries,
        "removals": removals,
        "seconds": elapsed,
        "seconds_per_removal": per_removal,
        "removals_per_second": (1.0 / per_removal) if per_removal else 0.0,
        "records_retracted": engine.churn.records_retracted,
        "records_vacuumed": engine.churn.records_vacuumed,
        "orphaned_state_records": engine.churn.orphaned_state_records,
    }


def _measure_failover(
    nodes: int, queries: int, tuples: int, crashes: int
) -> Dict[str, object]:
    """Time ``crashes`` owner crashes (failover + replica repair) each."""
    engine, handles = _build_engine(nodes, queries, tuples)
    performed = 0
    started = time.perf_counter()
    for handle in handles:
        if performed >= crashes or len(engine.ring) <= 2:
            break
        if handle.owner not in engine.nodes:
            continue  # already failed over to another crashed owner's heir
        engine.crash_node(handle.owner)
        performed += 1
    elapsed = time.perf_counter() - started
    per_crash = elapsed / performed if performed else 0.0
    stats = engine.churn
    return {
        "name": f"failover-q{queries}",
        "queries": queries,
        "crashes": performed,
        "seconds": elapsed,
        "seconds_per_crash": per_crash,
        "failovers_per_second": (1.0 / per_crash) if per_crash else 0.0,
        "failover_reregistrations": stats.failover_reregistrations,
        "answers_rerouted": stats.answers_rerouted,
        "reregistrations_per_crash": (
            stats.failover_reregistrations / performed if performed else 0.0
        ),
    }


def run_bench(smoke: bool = False, **overrides) -> Dict[str, object]:
    """Measure removal and failover cost across the query-count sweep."""
    sizes = dict(SMOKE_SIZES if smoke else DEFAULT_SIZES)
    sizes.update({k: v for k, v in overrides.items() if v is not None})
    results: List[Dict[str, object]] = []
    for queries in sizes["query_counts"]:
        results.append(
            _measure_removal(
                sizes["nodes"], queries, sizes["tuples"], sizes["removals"]
            )
        )
    results.append(
        _measure_failover(
            sizes["nodes"],
            max(sizes["query_counts"]),
            sizes["tuples"],
            sizes["crashes"],
        )
    )
    matching = _import_sibling("bench_query_matching")
    for num_queries in sizes["matching_counts"]:
        row = matching._measure_matching(
            num_queries, sizes["matching_probes"], linear_arrivals=5
        )
        row["name"] = f"matching-q{num_queries}"
        results.append(row)
    sizes["query_counts"] = list(sizes["query_counts"])
    sizes["matching_counts"] = list(sizes["matching_counts"])
    return {"smoke": smoke, "sizes": sizes, "results": results}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes (correctness sweep only)",
    )
    parser.add_argument("--removals", type=int, default=None)
    parser.add_argument("--crashes", type=int, default=None)
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--tuples", type=int, default=None)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    report = run_bench(
        smoke=args.smoke,
        removals=args.removals,
        crashes=args.crashes,
        nodes=args.nodes,
        tuples=args.tuples,
    )
    for row in report["results"]:
        name = str(row["name"])
        if name.startswith("remove"):
            print(
                f"remove   (Q={row['queries']:4d}): {row['removals']} removals, "
                f"{row['seconds_per_removal'] * 1000:.2f} ms/removal, "
                f"{row['records_retracted']} records retracted"
            )
        elif name.startswith("failover"):
            print(
                f"failover (Q={row['queries']:4d}): {row['crashes']} crashes, "
                f"{row['seconds_per_crash'] * 1000:.2f} ms/crash, "
                f"{row['reregistrations_per_crash']:.1f} reregistrations/crash"
            )
        else:
            rates = row["ops_per_sec"]
            print(
                f"matching (Q={row['resident_queries']:6d}): "
                f"indexed {rates['indexed_probe']:12,.0f} probes/s, "
                f"{row['indexed_speedup']:8.1f}x over linear scan"
            )
    if not args.smoke:
        args.output.write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
