"""Unit contract of the tracer: contexts, spans, sinks, export.

The tracer is the propagation half of the observability layer: contexts
link parent to child across messages, the span stack nests around handler
execution, and sinks bound what a run can retain.  Everything here runs on
a hand-held logical clock — no engine involved.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.export import chrome_trace_events, write_chrome_trace
from repro.obs.trace import (
    JsonlSink,
    MemorySink,
    Span,
    TraceContext,
    Tracer,
    load_spans,
)


class LogicalClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, amount=1.0):
        self.now += amount

    def __call__(self):
        return self.now


def make_tracer(**kwargs):
    sink = MemorySink()
    clock = LogicalClock()
    return Tracer(sink, clock=clock, **kwargs), sink, clock


class TestContexts:
    def test_new_trace_roots_and_registers_start_time(self):
        tracer, _, clock = make_tracer()
        clock.advance(5.0)
        context = tracer.new_trace("pub-1")
        assert context == TraceContext("pub-1", 1, None, 0)
        assert tracer.trace_start("pub-1") == 5.0
        assert tracer.traces_started == 1

    def test_reopening_a_trace_keeps_the_original_start(self):
        tracer, _, clock = make_tracer()
        tracer.new_trace("pub-1")
        clock.advance()
        tracer.new_trace("pub-1")
        assert tracer.trace_start("pub-1") == 0.0
        assert tracer.traces_started == 1

    def test_child_links_parent_and_increments_hop(self):
        tracer, _, _ = make_tracer()
        root = tracer.new_trace("pub-1")
        child = tracer.child(root)
        grandchild = tracer.child(child)
        assert child.parent_id == root.span_id
        assert child.trace_id == "pub-1"
        assert child.hop == 1
        assert grandchild.hop == 2
        assert len({root.span_id, child.span_id, grandchild.span_id}) == 3

    def test_trace_start_eviction_is_oldest_first(self):
        tracer, _, _ = make_tracer(max_traces=2)
        tracer.new_trace("t1")
        tracer.new_trace("t2")
        tracer.new_trace("t3")
        assert tracer.trace_start("t1") is None
        assert tracer.trace_start("t3") == 0.0

    def test_max_traces_must_be_positive(self):
        with pytest.raises(ObservabilityError):
            Tracer(MemorySink(), clock=LogicalClock(), max_traces=0)


class TestSpans:
    def test_span_context_manager_records_on_exit(self):
        tracer, sink, clock = make_tracer()
        context = tracer.new_trace("pub-1")
        with tracer.span(context, name="publish", node="node-0") as span:
            assert tracer.current is context
            clock.advance(3.0)
        assert tracer.current is None
        assert sink.spans == [span]
        assert span.duration == 3.0
        assert span.wall_us == 0.0  # deterministic runtime: no wall clock

    def test_begin_end_pair_matches_context_manager(self):
        tracer, sink, clock = make_tracer()
        context = tracer.new_trace("pub-1")
        span = tracer.begin_span(context, name="publish", node="node-0")
        assert tracer.current is context
        clock.advance(2.0)
        tracer.end_span(span)
        assert tracer.current is None
        assert sink.spans == [span]
        assert span.end == 2.0

    def test_nested_spans_restore_the_outer_context(self):
        tracer, sink, _ = make_tracer()
        outer = tracer.new_trace("pub-1")
        with tracer.span(outer, name="publish", node="node-0"):
            inner = tracer.child(outer)
            with tracer.span(inner, name="IndexTuple", node="node-3"):
                assert tracer.current is inner
            assert tracer.current is outer
        # Inner finished (and was recorded) first.
        assert [s.name for s in sink.spans] == ["IndexTuple", "publish"]

    def test_span_records_even_when_the_handler_raises(self):
        tracer, sink, _ = make_tracer()
        context = tracer.new_trace("pub-1")
        with pytest.raises(RuntimeError):
            with tracer.span(context, name="publish", node="node-0"):
                raise RuntimeError("handler blew up")
        assert len(sink.spans) == 1
        assert tracer.current is None

    def test_wall_clock_tracer_records_service_time(self):
        sink = MemorySink()
        tracer = Tracer(sink, clock=LogicalClock(), wall_clock=True)
        context = tracer.new_trace("pub-1")
        with tracer.span(context, name="publish", node="node-0"):
            pass
        assert sink.spans[0].wall_us > 0.0


class TestSinks:
    def test_memory_sink_bounds_and_counts_drops(self):
        sink = MemorySink(max_spans=2)
        tracer = Tracer(sink, clock=LogicalClock())
        for index in range(4):
            context = tracer.new_trace(f"t{index}")
            with tracer.span(context, name="op", node="n"):
                pass
        assert len(sink.spans) == 2
        assert sink.recorded == 2
        assert sink.dropped == 2

    def test_max_spans_must_be_positive(self):
        with pytest.raises(ObservabilityError):
            MemorySink(max_spans=0)

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        tracer = Tracer(sink, clock=LogicalClock())
        context = tracer.new_trace("pub-1")
        with tracer.span(context, name="publish", node="node-0"):
            pass
        sink.close()
        loaded = load_spans(str(path))
        assert len(loaded) == 1
        assert loaded[0].trace_id == "pub-1"
        assert loaded[0].name == "publish"

    def test_closed_jsonl_sink_rejects_spans(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "trace.jsonl"))
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ObservabilityError, match="closed"):
            sink.record(
                Span(
                    trace_id="t",
                    span_id=1,
                    parent_id=None,
                    name="op",
                    node="n",
                    start=0.0,
                    end=0.0,
                    sent_at=0.0,
                    hops=0,
                    hop=0,
                )
            )

    def test_memory_sink_write_jsonl_matches_load_spans(self, tmp_path):
        sink = MemorySink()
        tracer = Tracer(sink, clock=LogicalClock())
        context = tracer.new_trace("pub-1")
        with tracer.span(context, name="publish", node="node-0"):
            pass
        path = tmp_path / "dump.jsonl"
        assert sink.write_jsonl(str(path)) == 1
        assert [s.to_dict() for s in load_spans(str(path))] == [
            s.to_dict() for s in sink.spans
        ]

    def test_load_spans_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"trace_id": "t"}\n')
        with pytest.raises(ObservabilityError, match="malformed trace line"):
            load_spans(str(path))

    def test_span_dict_roundtrip(self):
        span = Span(
            trace_id="t",
            span_id=7,
            parent_id=3,
            name="op",
            node="n",
            start=1.0,
            end=2.0,
            sent_at=0.5,
            hops=2,
            hop=1,
            wall_us=12.5,
        )
        assert Span.from_dict(span.to_dict()).to_dict() == span.to_dict()


class TestChromeExport:
    def _spans(self):
        return [
            Span(
                trace_id="pub-1",
                span_id=1,
                parent_id=None,
                name="publish",
                node="node-0",
                start=0.0,
                end=2.0,
                sent_at=0.0,
                hops=0,
                hop=0,
            ),
            Span(
                trace_id="pub-1",
                span_id=2,
                parent_id=1,
                name="IndexTuple",
                node="node-3",
                start=1.0,
                end=1.0,
                sent_at=0.0,
                hops=2,
                hop=1,
            ),
        ]

    def test_events_carry_nodes_as_threads_and_span_metadata(self):
        events = chrome_trace_events(self._spans())
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["args"]["name"] for e in meta} == {"node-0", "node-3"}
        assert len(complete) == 2
        by_name = {e["name"]: e for e in complete}
        assert by_name["IndexTuple"]["args"]["parent_id"] == 1
        # Zero-duration spans stay clickable.
        assert by_name["IndexTuple"]["dur"] == 1.0

    def test_write_chrome_trace_emits_trace_events_object(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(self._spans(), str(path))
        payload = json.loads(path.read_text())
        assert count == len(payload["traceEvents"])
        assert {e["ph"] for e in payload["traceEvents"]} == {"M", "X"}
