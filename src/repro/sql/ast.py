"""Abstract syntax tree for the supported continuous SQL subset.

The supported query shape is the one used throughout the paper::

    SELECT [DISTINCT] R.A, S.B, ...
    FROM R, S, ...
    WHERE R.A = S.B AND S.C = J.F AND J.D = 7 ...
    [WINDOW <n> TUPLES | WINDOW <n> TIME]

* the ``WHERE`` clause is a conjunction of *equi-join predicates*
  (``R.A = S.B``) and *selection predicates* (``R.A = constant``),
* the optional ``WINDOW`` clause expresses the sliding-window joins of
  Section 5 (time-based or tuple-based),
* ``DISTINCT`` requests set semantics with the duplicate-elimination rule of
  Section 4.

Queries are immutable.  The rewriting step of RJoin (Section 3) produces a
*new* :class:`Query` with one fewer relation; see
:mod:`repro.core.rewriting`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, List, Optional, Tuple, Union

from repro.data.schema import AttributeRef, Catalog
from repro.errors import PredicateBindingError, UnsupportedQueryError


@dataclass(frozen=True, order=True)
class Constant:
    """A literal value appearing in a select list or predicate."""

    value: Any

    def __str__(self) -> str:  # pragma: no cover - trivial
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


SelectItem = Union[AttributeRef, Constant]
Operand = Union[AttributeRef, Constant]


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join predicate ``left = right`` between two attribute refs."""

    left: AttributeRef
    right: AttributeRef

    def relations(self) -> FrozenSet[str]:
        """The relation names referenced by the predicate."""
        return frozenset((self.left.relation, self.right.relation))

    def references(self, relation: str) -> bool:
        """Whether the predicate mentions ``relation`` on either side."""
        return relation in (self.left.relation, self.right.relation)

    def side_for(self, relation: str) -> AttributeRef:
        """Return the side of the predicate that belongs to ``relation``."""
        if self.left.relation == relation:
            return self.left
        if self.right.relation == relation:
            return self.right
        raise PredicateBindingError(
            f"predicate {self} does not reference {relation!r}"
        )

    def other_side(self, relation: str) -> AttributeRef:
        """Return the side of the predicate that does *not* belong to ``relation``.

        For self-join predicates (both sides on the same relation) the right
        side is returned; the rewriting logic handles that case explicitly.
        """
        if self.left.relation == relation and self.right.relation != relation:
            return self.right
        if self.right.relation == relation and self.left.relation != relation:
            return self.left
        if self.left.relation == relation and self.right.relation == relation:
            return self.right
        raise PredicateBindingError(
            f"predicate {self} does not reference {relation!r}"
        )

    def normalized(self) -> "JoinPredicate":
        """Return an equivalent predicate with deterministically ordered sides."""
        if (self.right, self.left) < (self.left, self.right):
            return JoinPredicate(self.right, self.left)
        return self

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class SelectionPredicate:
    """An equality selection ``attr = constant``."""

    attribute: AttributeRef
    value: Any

    def references(self, relation: str) -> bool:
        """Whether the selection applies to ``relation``."""
        return self.attribute.relation == relation

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.attribute} = {Constant(self.value)}"


@dataclass(frozen=True)
class WindowSpec:
    """Sliding-window specification of Section 5.

    ``mode`` is either ``"time"`` (window duration measured in simulation
    time units) or ``"tuples"`` (duration measured in published tuples, using
    the global publication sequence number as a logical clock — see
    DESIGN.md for the substitution note).
    """

    size: float
    mode: str = "time"

    VALID_MODES = ("time", "tuples")

    def __post_init__(self) -> None:
        if self.mode not in self.VALID_MODES:
            raise UnsupportedQueryError(
                f"unsupported window mode {self.mode!r}; expected one of "
                f"{self.VALID_MODES}"
            )
        if self.size <= 0:
            raise UnsupportedQueryError("window size must be positive")

    def clock_of(self, tup) -> float:
        """Return the window clock value of a tuple under this window mode."""
        if self.mode == "time":
            return tup.pub_time
        return float(tup.sequence)

    def __str__(self) -> str:  # pragma: no cover - trivial
        unit = "TIME" if self.mode == "time" else "TUPLES"
        size = int(self.size) if float(self.size).is_integer() else self.size
        return f"WINDOW {size} {unit}"


@dataclass(frozen=True)
class Query:
    """An immutable (possibly rewritten) continuous equi-join query.

    ``relations`` lists the relations still to be joined.  Input queries have
    only attribute references in their select list; rewritten queries
    progressively replace them with :class:`Constant` values as tuples are
    consumed (Section 3).  A query whose ``relations`` and predicates are all
    consumed is *complete*: its where clause is equivalent to ``true`` and
    its select list contains only constants — an answer can be emitted.
    """

    select_items: Tuple[SelectItem, ...]
    relations: Tuple[str, ...]
    join_predicates: Tuple[JoinPredicate, ...] = ()
    selection_predicates: Tuple[SelectionPredicate, ...] = ()
    distinct: bool = False
    window: Optional[WindowSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "select_items", tuple(self.select_items))
        object.__setattr__(self, "relations", tuple(self.relations))
        object.__setattr__(self, "join_predicates", tuple(self.join_predicates))
        object.__setattr__(
            self, "selection_predicates", tuple(self.selection_predicates)
        )
        if len(set(self.relations)) != len(self.relations):
            raise UnsupportedQueryError(
                "self-joins (a relation listed twice in FROM) are not supported"
            )

    # ------------------------------------------------------------------
    # structural accessors
    # ------------------------------------------------------------------
    @property
    def num_joins(self) -> int:
        """Number of join operators remaining in the query."""
        return len(self.join_predicates)

    @property
    def arity(self) -> int:
        """Number of relations that still need to contribute a tuple."""
        return len(self.relations)

    def is_complete(self) -> bool:
        """True when the where clause is equivalent to ``true``.

        A complete query has consumed every relation, has no remaining
        predicates, and its select list consists solely of constants; it
        corresponds to an answer of the original input query.
        """
        return (
            not self.relations
            and not self.join_predicates
            and not self.selection_predicates
            and all(isinstance(item, Constant) for item in self.select_items)
        )

    def references_relation(self, relation: str) -> bool:
        """Whether ``relation`` still appears in FROM."""
        return relation in self.relations

    def predicates(self) -> List[Union[JoinPredicate, SelectionPredicate]]:
        """All predicates (joins first, then selections)."""
        return list(self.join_predicates) + list(self.selection_predicates)

    def attribute_refs(self) -> List[AttributeRef]:
        """Every attribute reference appearing in the query, without duplicates."""
        refs: List[AttributeRef] = []
        seen = set()

        def _add(ref: AttributeRef) -> None:
            if ref not in seen:
                seen.add(ref)
                refs.append(ref)

        for item in self.select_items:
            if isinstance(item, AttributeRef):
                _add(item)
        for jp in self.join_predicates:
            _add(jp.left)
            _add(jp.right)
        for sp in self.selection_predicates:
            _add(sp.attribute)
        return refs

    def answer_values(self) -> Tuple[Any, ...]:
        """Return the constant select-list values of a *complete* query."""
        if not self.is_complete():
            raise UnsupportedQueryError(
                "answer_values() requires a complete (fully rewritten) query"
            )
        values = (item.value for item in self.select_items)  # type: ignore[union-attr]
        return tuple(values)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, catalog: Optional[Catalog] = None) -> "Query":
        """Check structural well-formedness (and schema validity if a catalog is given).

        The checks implement the restrictions stated in Section 8: every
        predicate must reference relations listed in FROM, every relation
        must be reachable through the join graph (adjacent joins share a
        relation), and attribute references must exist in the catalog.
        """
        from_set = set(self.relations)
        for ref in self.attribute_refs():
            if ref.relation not in from_set:
                raise UnsupportedQueryError(
                    f"attribute {ref} references a relation missing from FROM"
                )
            if catalog is not None:
                catalog.validate_ref(ref)
        for jp in self.join_predicates:
            if jp.left.relation == jp.right.relation:
                raise UnsupportedQueryError(
                    f"self-join predicate {jp} is not supported"
                )
        if len(self.relations) > 1 and not self._join_graph_connected():
            raise UnsupportedQueryError(
                "the join graph must be connected (adjacent joins must share "
                "a relation)"
            )
        return self

    def _join_graph_connected(self) -> bool:
        """Return whether the relations form a connected join graph."""
        if not self.relations:
            return True
        adjacency = {rel: set() for rel in self.relations}
        for jp in self.join_predicates:
            if jp.left.relation in adjacency and jp.right.relation in adjacency:
                adjacency[jp.left.relation].add(jp.right.relation)
                adjacency[jp.right.relation].add(jp.left.relation)
        start = self.relations[0]
        seen = {start}
        stack = [start]
        while stack:
            rel = stack.pop()
            for neighbour in adjacency[rel]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return len(seen) == len(self.relations)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def with_window(self, window: Optional[WindowSpec]) -> "Query":
        """Return a copy of the query with a different window specification."""
        return Query(
            select_items=self.select_items,
            relations=self.relations,
            join_predicates=self.join_predicates,
            selection_predicates=self.selection_predicates,
            distinct=self.distinct,
            window=window,
        )

    def __str__(self) -> str:  # pragma: no cover - delegated to formatter
        from repro.sql.formatter import format_query

        return format_query(self)
