"""Unit tests for the benchmark regression gate (benchmarks/check_regression.py)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

_MODULE_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
)
spec = importlib.util.spec_from_file_location("check_regression", _MODULE_PATH)
check_regression = importlib.util.module_from_spec(spec)
# dataclass creation resolves cls.__module__ through sys.modules.
sys.modules[spec.name] = check_regression
spec.loader.exec_module(check_regression)

RateSample = check_regression.RateSample


SAMPLE_REPORT = {
    "smoke": False,
    "parameters": {"tuples": 100},
    "results": [
        {
            "backend": "memory",
            "ops_per_sec": {"add": 1000.0, "window_gc": 50.0},
            "seconds": {"add": 0.1},
        },
        {
            "backend": "sqlite",
            "ops_per_sec": {"add": 800.0},
            "seconds": 0.25,
            "residual_records": 7,
        },
    ],
    "events_per_second": 12.5,
    "baseline_ops_per_sec": {"add": 999999.0},
}


class TestCollectRates:
    def test_finds_only_rate_keys_with_stable_paths(self):
        rates = check_regression.collect_rates(SAMPLE_REPORT)
        assert rates == {
            "/results/memory/ops_per_sec/add": RateSample(1000.0, window=0.1),
            "/results/memory/ops_per_sec/window_gc": RateSample(50.0, window=None),
            "/results/sqlite/ops_per_sec/add": RateSample(800.0, window=0.25),
            "/events_per_second": RateSample(12.5, window=None),
        }

    def test_recorded_baselines_inside_reports_are_excluded(self):
        rates = check_regression.collect_rates(SAMPLE_REPORT)
        assert not any("baseline" in path for path in rates)


class TestCompareReports:
    def _compare(self, baseline, candidate, threshold=0.30, min_window=0.0):
        return check_regression.compare_reports(
            baseline, candidate, threshold, min_window
        )

    def test_within_threshold_passes(self):
        problems, skipped = self._compare(
            {"/a": RateSample(100.0)}, {"/a": RateSample(71.0)}
        )
        assert problems == [] and skipped == []

    def test_regression_beyond_threshold_fails(self):
        problems, _ = self._compare(
            {"/a": RateSample(100.0)}, {"/a": RateSample(69.0)}
        )
        assert len(problems) == 1
        assert "31.0% below" in problems[0]

    def test_missing_candidate_rate_fails(self):
        problems, _ = self._compare({"/a": RateSample(100.0)}, {})
        assert problems == ["/a: rate missing from candidate report"]

    def test_new_candidate_rates_do_not_fail(self):
        problems, _ = self._compare(
            {"/a": RateSample(100.0)},
            {"/a": RateSample(100.0), "/b": RateSample(5.0)},
        )
        assert problems == []

    def test_improvements_pass(self):
        problems, _ = self._compare(
            {"/a": RateSample(100.0)}, {"/a": RateSample(500.0)}
        )
        assert problems == []

    def test_short_window_rates_are_skipped_not_gated(self):
        """A huge 'regression' on a sub-floor window is noise, not a failure."""
        problems, skipped = self._compare(
            {"/a": RateSample(100.0, window=0.001)},
            {"/a": RateSample(1.0, window=0.001)},
            min_window=0.02,
        )
        assert problems == []
        assert len(skipped) == 1 and "not gated" in skipped[0]

    def test_unknown_window_rates_are_still_gated(self):
        problems, skipped = self._compare(
            {"/a": RateSample(100.0)}, {"/a": RateSample(1.0)}, min_window=0.02
        )
        assert len(problems) == 1 and skipped == []


class TestCheckDirectories:
    def _write(self, directory: Path, name: str, rate: float, seconds=1.0) -> None:
        directory.mkdir(parents=True, exist_ok=True)
        (directory / name).write_text(
            json.dumps(
                {
                    "results": [
                        {
                            "backend": "memory",
                            "ops_per_sec": {"add": rate},
                            "seconds": seconds,
                        }
                    ]
                }
            )
        )

    def test_passing_directories(self, tmp_path):
        self._write(tmp_path / "base", "BENCH_x.json", 100.0)
        self._write(tmp_path / "cand", "BENCH_x.json", 95.0)
        code = check_regression.check_directories(
            tmp_path / "base", tmp_path / "cand", 0.30
        )
        assert code == 0

    def test_regressed_directories(self, tmp_path):
        self._write(tmp_path / "base", "BENCH_x.json", 100.0)
        self._write(tmp_path / "cand", "BENCH_x.json", 10.0)
        code = check_regression.check_directories(
            tmp_path / "base", tmp_path / "cand", 0.30
        )
        assert code == 1

    def test_short_windows_do_not_fail_the_gate(self, tmp_path):
        self._write(tmp_path / "base", "BENCH_x.json", 100.0, seconds=0.001)
        self._write(tmp_path / "cand", "BENCH_x.json", 10.0, seconds=0.001)
        code = check_regression.check_directories(
            tmp_path / "base", tmp_path / "cand", 0.30, min_window=0.02
        )
        assert code == 0

    def test_missing_candidate_report(self, tmp_path):
        self._write(tmp_path / "base", "BENCH_x.json", 100.0)
        (tmp_path / "cand").mkdir()
        code = check_regression.check_directories(
            tmp_path / "base", tmp_path / "cand", 0.30
        )
        assert code == 1

    def test_empty_baseline_directory_is_an_error(self, tmp_path):
        (tmp_path / "base").mkdir()
        (tmp_path / "cand").mkdir()
        code = check_regression.check_directories(
            tmp_path / "base", tmp_path / "cand", 0.30
        )
        assert code == 2


class TestRequireGated:
    _write = TestCheckDirectories._write

    def test_required_and_gated_rate_passes(self, tmp_path):
        self._write(tmp_path / "base", "BENCH_x.json", 100.0)
        self._write(tmp_path / "cand", "BENCH_x.json", 95.0)
        code = check_regression.check_directories(
            tmp_path / "base",
            tmp_path / "cand",
            0.30,
            require_gated=["BENCH_x.json/results/memory/ops_per_sec/add"],
        )
        assert code == 0

    def test_required_rate_missing_from_baselines_fails(self, tmp_path):
        self._write(tmp_path / "base", "BENCH_x.json", 100.0)
        self._write(tmp_path / "cand", "BENCH_x.json", 95.0)
        code = check_regression.check_directories(
            tmp_path / "base",
            tmp_path / "cand",
            0.30,
            require_gated=["BENCH_x.json/results/sqlite/ops_per_sec/prefix_match"],
        )
        assert code == 1

    def test_required_rate_below_window_floor_fails(self, tmp_path):
        self._write(tmp_path / "base", "BENCH_x.json", 100.0, seconds=0.001)
        self._write(tmp_path / "cand", "BENCH_x.json", 95.0, seconds=0.001)
        code = check_regression.check_directories(
            tmp_path / "base",
            tmp_path / "cand",
            0.30,
            min_window=0.02,
            require_gated=["BENCH_x.json/results/memory/ops_per_sec/add"],
        )
        assert code == 1

    def test_cli_accepts_repeated_require_gated(self, tmp_path):
        self._write(tmp_path / "base", "BENCH_x.json", 100.0)
        self._write(tmp_path / "cand", "BENCH_x.json", 95.0)
        code = check_regression.main(
            [
                "--baseline",
                str(tmp_path / "base"),
                "--candidate",
                str(tmp_path / "cand"),
                "--require-gated",
                "BENCH_x.json/results/memory/ops_per_sec/add",
            ]
        )
        assert code == 0
