"""Duplicate elimination for DISTINCT queries (Section 4).

Under bag semantics RJoin may legitimately deliver the same answer values
more than once (Example 2 of the paper).  When the input query requests
``DISTINCT``, each node that stores a (rewritten) query applies the paper's
local rule: for a triggering tuple τ of relation ``R``, let ``A1 … Ak`` be
the attributes of ``R`` that appear in the select or where clause of the
stored query; the node keeps the projection ``π_{A1…Ak}(τ)`` and a new tuple
τ' may trigger the stored query only if its projection has not been seen
before.  The rule needs only local state and no extra messages.
"""

from __future__ import annotations

from typing import Any, List, Set, Tuple as TupleT

from repro.data.schema import RelationSchema
from repro.data.tuples import Tuple
from repro.sql.ast import Query


def projection_attributes(query: Query, relation: str) -> TupleT[str, ...]:
    """The attributes of ``relation`` appearing in the select or where clause."""
    attributes: List[str] = []
    seen: Set[str] = set()
    for ref in query.attribute_refs():
        if ref.relation == relation and ref.attribute not in seen:
            seen.add(ref.attribute)
            attributes.append(ref.attribute)
    return tuple(sorted(attributes))


def project(
    query: Query, tup: Tuple, schema: RelationSchema
) -> TupleT[TupleT[str, Any], ...]:
    """The projection of ``tup`` on the attributes relevant to ``query``."""
    attributes = projection_attributes(query, tup.relation)
    return tuple((attr, tup.value_of(attr, schema)) for attr in attributes)


class ProjectionTracker:
    """Per-stored-query memory of the projections that already triggered it."""

    __slots__ = ("_seen",)

    def __init__(self) -> None:
        self._seen: Set[TupleT[TupleT[str, Any], ...]] = set()

    def admits(self, query: Query, tup: Tuple, schema: RelationSchema) -> bool:
        """Whether ``tup`` brings a new projection (and may therefore trigger)."""
        return project(query, tup, schema) not in self._seen

    def record(self, query: Query, tup: Tuple, schema: RelationSchema) -> None:
        """Remember that ``tup``'s projection has triggered the stored query."""
        self._seen.add(project(query, tup, schema))

    def admit_and_record(
        self, query: Query, tup: Tuple, schema: RelationSchema
    ) -> bool:
        """Atomically check and record; returns whether the tuple was admitted."""
        projection = project(query, tup, schema)
        if projection in self._seen:
            return False
        self._seen.add(projection)
        return True

    def __len__(self) -> int:
        return len(self._seen)
