"""Consistent hashing and identifier-circle arithmetic.

Chord assigns both nodes and items m-bit identifiers produced by a
cryptographic hash function, ordered on an identifier circle modulo ``2^m``
(Section 2 of the paper).  :class:`IdentifierSpace` encapsulates the circle:
hashing keys to identifiers, clockwise distance, and circular interval
membership — the three operations everything else is built on.

The default space uses 64 bits (SHA-1 truncated), which is collision-free in
practice for the simulated network sizes while keeping identifiers cheap
Python ints.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Optional

from repro.errors import ConfigurationError

DEFAULT_BITS = 64


_HASH_CACHE_LIMIT = 1 << 20  # identifiers memoised per space before a reset


class IdentifierSpace:
    """An m-bit circular identifier space with consistent hashing."""

    __slots__ = ("bits", "size", "_hash_cache")

    def __init__(self, bits: int = DEFAULT_BITS) -> None:
        if bits <= 0 or bits > 160:
            raise ConfigurationError("identifier space must use between 1 and 160 bits")
        self.bits = bits
        self.size = 1 << bits
        self._hash_cache: dict = {}

    # ------------------------------------------------------------------
    # hashing
    # ------------------------------------------------------------------
    def hash_key(self, key: str) -> int:
        """Map a string key to an identifier via SHA-1 (truncated to m bits).

        Identifiers are memoised: the same indexing keys are hashed over and
        over (once per publication per attribute), and consistent hashing is
        pure, so a bounded cache turns the digest into a dict lookup.
        """
        identifier = self._hash_cache.get(key)
        if identifier is None:
            digest = hashlib.sha1(key.encode("utf-8")).digest()
            identifier = int.from_bytes(digest, "big") % self.size
            if len(self._hash_cache) >= _HASH_CACHE_LIMIT:
                self._hash_cache.clear()
            self._hash_cache[key] = identifier
        return identifier

    def hash_keys(self, keys: Iterable[str]) -> List[int]:
        """Vector form of :meth:`hash_key`."""
        return [self.hash_key(key) for key in keys]

    def random_identifier(self, rng: Optional[random.Random] = None) -> int:
        """Draw a uniformly random identifier (used for node placement)."""
        rng = rng or random
        return rng.randrange(self.size)

    # ------------------------------------------------------------------
    # circle arithmetic
    # ------------------------------------------------------------------
    def normalize(self, identifier: int) -> int:
        """Reduce ``identifier`` modulo the size of the space."""
        return identifier % self.size

    def distance(self, start: int, end: int) -> int:
        """Clockwise distance from ``start`` to ``end`` on the circle."""
        return (end - start) % self.size

    def in_interval(
        self,
        identifier: int,
        start: int,
        end: int,
        inclusive_start: bool = False,
        inclusive_end: bool = True,
    ) -> bool:
        """Whether ``identifier`` lies in the circular interval from ``start`` to ``end``.

        The default bounds ``(start, end]`` match the Chord ownership rule: a
        key ``k`` belongs to the first node whose identifier is equal to or
        follows ``k`` clockwise, i.e. node ``n`` owns keys in
        ``(predecessor(n), n]``.
        """
        identifier = self.normalize(identifier)
        start = self.normalize(start)
        end = self.normalize(end)
        if start == end:
            # The interval covers the whole circle (minus the endpoints,
            # depending on inclusivity).
            if identifier == start:
                return inclusive_start or inclusive_end
            return True
        d_end = self.distance(start, end)
        d_id = self.distance(start, identifier)
        if identifier == start:
            return inclusive_start
        if identifier == end:
            return inclusive_end
        return 0 < d_id < d_end

    def midpoint(self, start: int, end: int) -> int:
        """Identifier halfway along the clockwise arc from ``start`` to ``end``."""
        return self.normalize(start + self.distance(start, end) // 2)

    def power_step(self, identifier: int, exponent: int) -> int:
        """Return ``identifier + 2^exponent`` on the circle (finger targets)."""
        if exponent < 0 or exponent >= self.bits:
            raise ConfigurationError(
                f"finger exponent must be in [0, {self.bits}); got {exponent}"
            )
        return self.normalize(identifier + (1 << exponent))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IdentifierSpace):
            return NotImplemented
        return self.bits == other.bits

    def __hash__(self) -> int:
        return hash(("IdentifierSpace", self.bits))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IdentifierSpace(bits={self.bits})"
