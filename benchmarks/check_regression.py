"""Fail CI when a benchmark's recorded throughput regresses.

Compares two directories of ``BENCH_*.json`` reports — the *baseline*
committed under ``benchmarks/baselines/`` and the *candidate* written by the
current CI run (``run_all.py --write-reports``, which uses measured sizes
for the rate-carrying suites) — and fails when any recorded rate (a numeric
value whose key is ``ops_per_sec``-like, e.g. ``ops_per_sec`` entries or
``events_per_second``) drops by more than the threshold (default 30%).

A rate is only gated when its measurement window is long enough to be
trustworthy: each report records how many seconds the timed section took,
and rates whose window (baseline or candidate) is below ``--min-seconds``
(default 20 ms) are skipped with a note — a 30% tolerance is meaningless on
sub-millisecond timings.

Rates present only in the candidate are reported as new (not failures), so
adding a benchmark never requires updating baselines first; rates present
only in the baseline *are* failures — a silently disappearing benchmark is
exactly what this gate exists to catch.

Caveat: the comparison is of *absolute* rates, so the committed baselines
are only meaningful for the machine class they were measured on.  When the
CI runner class changes (or the gate starts failing on an unchanged tree),
refresh them on the new hardware::

    PYTHONPATH=src python benchmarks/run_all.py --write-reports benchmarks/baselines

and commit the result.  Widening ``--threshold`` is the wrong fix — it
masks real regressions on every machine.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py \
        --baseline benchmarks/baselines --candidate benchmarks/smoke-reports \
        [--threshold 0.30] [--min-seconds 0.02] \
        [--require-gated BENCH_file.json/path/to/rate ...]

``--require-gated`` (repeatable) names rates that MUST be gated: the run
fails if such a rate is absent from the baselines or falls below the
timing-window floor.  It pins the load-bearing rates — e.g. the sqlite
``prefix_match`` throughput the set-at-a-time matching work targets — so a
future change cannot silently shrink their windows out of the gate.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: A numeric leaf is a tracked rate when one of its path components matches.
RATE_KEY = re.compile(r"^(ops_per_sec|\w*_per_second)$")
#: Path components that must *not* count even though they nest rates
#: (recorded historical baselines inside a report are constants, not
#: measurements of this run).
EXCLUDED_KEY = re.compile(r"^baseline_")

#: Labels used to name list elements in a rate path, in preference order.
_LABEL_FIELDS = ("backend", "kind", "benchmark", "name", "suite")


@dataclass(frozen=True)
class RateSample:
    """One recorded rate plus the timing window that produced it."""

    rate: float
    #: Seconds of the timed section, when the report records it (the
    #: nearest enclosing ``"seconds"`` entry); None when undiscoverable.
    window: Optional[float] = None


def _window_of(stack: List[dict], leaf_key: str) -> Optional[float]:
    """The timing window of a rate leaf: the nearest enclosing ``seconds``.

    ``seconds`` may be a number (the whole row's timed section) or a dict
    keyed like the ``ops_per_sec`` dict (one window per operation).
    """
    for enclosing in reversed(stack):
        seconds = enclosing.get("seconds")
        if isinstance(seconds, (int, float)) and not isinstance(seconds, bool):
            return float(seconds)
        if isinstance(seconds, dict):
            value = seconds.get(leaf_key)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
            return None
    return None


def collect_rates(document: object) -> Dict[str, RateSample]:
    """Map ``path -> RateSample`` for every tracked rate in a parsed report."""
    rates: Dict[str, RateSample] = {}

    def _walk(node: object, path: str, tracked: bool, stack: List[dict]) -> None:
        if isinstance(node, dict):
            stack = stack + [node]
            for key, value in node.items():
                if EXCLUDED_KEY.match(str(key)):
                    continue
                _walk(
                    value,
                    f"{path}/{key}",
                    tracked or bool(RATE_KEY.match(str(key))),
                    stack,
                )
        elif isinstance(node, list):
            for index, value in enumerate(node):
                label = str(index)
                if isinstance(value, dict):
                    for field in _LABEL_FIELDS:
                        if isinstance(value.get(field), str):
                            label = value[field]
                            break
                _walk(value, f"{path}/{label}", tracked, stack)
        elif tracked and isinstance(node, (int, float)) and not isinstance(node, bool):
            leaf_key = path.rsplit("/", 1)[-1]
            rates[path] = RateSample(
                rate=float(node), window=_window_of(stack, leaf_key)
            )

    _walk(document, "", tracked=False, stack=[])
    return rates


def compare_reports(
    baseline: Dict[str, RateSample],
    candidate: Dict[str, RateSample],
    threshold: float,
    min_window: float = 0.0,
) -> Tuple[List[str], List[str]]:
    """``(regressions, skipped)`` — human-readable lines per tracked rate.

    A rate is skipped (not gated) when either side's timing window is known
    and below ``min_window`` seconds.
    """
    problems: List[str] = []
    skipped: List[str] = []
    for path, base in sorted(baseline.items()):
        if base.rate <= 0:
            continue
        cand = candidate.get(path)
        if cand is None:
            problems.append(f"{path}: rate missing from candidate report")
            continue
        windows = [w for w in (base.window, cand.window) if w is not None]
        if windows and min(windows) < min_window:
            skipped.append(
                f"{path}: window {min(windows) * 1000:.1f} ms < "
                f"{min_window * 1000:.0f} ms floor, not gated"
            )
            continue
        if cand.rate < base.rate * (1.0 - threshold):
            drop = 100.0 * (1.0 - cand.rate / base.rate)
            problems.append(
                f"{path}: {cand.rate:,.1f}/s is {drop:.1f}% below "
                f"baseline {base.rate:,.1f}/s (threshold {threshold:.0%})"
            )
    return problems, skipped


def check_directories(
    baseline_dir: Path,
    candidate_dir: Path,
    threshold: float,
    min_window: float = 0.02,
    out=sys.stdout,
    require_gated: Sequence[str] = (),
) -> int:
    """Compare every shared ``BENCH_*.json``; returns the exit code.

    ``require_gated`` names full rate paths
    (``BENCH_file.json/path/to/rate``) that must both exist in the
    baselines and actually be gated (not skipped below the window floor).
    """
    baseline_files = {p.name: p for p in sorted(baseline_dir.glob("BENCH_*.json"))}
    if not baseline_files:
        print(f"error: no BENCH_*.json baselines under {baseline_dir}", file=out)
        return 2
    failures: List[str] = []
    checked = 0
    ungated = 0
    gated_paths: set = set()
    for name, baseline_path in baseline_files.items():
        candidate_path = candidate_dir / name
        if not candidate_path.exists():
            failures.append(f"{name}: report missing from candidate directory")
            continue
        base_rates = collect_rates(json.loads(baseline_path.read_text()))
        cand_rates = collect_rates(json.loads(candidate_path.read_text()))
        problems, skipped = compare_reports(
            base_rates, cand_rates, threshold, min_window
        )
        checked += len(base_rates) - len(skipped)
        ungated += len(skipped)
        skipped_prefixes = {note.split(": ", 1)[0] for note in skipped}
        gated_paths.update(
            f"{name}{path}"
            for path in base_rates
            if path not in skipped_prefixes
        )
        for problem in problems:
            failures.append(f"{name}{problem}")
        for note in skipped:
            print(f"note: {name}{note}", file=out)
        new = sorted(set(cand_rates) - set(base_rates))
        for path in new:
            print(f"note: {name}{path} is new (no baseline yet)", file=out)
    for required in require_gated:
        if required not in gated_paths:
            failures.append(
                f"{required}: required rate is not gated (missing from the "
                "baselines or timed below the window floor)"
            )
    if failures:
        print(f"\n{len(failures)} benchmark regression(s):", file=out)
        for failure in failures:
            print(f"  - {failure}", file=out)
        return 1
    print(
        f"no regressions: {checked} rates across {len(baseline_files)} "
        f"report(s) within {threshold:.0%} of baseline "
        f"({ungated} below the {min_window * 1000:.0f} ms window floor)",
        file=out,
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        type=Path,
        required=True,
        help="directory of committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--candidate",
        type=Path,
        required=True,
        help="directory of freshly written BENCH_*.json reports",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated fractional drop of any rate (default 0.30)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.02,
        help="minimum timing window (s) for a rate to be gated (default 0.02)",
    )
    parser.add_argument(
        "--require-gated",
        dest="require_gated",
        action="append",
        default=[],
        metavar="FILE/PATH",
        help="full rate path that must be present and gated (repeatable)",
    )
    args = parser.parse_args(argv)
    return check_directories(
        args.baseline,
        args.candidate,
        args.threshold,
        args.min_seconds,
        require_gated=args.require_gated,
    )


if __name__ == "__main__":
    raise SystemExit(main())
