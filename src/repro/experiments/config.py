"""Experiment configuration.

The paper's experiments run on 10³ nodes with 2·10⁴ continuous queries and up
to 2 560 incoming tuples.  A pure-Python simulation cannot complete that in
benchmark-friendly time, so every figure uses a *reduced default scale* that
preserves the qualitative shapes (who wins, monotonicity, distribution
patterns) and can be switched to the paper scale by setting the environment
variable ``REPRO_FULL_SCALE=1`` (or by passing explicit overrides to the
figure functions).  EXPERIMENTS.md records the scale used for the reported
numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.errors import ExperimentError
from repro.sql.ast import WindowSpec

FULL_SCALE_ENV = "REPRO_FULL_SCALE"


def is_full_scale() -> bool:
    """Whether the paper-scale experiment sizes were requested."""
    return os.environ.get(FULL_SCALE_ENV, "").strip() not in ("", "0", "false", "no")


@dataclass
class ExperimentConfig:
    """Parameters of one experiment run."""

    name: str = "experiment"
    # Network ----------------------------------------------------------------
    num_nodes: int = 100
    strategy: str = "rjoin"
    id_movement: bool = False
    # Workload ---------------------------------------------------------------
    num_queries: int = 500
    num_tuples: int = 100
    num_relations: int = 10
    attributes_per_relation: int = 10
    value_domain: int = 100
    zipf_theta: float = 0.9
    join_arity: int = 4
    window: Optional[WindowSpec] = None
    distinct: bool = False
    # Arrival pattern ---------------------------------------------------------
    #: ``"per-tuple"`` publishes (and drains) one tuple at a time, mirroring
    #: the paper's steady arrivals; ``"batch"`` publishes bursts of
    #: ``batch_size`` tuples through ``RJoinEngine.publish_batch`` (one drain
    #: per burst), modelling high-rate batched arrivals.
    publish_mode: str = "per-tuple"
    batch_size: int = 1
    # Adversarial value skew ---------------------------------------------------
    #: Fraction of tuples whose values are forced onto the hottest keys (see
    #: :class:`repro.workload.generator.WorkloadSpec`).
    hot_key_fraction: float = 0.0
    hot_value_count: int = 1
    # Warm-up -------------------------------------------------------------------
    #: Tuples published *before* the queries are submitted.  They train the
    #: rate-of-incoming-tuple observations (RIC for RJoin, the oracle for the
    #: Worst baseline) so that indexing decisions are informed, mirroring the
    #: paper's assumption that nodes "observe what has happened during the
    #: last time window".  Warm-up load is excluded from the reported metrics.
    warmup_tuples: int = 0
    # Instrumentation ----------------------------------------------------------
    checkpoints: List[int] = field(default_factory=list)
    capture_per_tuple: bool = False
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ExperimentError("num_nodes must be positive")
        if self.num_queries < 0 or self.num_tuples < 0:
            raise ExperimentError("workload sizes must be non-negative")
        if self.warmup_tuples < 0:
            raise ExperimentError("warmup_tuples must be non-negative")
        if self.join_arity < 2:
            raise ExperimentError("experiments need at least two-way joins")
        if self.publish_mode not in ("per-tuple", "batch"):
            raise ExperimentError(
                f"publish_mode must be 'per-tuple' or 'batch', "
                f"got {self.publish_mode!r}"
            )
        if self.batch_size < 1:
            raise ExperimentError("batch_size must be at least one tuple")
        if not 0.0 <= self.hot_key_fraction <= 1.0:
            raise ExperimentError("hot_key_fraction must lie in [0, 1]")
        for checkpoint in self.checkpoints:
            if checkpoint <= 0 or checkpoint > self.num_tuples:
                raise ExperimentError(
                    f"checkpoint {checkpoint} outside (0, {self.num_tuples}]"
                )

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """A copy of the configuration with the given fields replaced."""
        return replace(self, **overrides)

    @classmethod
    def paper_scale(cls, **overrides) -> "ExperimentConfig":
        """The sizes used by the paper (10³ nodes, 2·10⁴ queries)."""
        config = cls(
            name="paper-scale",
            num_nodes=1000,
            num_queries=20000,
            num_tuples=1000,
        )
        return config.with_overrides(**overrides) if overrides else config

    @classmethod
    def default_scale(cls, **overrides) -> "ExperimentConfig":
        """The reduced scale used by the benchmark harness by default."""
        config = cls(
            name="default-scale",
            num_nodes=100,
            num_queries=400,
            num_tuples=100,
        )
        return config.with_overrides(**overrides) if overrides else config
