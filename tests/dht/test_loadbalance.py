"""Tests for the id-movement load balancer."""

import pytest

from repro.dht.chord import ChordRing
from repro.dht.hashing import IdentifierSpace
from repro.dht.loadbalance import IdMovementBalancer
from repro.errors import ConfigurationError


@pytest.fixture
def ring():
    return ChordRing.create_network(16, space=IdentifierSpace(16), seed=11)


def uneven_loads(ring, heavy_count=3, heavy=100.0, light=1.0):
    loads = {}
    for index, node in enumerate(ring.nodes):
        loads[node.address] = heavy if index < heavy_count else light
    return loads


class TestIdMovementBalancer:
    def test_invalid_factor_rejected(self, ring):
        with pytest.raises(ConfigurationError):
            IdMovementBalancer(ring, light_load_factor=0.0)

    def test_rebalance_moves_light_nodes_next_to_heavy_ones(self, ring):
        balancer = IdMovementBalancer(ring)
        loads = uneven_loads(ring)
        moves = balancer.rebalance(loads)
        assert moves, "expected at least one id movement"
        for move in moves:
            donor = ring.node_by_address(move.donor_address)
            mover = ring.node_by_address(move.address)
            # The mover now owns a prefix of the donor's former arc: it is the
            # donor's predecessor.
            assert ring.predecessor_of(donor).address == mover.address

    def test_rebalance_respects_move_budget(self, ring):
        balancer = IdMovementBalancer(ring, max_moves_per_round=1)
        moves = balancer.rebalance(uneven_loads(ring))
        assert len(moves) <= 1

    def test_rebalance_on_even_load_is_noop(self, ring):
        balancer = IdMovementBalancer(ring)
        loads = {node.address: 5.0 for node in ring.nodes}
        assert balancer.rebalance(loads) == []

    def test_rebalance_empty_loads(self, ring):
        balancer = IdMovementBalancer(ring)
        assert balancer.rebalance({}) == []

    def test_moves_are_recorded(self, ring):
        balancer = IdMovementBalancer(ring)
        moves = balancer.rebalance(uneven_loads(ring))
        assert balancer.moves_performed == moves

    def test_rebalance_with_callable(self, ring):
        heavy_addr = ring.nodes[0].address
        balancer = IdMovementBalancer(ring)
        moves = balancer.rebalance_with(
            lambda node: 100.0 if node.address == heavy_addr else 1.0
        )
        assert all(move.donor_address == heavy_addr for move in moves)

    def test_split_reduces_donor_arc(self, ring):
        balancer = IdMovementBalancer(ring)
        loads = uneven_loads(ring, heavy_count=1)
        donor_address = ring.nodes[0].address
        before = ring.arc_length_of(ring.node_by_address(donor_address))
        moves = balancer.rebalance(loads)
        if not moves:
            pytest.skip("no usable light node for this seed")
        after = ring.arc_length_of(ring.node_by_address(donor_address))
        assert after < before
