"""Fixture store registry (mirrors repro/data/backends.py)."""

from abc import ABC, abstractmethod


class StoreBackend(ABC):
    @abstractmethod
    def add(self, key, tup):
        raise NotImplementedError

    @abstractmethod
    def match(self, key):
        raise NotImplementedError

    def add_batch(self, items):
        for key, tup in items:
            self.add(key, tup)

    def match_batch(self, keys):
        return [self.match(key) for key in keys]


def make_store(backend):
    if backend == "good":
        from repro.data.good_backend import GoodBackend

        return GoodBackend()
    from repro.data.rogue_backend import RogueBackend

    return RogueBackend()
