"""Append-only log tuple store (the ``append-log`` backend).

A cheap middle point between the fully indexed in-memory ``memory`` backend
and the table-backed ``sqlite`` backend: records are only ever *appended* to
a log (the write path is an O(1) append plus an index insert), deletions are
tombstones, and the log is compacted when garbage collection has killed
enough of it.  This mirrors how log-structured stores behave under the
window-GC pressure the ``store-backends`` scenario applies: steady writes,
bursty deletions, periodic compaction.

Structures:

* ``_log`` — the append-only list of slots (record + alive flag),
* ``_by_key`` — key -> alive log positions, kept in publication order,
* ``_keys_by_prefix`` — the same prefix index the memory backend uses, so
  attribute-level matches touch only the keys of one relation-attribute
  pair,
* ``_prefix_cache`` — memoised canonical-bucket match results (the
  deduplicated merge across the bucket's per-key position lists), folded
  forward on writes and dropped per bucket on deletes, so steady-state
  probing costs a dict hit instead of a heap merge,
* two lazy min-heaps over ``(pub_time, position)`` / ``(sequence,
  position)`` driving the window expiries in O(expired · log n),
* tombstone writes are *batched*: one expiry sweep collects every doomed
  position first and then rebuilds each touched key's position list once
  (:meth:`AppendLogTupleStore._kill_batch`), instead of an O(k) list
  ``remove`` per record,
* compaction: when at least ``compact_min_dead`` slots are dead *and* the
  dead fraction reaches ``compact_dead_fraction`` of the log, the log is
  rewritten in place (positions are remapped, heaps rebuilt) —
  :attr:`AppendLogTupleStore.compactions` counts the rewrites for the
  benchmark report.  Both thresholds are constructor arguments (threaded
  from ``StoreTuning`` / ``RJoinConfig``) so the benchmark can sweep them.
"""

from __future__ import annotations

import heapq
from bisect import insort
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Set, Tuple as TupleT

from repro.data.backends import (
    StoreBackend,
    StoredTuple,
    bucket_of,
    merge_records,
    record_order,
)
from repro.data.tuples import Tuple

_tuple_order = (lambda t: (t.pub_time, t.sequence))


@dataclass
class _Slot:
    """One log entry: the stored record plus its tombstone flag."""

    record: StoredTuple
    alive: bool = True


class AppendLogTupleStore(StoreBackend):
    """Key-addressed tuple storage over an append-only record log."""

    name = "append-log"

    #: Default floor below which compaction never fires (small stores churn
    #: too fast for a rewrite to pay off).
    COMPACT_MIN_DEAD = 64

    #: Default dead fraction of the log that triggers a rewrite.
    COMPACT_DEAD_FRACTION = 0.5

    def __init__(
        self,
        compact_min_dead: int = COMPACT_MIN_DEAD,
        compact_dead_fraction: float = COMPACT_DEAD_FRACTION,
    ) -> None:
        self.compact_min_dead = compact_min_dead
        self.compact_dead_fraction = compact_dead_fraction
        self._log: List[_Slot] = []
        self._by_key: Dict[str, List[int]] = {}
        self._keys_by_prefix: Dict[str, Set[str]] = {}
        self._unprefixed_keys: Set[str] = set()
        self._identity_counts: Dict[TupleT[str, int], int] = {}
        self._size = 0
        self._stored_total = 0
        self._dead = 0
        #: Number of log rewrites performed so far (benchmark visibility).
        self.compactions = 0
        # Memoised canonical-bucket results plus the identity set backing
        # each list.  Logical content is untouched by compaction, so the
        # cache survives it; deletes drop the affected buckets.
        self._prefix_cache: Dict[str, List[Tuple]] = {}
        self._prefix_seen: Dict[str, Set[TupleT[str, int]]] = {}
        # Lazy expiry heaps over (clock value, log position); positions are
        # unique so no tiebreak is needed.  Rebuilt on compaction.
        self._time_heap: List[TupleT[float, int]] = []
        self._seq_heap: List[TupleT[int, int]] = []
        self._track_time = False
        self._track_seq = False

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, key: str, tup: Tuple, now: float) -> StoredTuple:
        """Append ``tup`` to the log and index it under ``key``."""
        record = StoredTuple(tuple=tup, key=key, stored_at=now)
        position = len(self._log)
        self._log.append(_Slot(record=record))
        bucket = bucket_of(key)
        positions = self._by_key.get(key)
        if positions is None:
            self._by_key[key] = [position]
            if bucket is None:
                self._unprefixed_keys.add(key)
            else:
                self._keys_by_prefix.setdefault(bucket, set()).add(key)
        elif record_order(record) >= record_order(self._log[positions[-1]].record):
            positions.append(position)
        else:
            insort(
                positions,
                position,
                key=lambda p: record_order(self._log[p].record),
            )
        self._size += 1
        self._stored_total += 1
        identity = tup.identity
        self._identity_counts[identity] = self._identity_counts.get(identity, 0) + 1
        if bucket is not None:
            cached = self._prefix_cache.get(bucket)
            if cached is not None:
                self._cache_admit(bucket, cached, tup)
        if self._track_time:
            heapq.heappush(self._time_heap, (tup.pub_time, position))
        if self._track_seq:
            heapq.heappush(self._seq_heap, (tup.sequence, position))
        return record

    def _cache_admit(self, bucket: str, cached: List[Tuple], tup: Tuple) -> None:
        """Fold a fresh write into an already-memoised bucket result."""
        seen = self._prefix_seen[bucket]
        identity = tup.identity
        if identity in seen:
            return
        seen.add(identity)
        if not cached or _tuple_order(cached[-1]) <= _tuple_order(tup):
            cached.append(tup)
        else:
            insort(cached, tup, key=_tuple_order)

    def _drop_bucket_of(self, key: str) -> None:
        """Invalidate the memoised bucket result covering ``key``."""
        if not self._prefix_cache:
            return
        bucket = bucket_of(key)
        if bucket is not None:
            self._prefix_cache.pop(bucket, None)
            self._prefix_seen.pop(bucket, None)

    def _drop_key(self, key: str) -> None:
        """Remove an emptied key from the dictionary and the prefix index."""
        del self._by_key[key]
        bucket = bucket_of(key)
        if bucket is None:
            self._unprefixed_keys.discard(key)
        else:
            keys = self._keys_by_prefix.get(bucket)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._keys_by_prefix[bucket]

    def _kill_batch(self, positions: Iterable[int], unindex: bool = True) -> int:
        """Tombstone a whole batch of alive slots, one index pass per key.

        The doomed positions are grouped per key first, so each touched
        key's (publication-ordered) position list is fixed up once for the
        whole batch instead of per tombstone.
        """
        doomed_by_key: Dict[str, List[int]] = {}
        killed = 0
        for position in positions:
            slot = self._log[position]
            slot.alive = False
            killed += 1
            identity = slot.record.tuple.identity
            count = self._identity_counts[identity] - 1
            if count:
                self._identity_counts[identity] = count
            else:
                del self._identity_counts[identity]
            doomed_by_key.setdefault(slot.record.key, []).append(position)
        if not killed:
            return 0
        self._dead += killed
        self._size -= killed
        for key, dead_positions in doomed_by_key.items():
            self._drop_bucket_of(key)
            if not unindex:
                continue
            alive_positions = self._by_key[key]
            if len(dead_positions) == len(alive_positions):
                self._drop_key(key)
            elif len(dead_positions) == 1:
                alive_positions.remove(dead_positions[0])
            else:
                dead = set(dead_positions)
                self._by_key[key] = [
                    p for p in alive_positions if p not in dead
                ]
        if unindex:
            # With unindex=False the caller still has dead positions in
            # _by_key (remove_key drops the whole key afterwards), and
            # compaction must not remap them — the caller compacts.
            self._maybe_compact()
        return killed

    def _expire(self, heap: List[TupleT], cutoff: float) -> int:
        """Tombstone every alive position the heap reports below ``cutoff``."""
        doomed: List[int] = []
        while heap and heap[0][0] < cutoff:
            _, position = heapq.heappop(heap)
            if self._log[position].alive:
                doomed.append(position)
        return self._kill_batch(doomed)

    def remove_older_than(self, key: str, cutoff: float) -> int:
        """Drop tuples under ``key`` stored strictly before ``cutoff``."""
        positions = self._by_key.get(key)
        if not positions:
            return 0
        expired = [
            p for p in positions if self._log[p].record.stored_at < cutoff
        ]
        return self._kill_batch(expired)

    def remove_published_before(self, cutoff: float) -> int:
        """Drop every tuple published strictly before ``cutoff``."""
        self._ensure_time_heap()
        return self._expire(self._time_heap, cutoff)

    def remove_sequenced_before(self, cutoff: float) -> int:
        """Drop every tuple whose sequence number is strictly below ``cutoff``."""
        self._ensure_seq_heap()
        return self._expire(self._seq_heap, cutoff)

    def remove_key(self, key: str) -> List[StoredTuple]:
        """Remove and return every record stored under ``key`` (re-homing)."""
        positions = self._by_key.get(key)
        if not positions:
            return []
        records = [self._log[p].record for p in positions]
        self._kill_batch(list(positions), unindex=False)
        self._drop_key(key)
        self._maybe_compact()
        return records

    def clear(self) -> None:
        """Remove every stored tuple (does not reset cumulative counters)."""
        self._log.clear()
        self._by_key.clear()
        self._keys_by_prefix.clear()
        self._unprefixed_keys.clear()
        self._identity_counts.clear()
        self._prefix_cache.clear()
        self._prefix_seen.clear()
        self._time_heap.clear()
        self._seq_heap.clear()
        self._size = 0
        self._dead = 0

    def _ensure_time_heap(self) -> None:
        if self._track_time:
            return
        self._track_time = True
        self._time_heap = [
            (slot.record.tuple.pub_time, position)
            for position, slot in enumerate(self._log)
            if slot.alive
        ]
        heapq.heapify(self._time_heap)

    def _ensure_seq_heap(self) -> None:
        if self._track_seq:
            return
        self._track_seq = True
        self._seq_heap = [
            (slot.record.tuple.sequence, position)
            for position, slot in enumerate(self._log)
            if slot.alive
        ]
        heapq.heapify(self._seq_heap)

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def _maybe_compact(self) -> None:
        if (
            self._dead >= self.compact_min_dead
            and self._dead >= self.compact_dead_fraction * len(self._log)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rewrite the log without tombstones, remapping every position."""
        mapping: Dict[int, int] = {}
        compacted: List[_Slot] = []
        for position, slot in enumerate(self._log):
            if slot.alive:
                mapping[position] = len(compacted)
                compacted.append(slot)
        self._log = compacted
        self._by_key = {
            key: [mapping[p] for p in positions]
            for key, positions in self._by_key.items()
        }
        if self._track_time:
            self._time_heap = [
                (slot.record.tuple.pub_time, position)
                for position, slot in enumerate(self._log)
            ]
            heapq.heapify(self._time_heap)
        if self._track_seq:
            self._seq_heap = [
                (slot.record.tuple.sequence, position)
                for position, slot in enumerate(self._log)
            ]
            heapq.heapify(self._seq_heap)
        self._dead = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def tuples_for_key(self, key: str) -> List[Tuple]:
        """The tuples stored under exactly ``key``, in publication order."""
        return [
            self._log[p].record.tuple for p in self._by_key.get(key, [])
        ]

    def records_for_key(self, key: str) -> List[StoredTuple]:
        """The stored records under exactly ``key``, in publication order."""
        return [self._log[p].record for p in self._by_key.get(key, [])]

    def tuples_for_prefix(self, prefix: str) -> List[Tuple]:
        """Tuples under any key starting with ``prefix`` (deduplicated, ordered).

        Canonical attribute-level prefixes hit the bucket memo, or one
        sorted heap merge across the bucket's per-key position lists.
        """
        bucket = bucket_of(prefix)
        if bucket is not None and len(bucket) == len(prefix):
            cached = self._prefix_cache.get(prefix)
            if cached is not None:
                return list(cached)
            keys: Iterable[str] = self._keys_by_prefix.get(prefix) or ()
            lists = [self.records_for_key(key) for key in keys]
            result = merge_records(lists) if lists else []
            self._prefix_cache[prefix] = result
            self._prefix_seen[prefix] = {tup.identity for tup in result}
            return list(result)
        keys = [key for key in self._by_key if key.startswith(prefix)]
        lists = [self.records_for_key(key) for key in keys]
        if not lists:
            return []
        return merge_records(lists)

    def has_key(self, key: str) -> bool:
        """Return whether any tuple is stored under ``key``."""
        return key in self._by_key

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of currently stored entries (across all keys); O(1)."""
        return self._size

    @property
    def cumulative_stored(self) -> int:
        """Total number of store operations performed over the node's lifetime."""
        return self._stored_total

    def keys(self) -> Iterable[str]:
        """Iterate over the indexing keys that currently hold tuples."""
        return self._by_key.keys()

    def __iter__(self) -> Iterator[StoredTuple]:
        for positions in self._by_key.values():
            for position in positions:
                yield self._log[position].record

    def distinct_tuples(self) -> int:
        """Number of distinct publications currently stored at this node; O(1)."""
        return len(self._identity_counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AppendLogTupleStore(size={self._size}, log={len(self._log)}, "
            f"dead={self._dead}, compactions={self.compactions})"
        )
