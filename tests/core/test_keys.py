"""Tests for attribute-level and value-level indexing keys."""

from repro.core.keys import (
    ATTRIBUTE_LEVEL,
    VALUE_LEVEL,
    attribute_key,
    attribute_prefix,
    tuple_index_keys,
    value_key,
)
from repro.data.schema import AttributeRef, RelationSchema
from repro.data.tuples import Tuple


class TestIndexKey:
    def test_levels(self):
        assert attribute_key("R", "a").level == ATTRIBUTE_LEVEL
        assert value_key("R", "a", 5).level == VALUE_LEVEL
        assert value_key("R", "a", 5).is_value_level
        assert not attribute_key("R", "a").is_value_level

    def test_text_is_deterministic_and_distinct(self):
        assert attribute_key("R", "a").text == attribute_key("R", "a").text
        assert attribute_key("R", "a").text != attribute_key("R", "b").text
        assert value_key("R", "a", 1).text != value_key("R", "a", 2).text
        assert value_key("R", "a", 1).text != attribute_key("R", "a").text

    def test_no_concatenation_ambiguity(self):
        # "R" + "AB" must differ from "RA" + "B" (the motivation for the separator).
        assert attribute_key("R", "AB").text != attribute_key("RA", "B").text

    def test_value_types_are_distinguished(self):
        assert value_key("R", "a", 1).text != value_key("R", "a", "1").text

    def test_attribute_prefix_matches_value_keys(self):
        key = value_key("R", "a", 42)
        assert key.text.startswith(key.attribute_prefix)
        assert attribute_prefix("R", "a") == key.attribute_prefix
        other = value_key("R", "ab", 42)
        assert not other.text.startswith(key.attribute_prefix)

    def test_attribute_ref_and_level_conversion(self):
        key = value_key("R", "a", 3)
        assert key.attribute_ref == AttributeRef("R", "a")
        assert key.at_attribute_level() == attribute_key("R", "a")

    def test_ordering_and_hashing(self):
        keys = {
            attribute_key("R", "a"),
            attribute_key("R", "a"),
            value_key("R", "a", 1),
        }
        assert len(keys) == 2
        assert sorted([value_key("R", "b", 1), attribute_key("R", "a")])


class TestTupleIndexKeys:
    def test_two_keys_per_attribute(self):
        schema = RelationSchema("R", ["a", "b", "c"])
        tup = Tuple.from_schema(schema, (1, 2, 3))
        keys = tuple_index_keys(tup, schema)
        assert len(keys) == 6
        levels = [key.level for key in keys]
        assert levels.count(ATTRIBUTE_LEVEL) == 3
        assert levels.count(VALUE_LEVEL) == 3

    def test_value_keys_carry_tuple_values(self):
        schema = RelationSchema("R", ["a", "b"])
        tup = Tuple.from_schema(schema, (7, 9))
        keys = tuple_index_keys(tup, schema)
        assert value_key("R", "a", 7) in keys
        assert value_key("R", "b", 9) in keys
        assert attribute_key("R", "a") in keys
