"""Exception hierarchy shared by every subpackage of :mod:`repro`.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch a single base class.  Sub-hierarchies mirror the layered
architecture of the system (DHT substrate, SQL front-end, query engine,
experiment harness).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied by the caller."""


# ---------------------------------------------------------------------------
# DHT / network substrate
# ---------------------------------------------------------------------------


class DHTError(ReproError):
    """Base class for errors raised by the DHT substrate."""


class EmptyRingError(DHTError):
    """An operation required at least one node but the ring is empty."""


class UnknownNodeError(DHTError):
    """A node id or address does not correspond to a live node."""


class DuplicateNodeError(DHTError):
    """A node with the same identifier already participates in the ring."""


class RoutingError(DHTError):
    """A message could not be routed to its destination."""


class NetworkError(ReproError):
    """Base class for errors raised by the discrete event simulator."""


class SimulationError(NetworkError):
    """The simulation kernel was driven into an invalid state."""


# ---------------------------------------------------------------------------
# Data / SQL front-end
# ---------------------------------------------------------------------------


class SchemaError(ReproError):
    """A relation schema is invalid or a tuple does not match its schema."""


class UnknownRelationError(SchemaError):
    """A query or a tuple refers to a relation that is not in the catalog."""


class UnknownAttributeError(SchemaError):
    """A query refers to an attribute that is not part of the relation."""


class CodecError(SchemaError):
    """A stored payload could not be decoded (corrupt or unknown encoding)."""


class SQLError(ReproError):
    """Base class for SQL front-end errors."""


class SQLSyntaxError(SQLError):
    """The query text could not be parsed."""


class UnsupportedQueryError(SQLError):
    """The query parses but falls outside the supported equi-join subset."""


class PredicateBindingError(SQLError):
    """A predicate was evaluated against a relation it does not reference."""


# ---------------------------------------------------------------------------
# Query engine
# ---------------------------------------------------------------------------


class EngineError(ReproError):
    """Base class for errors raised by the RJoin engine."""


class QueryRegistrationError(EngineError):
    """A continuous query could not be registered with the engine."""


class RewriteError(EngineError):
    """A query rewrite step was applied to an incompatible tuple."""


class ExperimentError(ReproError):
    """An experiment configuration or run is invalid."""


# ---------------------------------------------------------------------------
# Metrics / tooling
# ---------------------------------------------------------------------------


class MetricsError(ReproError):
    """A metrics report or aggregation was requested with invalid inputs."""


class AnalysisError(ReproError):
    """The static-analysis suite was driven with invalid inputs."""


class ObservabilityError(ReproError):
    """The tracing/metrics layer was configured or driven with invalid inputs."""
