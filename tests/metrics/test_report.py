"""Tests for ranked distributions and text reporting."""

import pytest

from repro.errors import MetricsError
from repro.metrics.report import (
    format_table,
    group_ranked,
    load_imbalance,
    participation_count,
    percentile,
    ranked_distribution,
    series_summary,
)


class TestRankedDistribution:
    def test_sorted_descending(self):
        assert ranked_distribution([1, 5, 3]) == [5, 3, 1]

    def test_group_ranked_mean(self):
        grouped = group_ranked([10, 10, 2, 2], group_size=2)
        assert grouped == [10.0, 2.0]

    def test_group_ranked_sum(self):
        grouped = group_ranked([10, 10, 2, 2], group_size=2, aggregate="sum")
        assert grouped == [20.0, 4.0]

    def test_group_ranked_invalid(self):
        with pytest.raises(MetricsError):
            group_ranked([1], group_size=0)
        with pytest.raises(MetricsError):
            group_ranked([1], aggregate="median")

    def test_participation_count(self):
        assert participation_count([0, 1, 2, 0]) == 2
        assert participation_count([5, 6], threshold=5) == 1

    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 0.5) == 50
        assert percentile(values, 1.0) == 100
        assert percentile([], 0.5) == 0.0

    def test_load_imbalance(self):
        assert load_imbalance([4, 4, 4, 4]) == 1.0
        assert load_imbalance([8, 0, 0, 0]) == 4.0
        assert load_imbalance([]) == 0.0
        assert load_imbalance([0, 0]) == 0.0


class TestFormatting:
    def test_format_table_alignment_and_floats(self):
        text = format_table(
            "Title", ["x", "value"], [[1, 3.14159], [20, 2.0]]
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "x" in lines[1] and "value" in lines[1]
        assert "3.14" in text
        assert len(lines) == 5

    def test_series_summary(self):
        summary = series_summary({"a": [1.0, 3.0], "empty": []})
        assert summary["a"]["min"] == 1.0
        assert summary["a"]["max"] == 3.0
        assert summary["a"]["mean"] == 2.0
        assert summary["empty"]["mean"] == 0.0
