"""Tests for the ``python -m repro.experiments`` CLI."""

import io


from repro.experiments.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


TINY_SETTINGS = (
    "--set",
    "num_nodes=16",
    "--set",
    "num_queries=8",
    "--set",
    "num_tuples=6",
    "--set",
    "warmup_tuples=0",
)


class TestList:
    def test_lists_scenarios(self):
        code, output = run_cli("list")
        assert code == 0
        for name in ("baseline", "skew-sweep", "bursty", "hot-key"):
            assert name in output

    def test_verbose_lists_variants(self):
        code, output = run_cli("list", "--verbose")
        assert code == 0
        assert "theta=1.2" in output


class TestRun:
    def test_run_writes_results_and_reports(self, tmp_path):
        code, output = run_cli(
            "run",
            "--scenario",
            "skew-sweep",
            "--workers",
            "2",
            "--seeds",
            "1,2",
            "--output",
            str(tmp_path),
            *TINY_SETTINGS,
        )
        assert code == 0
        assert "10 computed" in output
        cell_files = list((tmp_path / "skew-sweep").glob("skew-sweep__*.json"))
        assert len(cell_files) == 10

        code, output = run_cli(
            "report", "--scenario", "skew-sweep", "--output", str(tmp_path)
        )
        assert code == 0
        assert "theta=0.9" in output
        assert "±" in output

    def test_second_run_uses_cache(self, tmp_path):
        args = (
            "run",
            "--scenario",
            "query-flood",
            "--seeds",
            "1",
            "--output",
            str(tmp_path),
            *TINY_SETTINGS,
            "--set",
            "num_queries=8",
        )
        code, first = run_cli(*args)
        assert code == 0 and "3 computed" in first
        code, second = run_cli(*args)
        assert code == 0 and "3 cached" in second

    def test_unknown_scenario_is_reported(self, tmp_path):
        code, output = run_cli(
            "run", "--scenario", "nope", "--output", str(tmp_path)
        )
        assert code == 2
        assert "unknown scenario" in output

    def test_bad_set_option_is_reported(self, tmp_path):
        code, output = run_cli(
            "run",
            "--scenario",
            "baseline",
            "--output",
            str(tmp_path),
            "--set",
            "num_nodes",
        )
        assert code == 2
        assert "key=value" in output


class TestReport:
    def test_report_without_run_fails_gracefully(self, tmp_path):
        code, output = run_cli(
            "report", "--scenario", "skew-sweep", "--output", str(tmp_path)
        )
        assert code == 2
        assert "no aggregate" in output

    def test_custom_metrics(self, tmp_path):
        run_cli(
            "run",
            "--scenario",
            "bursty",
            "--seeds",
            "1",
            "--output",
            str(tmp_path),
            *TINY_SETTINGS,
        )
        code, output = run_cli(
            "report",
            "--scenario",
            "bursty",
            "--output",
            str(tmp_path),
            "--metrics",
            "total_messages,answers",
        )
        assert code == 0
        assert "total_messages" in output
