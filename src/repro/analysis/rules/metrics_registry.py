"""Rule ``metrics-registry`` — counters, summary and schema in lock step.

A metrics gap is the silent failure mode of this codebase: a counter gets
added to :class:`~repro.metrics.collectors.ChurnStats` for a new subsystem,
but the key never surfaces in ``RJoinEngine.metrics_summary`` (or the
declared summary schema in ``metrics/serialize.py`` is not extended), and
every scenario silently reports zeros — nothing crashes.  This rule pins
the three layers together at lint time:

* every counter attribute mutated on ``ChurnStats`` (``self._x += …``) is
  read back by at least one ``@property``,
* every counter-backed property is consumed by
  ``RJoinEngine.metrics_summary`` (``core/engine.py``) via
  ``self.churn.<property>``, and every ``self.churn.<attr>`` the summary
  reads actually exists on ``ChurnStats``,
* the key set of the ``metrics_summary`` dict literal equals the declared
  :data:`~repro.metrics.serialize.SUMMARY_SCHEMA` in
  ``metrics/serialize.py`` — result-schema drift fails the check instead
  of shipping,
* every histogram declared in ``repro.obs.instruments.HISTOGRAMS`` surfaces
  as ``<name>_p50`` / ``<name>_p95`` / ``<name>_p99`` entries of the
  declared schema, ``metrics_summary`` folds them in through a
  ``**histogram_percentiles(...)`` spread, and no phantom percentile key
  names a histogram that does not exist.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.base import Finding, Rule, SourceFile
from repro.analysis.project import Project

COLLECTORS_FILE = "metrics/collectors.py"
SERIALIZE_FILE = "metrics/serialize.py"
ENGINE_FILE = "core/engine.py"
INSTRUMENTS_FILE = "obs/instruments.py"
STATS_CLASS = "ChurnStats"
SUMMARY_METHOD = "metrics_summary"
SCHEMA_NAME = "SUMMARY_SCHEMA"
HISTOGRAMS_NAME = "HISTOGRAMS"
FOLD_HELPER = "histogram_percentiles"
PERCENTILE_SUFFIXES = ("p50", "p95", "p99")


def _find_class(sf: SourceFile, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _find_method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for item in cls.body:
        if isinstance(item, ast.FunctionDef) and item.name == name:
            return item
    return None


def _is_property(func: ast.FunctionDef) -> bool:
    return any(
        (isinstance(d, ast.Name) and d.id == "property")
        or (isinstance(d, ast.Attribute) and d.attr in {"getter", "property"})
        for d in func.decorator_list
    )


def _histogram_name(elt: ast.expr) -> Optional[str]:
    """The declared name of one ``HISTOGRAMS`` element.

    The real tree declares ``HistogramSpec(name="...", ...)`` entries;
    fixture trees may use bare strings — both shapes are accepted.
    """
    if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
        return elt.value
    if isinstance(elt, ast.Call):
        for kw in elt.keywords:
            if (
                kw.arg == "name"
                and isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)
            ):
                return kw.value.value
        if (
            elt.args
            and isinstance(elt.args[0], ast.Constant)
            and isinstance(elt.args[0].value, str)
        ):
            return elt.args[0].value
    return None


def _percentile_base(key: str) -> Optional[str]:
    """``"hop_delay"`` for ``"hop_delay_p95"``; None for non-percentile keys."""
    base, _, suffix = key.rpartition("_")
    if base and suffix in PERCENTILE_SUFFIXES:
        return base
    return None


def _callee_name(call: ast.Call) -> Optional[str]:
    """The simple name a call invokes (``f(...)`` or ``mod.f(...)``)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _self_attrs(node: ast.AST) -> Set[str]:
    """Attribute names read or written as ``self.<attr>`` under ``node``."""
    attrs: Set[str] = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            attrs.add(sub.attr)
    return attrs


class MetricsRegistryRule(Rule):
    """ChurnStats counters ↔ metrics_summary ↔ declared summary schema."""

    name = "metrics-registry"
    description = (
        "every mutated ChurnStats counter surfaces in metrics_summary and "
        "the declared SUMMARY_SCHEMA (and vice versa)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        collectors = project.get(COLLECTORS_FILE)
        engine = project.get(ENGINE_FILE)
        if collectors is not None:
            yield from self._check_counters_vs_properties(collectors, engine)
        if engine is not None:
            yield from self._check_summary_schema(project, engine)

    # ------------------------------------------------------------------
    # ChurnStats internals and their consumption by the engine
    # ------------------------------------------------------------------
    def _churn_stats(
        self, collectors: SourceFile
    ) -> Optional[Tuple[ast.ClassDef, Dict[str, ast.AST], Dict[str, Set[str]]]]:
        cls = _find_class(collectors, STATS_CLASS)
        if cls is None:
            return None
        # Counter attributes mutated by recording methods (scalar only:
        # dict-valued aggregations like ``self._by_kind[k] += 1`` have
        # their own property surface and are excluded).
        mutated: Dict[str, ast.AST] = {}
        for item in cls.body:
            if not isinstance(item, ast.FunctionDef) or _is_property(item):
                continue
            for sub in ast.walk(item):
                if isinstance(sub, ast.AugAssign) and isinstance(
                    sub.target, ast.Attribute
                ):
                    target = sub.target
                    if (
                        isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        mutated.setdefault(target.attr, sub)
        # Properties and the private attributes each one reads.
        properties: Dict[str, Set[str]] = {}
        for item in cls.body:
            if isinstance(item, ast.FunctionDef) and _is_property(item):
                properties[item.name] = _self_attrs(item)
        return cls, mutated, properties

    def _check_counters_vs_properties(
        self, collectors: SourceFile, engine: Optional[SourceFile]
    ) -> Iterator[Finding]:
        parsed = self._churn_stats(collectors)
        if parsed is None:
            return
        cls, mutated, properties = parsed
        exposed: Dict[str, List[str]] = {}
        for prop, attrs in properties.items():
            for attr in attrs:
                exposed.setdefault(attr, []).append(prop)

        for counter in sorted(mutated):
            if counter not in exposed:
                yield self.finding(
                    collectors,
                    mutated[counter],
                    f"{STATS_CLASS}.{counter} is mutated but no @property "
                    "reads it back: the counter can never surface in "
                    "metrics",
                )

        if engine is None:
            return
        summary = self._summary_method(engine)
        if summary is None:
            return
        churn_reads = self._churn_reads(summary)
        # Counter-backed properties must be consumed by the summary...
        for counter in sorted(mutated):
            props = exposed.get(counter, [])
            if props and not any(prop in churn_reads for prop in props):
                yield self.finding(
                    collectors,
                    mutated[counter],
                    f"{STATS_CLASS}.{counter} (exposed as "
                    f"{'/'.join(sorted(props))}) never surfaces in "
                    f"{SUMMARY_METHOD} ({ENGINE_FILE}): scenarios would "
                    "silently report nothing for it",
                )
        # ... and the summary must not read attributes that do not exist.
        declared = set(properties) | {
            item.name for item in cls.body if isinstance(item, ast.FunctionDef)
        }
        for attr, node in sorted(churn_reads.items()):
            if attr not in declared:
                yield self.finding(
                    engine,
                    node,
                    f"{SUMMARY_METHOD} reads self.churn.{attr}, which is "
                    f"not defined on {STATS_CLASS} ({COLLECTORS_FILE})",
                )

    # ------------------------------------------------------------------
    # metrics_summary keys vs the declared serialize schema
    # ------------------------------------------------------------------
    def _summary_method(self, engine: SourceFile) -> Optional[ast.FunctionDef]:
        for node in ast.walk(engine.tree):
            if isinstance(node, ast.FunctionDef) and node.name == SUMMARY_METHOD:
                return node
        return None

    def _churn_reads(self, summary: ast.FunctionDef) -> Dict[str, ast.AST]:
        """``self.churn.<attr>`` reads inside the summary method."""
        reads: Dict[str, ast.AST] = {}
        for sub in ast.walk(summary):
            if not isinstance(sub, ast.Attribute):
                continue
            value = sub.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "churn"
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
            ):
                reads.setdefault(sub.attr, sub)
        return reads

    def _summary_keys(
        self, summary: ast.FunctionDef
    ) -> Optional[Dict[str, ast.AST]]:
        """String keys of the dict literal returned by ``metrics_summary``."""
        for sub in ast.walk(summary):
            if isinstance(sub, ast.Return) and isinstance(sub.value, ast.Dict):
                keys: Dict[str, ast.AST] = {}
                for key in sub.value.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        keys[key.value] = key
                return keys
        return None

    def _declared_schema(
        self, serialize: SourceFile
    ) -> Optional[Tuple[Set[str], ast.AST]]:
        for node in ast.walk(serialize.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == SCHEMA_NAME for t in targets
            ):
                continue
            if isinstance(value, ast.Call):  # frozenset((...)) wrapper
                value = value.args[0] if value.args else value
            if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                names = {
                    elt.value
                    for elt in value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                }
                return names, node
        return None

    def _check_summary_schema(
        self, project: Project, engine: SourceFile
    ) -> Iterator[Finding]:
        summary = self._summary_method(engine)
        serialize = project.get(SERIALIZE_FILE)
        if summary is None or serialize is None:
            return
        keys = self._summary_keys(summary)
        if keys is None:
            return
        declared = self._declared_schema(serialize)
        if declared is None:
            yield Finding(
                rule=self.name,
                path=serialize.rel,
                line=1,
                message=(
                    f"{SERIALIZE_FILE} declares no {SCHEMA_NAME}: the "
                    "summary key set is unpinned and drift cannot be "
                    "detected"
                ),
            )
            return
        schema, schema_node = declared
        for key in sorted(set(keys) - schema):
            yield self.finding(
                engine,
                keys[key],
                f"{SUMMARY_METHOD} emits {key!r} but {SCHEMA_NAME} "
                f"({SERIALIZE_FILE}) does not declare it: bump the schema "
                "deliberately instead of drifting",
            )
        for key in sorted(schema - set(keys)):
            if _percentile_base(key) is not None:
                # Percentile keys reach the summary through the
                # histogram_percentiles fold, not the dict literal; the
                # histogram checks below own both directions for them.
                continue
            yield self.finding(
                serialize,
                schema_node,
                f"{SCHEMA_NAME} declares {key!r} but {SUMMARY_METHOD} "
                f"({ENGINE_FILE}) does not emit it: stale schema entry",
            )
        yield from self._check_histograms(
            project, engine, summary, serialize, schema, schema_node
        )

    # ------------------------------------------------------------------
    # declared histograms vs the schema's percentile keys
    # ------------------------------------------------------------------
    def _declared_histograms(
        self, instruments: SourceFile
    ) -> Optional[Tuple[Set[str], ast.AST]]:
        for node in ast.walk(instruments.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == HISTOGRAMS_NAME
                for t in targets
            ):
                continue
            if not isinstance(value, (ast.Tuple, ast.List)):
                continue
            names: Set[str] = set()
            for elt in value.elts:
                name = _histogram_name(elt)
                if name is not None:
                    names.add(name)
            return names, node
        return None

    def _has_percentile_fold(self, summary: ast.FunctionDef) -> bool:
        """Whether the summary dict literal spreads ``histogram_percentiles``."""
        for sub in ast.walk(summary):
            if not (
                isinstance(sub, ast.Return) and isinstance(sub.value, ast.Dict)
            ):
                continue
            for key, value in zip(sub.value.keys, sub.value.values):
                if key is not None:  # ``**spread`` entries have a None key
                    continue
                for call in ast.walk(value):
                    if isinstance(call, ast.Call) and _callee_name(call) == (
                        FOLD_HELPER
                    ):
                        return True
        return False

    def _check_histograms(
        self,
        project: Project,
        engine: SourceFile,
        summary: ast.FunctionDef,
        serialize: SourceFile,
        schema: Set[str],
        schema_node: ast.AST,
    ) -> Iterator[Finding]:
        instruments = project.get(INSTRUMENTS_FILE)
        if instruments is None:
            return
        declared = self._declared_histograms(instruments)
        if declared is None:
            return
        histograms, _ = declared
        if histograms and not self._has_percentile_fold(summary):
            yield self.finding(
                engine,
                summary,
                f"{SUMMARY_METHOD} does not spread "
                f"**{FOLD_HELPER}(...) into its dict literal: the "
                f"histograms declared in {INSTRUMENTS_FILE} can never "
                "surface in the summary",
            )
        for name in sorted(histograms):
            for suffix in PERCENTILE_SUFFIXES:
                key = f"{name}_{suffix}"
                if key not in schema:
                    yield self.finding(
                        serialize,
                        schema_node,
                        f"histogram {name!r} ({INSTRUMENTS_FILE}) has no "
                        f"{key!r} entry in {SCHEMA_NAME}: every declared "
                        "histogram must surface as p50/p95/p99 summary keys",
                    )
        for key in sorted(schema):
            base = _percentile_base(key)
            if base is not None and base not in histograms:
                yield self.finding(
                    serialize,
                    schema_node,
                    f"{SCHEMA_NAME} declares {key!r} but no histogram "
                    f"{base!r} is declared in {INSTRUMENTS_FILE}: phantom "
                    "percentile key",
                )
