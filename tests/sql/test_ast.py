"""Tests for the query AST."""

import pytest

from repro.data.schema import AttributeRef
from repro.errors import PredicateBindingError, UnsupportedQueryError
from repro.sql.ast import (
    Constant,
    JoinPredicate,
    Query,
    SelectionPredicate,
    WindowSpec,
)


def two_way_query(**overrides):
    params = dict(
        select_items=(AttributeRef("R", "a"), AttributeRef("S", "d")),
        relations=("R", "S"),
        join_predicates=(
            JoinPredicate(AttributeRef("R", "b"), AttributeRef("S", "c")),
        ),
    )
    params.update(overrides)
    return Query(**params)


class TestJoinPredicate:
    def test_relations_and_references(self):
        jp = JoinPredicate(AttributeRef("R", "a"), AttributeRef("S", "b"))
        assert jp.relations() == frozenset({"R", "S"})
        assert jp.references("R") and jp.references("S")
        assert not jp.references("T")

    def test_side_selection(self):
        jp = JoinPredicate(AttributeRef("R", "a"), AttributeRef("S", "b"))
        assert jp.side_for("R") == AttributeRef("R", "a")
        assert jp.other_side("R") == AttributeRef("S", "b")
        with pytest.raises(PredicateBindingError):
            jp.side_for("T")

    def test_normalized_is_deterministic(self):
        jp = JoinPredicate(AttributeRef("S", "b"), AttributeRef("R", "a"))
        flipped = JoinPredicate(AttributeRef("R", "a"), AttributeRef("S", "b"))
        assert jp.normalized() == flipped.normalized()


class TestWindowSpec:
    def test_invalid_mode_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            WindowSpec(size=10, mode="rows")

    def test_non_positive_size_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            WindowSpec(size=0)

    def test_clock_of_uses_mode(self):
        from repro.data.tuples import Tuple

        tup = Tuple(relation="R", values=(1,), pub_time=3.5, sequence=8)
        assert WindowSpec(size=10, mode="time").clock_of(tup) == 3.5
        assert WindowSpec(size=10, mode="tuples").clock_of(tup) == 8


class TestQuery:
    def test_structural_accessors(self):
        query = two_way_query()
        assert query.arity == 2
        assert query.num_joins == 1
        assert not query.is_complete()
        assert query.references_relation("R")
        assert not query.references_relation("T")

    def test_attribute_refs_deduplicated(self):
        query = two_way_query(
            select_items=(AttributeRef("R", "b"), AttributeRef("R", "b"))
        )
        refs = query.attribute_refs()
        assert refs.count(AttributeRef("R", "b")) == 1

    def test_complete_query(self):
        query = Query(select_items=(Constant(1), Constant("x")), relations=())
        assert query.is_complete()
        assert query.answer_values() == (1, "x")

    def test_answer_values_requires_complete(self):
        query = two_way_query()
        with pytest.raises(UnsupportedQueryError):
            query.answer_values()

    def test_duplicate_from_relations_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            Query(select_items=(Constant(1),), relations=("R", "R"))

    def test_validate_rejects_disconnected_graph(self):
        query = Query(
            select_items=(AttributeRef("R", "a"),),
            relations=("R", "S", "T"),
            join_predicates=(
                JoinPredicate(AttributeRef("R", "a"), AttributeRef("S", "b")),
            ),
        )
        with pytest.raises(UnsupportedQueryError):
            query.validate()

    def test_validate_rejects_self_join_predicate(self):
        query = Query(
            select_items=(AttributeRef("R", "a"),),
            relations=("R", "S"),
            join_predicates=(
                JoinPredicate(AttributeRef("R", "a"), AttributeRef("R", "b")),
                JoinPredicate(AttributeRef("R", "a"), AttributeRef("S", "b")),
            ),
        )
        with pytest.raises(UnsupportedQueryError):
            query.validate()

    def test_validate_rejects_refs_outside_from(self):
        query = Query(
            select_items=(AttributeRef("Z", "a"),),
            relations=("R",),
            selection_predicates=(SelectionPredicate(AttributeRef("R", "a"), 1),),
        )
        with pytest.raises(UnsupportedQueryError):
            query.validate()

    def test_with_window(self):
        query = two_way_query()
        windowed = query.with_window(WindowSpec(size=5, mode="tuples"))
        assert windowed.window.size == 5
        assert query.window is None  # original untouched

    def test_predicates_order(self):
        query = two_way_query(
            selection_predicates=(SelectionPredicate(AttributeRef("R", "a"), 1),)
        )
        predicates = query.predicates()
        assert isinstance(predicates[0], JoinPredicate)
        assert isinstance(predicates[-1], SelectionPredicate)

    def test_str_renders_sql(self):
        text = str(two_way_query())
        assert text.startswith("SELECT")
        assert "WHERE" in text
