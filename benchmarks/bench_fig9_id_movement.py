"""Figure 9 — using lower-level interfaces (id-movement load balancing).

Regenerates the ranked-node query-processing and storage load distributions
of RJoin with and without the id-movement load balancing of Karger & Ruhl
plugged in underneath.

Expected shape (paper): id movement removes load from the most loaded nodes
(the paper reports roughly a 2× reduction of the peak) and lets more nodes
participate in query processing.
"""

import pytest

from repro.experiments.figures import figure9


@pytest.mark.benchmark(group="figure9")
def test_figure9_id_movement(benchmark):
    result = benchmark.pedantic(figure9, rounds=1, iterations=1)
    print()
    print(result.to_text())

    max_storage_without, max_storage_with = result.series["max_storage"]
    participating_without, participating_with = result.series["participating_nodes"]

    # Id movement must not make the peak storage worse, and should help.
    assert max_storage_with <= max_storage_without
    # At least as many nodes participate in query processing.
    assert participating_with >= participating_without
    # The full ranked distributions are reported for both configurations.
    assert len(result.distributions["storage_ranked_with"]) == len(
        result.distributions["storage_ranked_without"]
    )
