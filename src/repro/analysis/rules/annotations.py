"""Rule ``annotation-completeness`` — the strict-typing gate, locally.

CI runs ``mypy --strict`` over the engine's load-bearing packages, but the
development container does not ship mypy; this rule is the in-tree
approximation that keeps the gate honest between CI runs.  It requires
every function in ``core/``, ``data/``, ``net/``, ``dht/``, ``metrics/``
and ``analysis/`` to carry complete signatures:

* a return annotation (``__init__`` and friends included — strict mypy
  requires ``-> None`` too),
* an annotation on every parameter except ``self``/``cls`` in methods,
  including ``*args``/``**kwargs``.

Test helpers and decorated callbacks that genuinely cannot be annotated
can use ``# repro: allow[annotation-completeness]``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Union

from repro.analysis.base import Finding, Rule, SourceFile
from repro.analysis.project import Project

#: Packages under the strict-typing gate (mirrors the mypy CI scope).
SCOPE = ("core/", "data/", "net/", "dht/", "metrics/", "analysis/", "obs/")

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _missing_parts(func: _FunctionNode, is_method: bool) -> List[str]:
    missing: List[str] = []
    args = func.args
    positional = args.posonlyargs + args.args
    skip_first = is_method and positional and positional[0].arg in {"self", "cls"}
    for index, arg in enumerate(positional):
        if skip_first and index == 0:
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    if func.returns is None:
        missing.append("return")
    return missing


class AnnotationCompletenessRule(Rule):
    """Every function in the strict-typing scope is fully annotated."""

    name = "annotation-completeness"
    description = (
        "every def in core/, data/, net/, dht/, metrics/, analysis/ has "
        "full parameter and return annotations (the local mypy-strict gate)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for sf in project.in_dirs(*SCOPE):
            yield from self._check_file(sf)

    def _check_file(self, sf: SourceFile) -> Iterator[Finding]:
        # Track which function nodes are class-body members (methods).
        method_nodes = set()
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method_nodes.add(id(item))
        for node in ast.walk(sf.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name == "<lambda>":
                continue
            missing = _missing_parts(node, id(node) in method_nodes)
            if missing:
                yield self.finding(
                    sf,
                    node,
                    f"def {node.name} is missing annotations for: "
                    f"{', '.join(missing)} (strict-typing gate)",
                )
