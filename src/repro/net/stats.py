"""Per-node network-traffic accounting.

The paper defines network traffic as "the number of messages that a node n
has to send.  This includes both the messages that n creates due to RJoin,
e.g. index a rewritten query to a new node, and also the messages that n has
to route due to the DHT routing protocols"; every message has weight 1
(Section 8).

:class:`TrafficStats` implements exactly this: every transmission (the
originating send plus one per intermediate routing hop) increments the
counter of the transmitting node.  Messages that belong to RIC-information
gathering (Section 6) are additionally counted in a separate bucket so that
the "Request RIC" series of Figures 2(a), 3(a), 4(a), 5(a), 6(a) and 7(a)
can be reported.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple


@dataclass
class NodeTraffic:
    """Message counters for a single node."""

    sent: int = 0          # messages originated by the node
    routed: int = 0        # messages forwarded on behalf of others
    ric_sent: int = 0      # subset of `sent` belonging to RIC gathering
    ric_routed: int = 0    # subset of `routed` belonging to RIC gathering

    @property
    def total(self) -> int:
        """Total transmissions charged to the node (paper's traffic metric)."""
        return self.sent + self.routed

    @property
    def ric_total(self) -> int:
        """Transmissions charged to the node for RIC-information gathering."""
        return self.ric_sent + self.ric_routed


class TrafficStats:
    """Network-wide traffic accounting, keyed by node address."""

    def __init__(self) -> None:
        self._per_node: Dict[str, NodeTraffic] = defaultdict(NodeTraffic)
        self._total_messages = 0
        self._total_ric_messages = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_send(self, address: str, is_ric: bool = False, count: int = 1) -> None:
        """Charge ``count`` originated messages to ``address``.

        Batch senders (``multiSend``) coalesce their accounting into a single
        call instead of one bookkeeping round-trip per message.
        """
        counters = self._per_node[address]
        counters.sent += count
        self._total_messages += count
        if is_ric:
            counters.ric_sent += count
            self._total_ric_messages += count

    def record_route(self, address: str, is_ric: bool = False, count: int = 1) -> None:
        """Charge ``count`` routed (forwarded) messages to ``address``."""
        counters = self._per_node[address]
        counters.routed += count
        self._total_messages += count
        if is_ric:
            counters.ric_routed += count
            self._total_ric_messages += count

    def record_path(
        self, sender: str, route: Iterable[str], is_ric: bool = False
    ) -> int:
        """Charge a full routed transmission: the sender plus every forwarder.

        ``route`` is the node sequence visited by the message *excluding* the
        sender and *including* the final recipient; the recipient does not
        transmit, so it is not charged.  Returns the number of transmissions
        charged (i.e. the hop count).
        """
        route = list(route)
        self.record_send(sender, is_ric=is_ric)
        # Intermediate nodes (all but the final recipient) forward the message.
        for forwarder in route[:-1]:
            self.record_route(forwarder, is_ric=is_ric)
        return len(route)

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    @property
    def total_messages(self) -> int:
        """Total number of transmissions in the whole network."""
        return self._total_messages

    @property
    def total_ric_messages(self) -> int:
        """Total transmissions that belong to RIC-information gathering."""
        return self._total_ric_messages

    def node(self, address: str) -> NodeTraffic:
        """Counters of a single node (zeroed counters for unknown nodes)."""
        return self._per_node[address]

    def per_node(self) -> Mapping[str, NodeTraffic]:
        """Mapping of node address to its counters."""
        return dict(self._per_node)

    def messages_per_node(self, num_nodes: int) -> float:
        """Average transmissions per node over a network of ``num_nodes``."""
        if num_nodes <= 0:
            return 0.0
        return self._total_messages / num_nodes

    def ric_messages_per_node(self, num_nodes: int) -> float:
        """Average RIC transmissions per node."""
        if num_nodes <= 0:
            return 0.0
        return self._total_ric_messages / num_nodes

    def ranked_totals(self) -> List[int]:
        """Per-node totals sorted in decreasing order (ranked-node plots)."""
        return sorted(
            (counters.total for counters in self._per_node.values()), reverse=True
        )

    def snapshot(self) -> Tuple[int, int]:
        """Return ``(total_messages, total_ric_messages)`` for delta computation."""
        return self._total_messages, self._total_ric_messages

    def reset(self) -> None:
        """Clear every counter."""
        self._per_node.clear()
        self._total_messages = 0
        self._total_ric_messages = 0
