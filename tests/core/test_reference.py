"""Tests for the centralised continuous-join oracle."""

import pytest

from repro.core.reference import ReferenceEngine
from repro.data.schema import Catalog
from repro.errors import EngineError, UnknownRelationError
from repro.sql.ast import WindowSpec
from repro.sql.parser import parse_query


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.add_relation("R", ["a", "b"])
    cat.add_relation("S", ["c", "d"])
    cat.add_relation("T", ["e", "f"])
    return cat


class TestReferenceEngine:
    def test_two_way_join(self, catalog):
        ref = ReferenceEngine(catalog)
        qid = ref.submit(parse_query("SELECT R.a, S.d FROM R, S WHERE R.b = S.c"))
        assert ref.publish("R", (1, 10)) == {}
        produced = ref.publish("S", (10, 99))
        assert produced == {qid: [(1, 99)]}
        assert ref.answers(qid) == [(1, 99)]

    def test_order_independence(self, catalog):
        ref = ReferenceEngine(catalog)
        qid = ref.submit(parse_query("SELECT R.a, S.d FROM R, S WHERE R.b = S.c"))
        ref.publish("S", (10, 99))
        produced = ref.publish("R", (1, 10))
        assert produced[qid] == [(1, 99)]

    def test_three_way_join_and_bag_semantics(self, catalog):
        ref = ReferenceEngine(catalog)
        qid = ref.submit(
            parse_query(
                "SELECT R.a, T.f FROM R, S, T WHERE R.b = S.c AND S.d = T.e"
            )
        )
        ref.publish("R", (1, 5))
        ref.publish("S", (5, 7))
        ref.publish("S", (5, 7))          # a second identical S tuple
        ref.publish("T", (7, 42))
        # Two distinct combinations produce the same values: bag semantics keeps both.
        assert ref.answers(qid) == [(1, 42), (1, 42)]

    def test_distinct_deduplicates(self, catalog):
        ref = ReferenceEngine(catalog)
        qid = ref.submit(
            parse_query("SELECT DISTINCT R.a, S.d FROM R, S WHERE R.b = S.c")
        )
        ref.publish("R", (1, 5))
        ref.publish("S", (5, 9))
        ref.publish("S", (5, 9))
        assert ref.answers(qid) == [(1, 9)]

    def test_tuples_published_before_submission_excluded(self, catalog):
        ref = ReferenceEngine(catalog)
        ref.publish("R", (1, 10), pub_time=1.0)
        qid = ref.submit(
            parse_query("SELECT R.a, S.d FROM R, S WHERE R.b = S.c"),
            insertion_time=5.0,
        )
        ref.publish("S", (10, 3), pub_time=6.0)
        assert ref.answers(qid) == []

    def test_selection_predicates(self, catalog):
        ref = ReferenceEngine(catalog)
        qid = ref.submit(
            parse_query("SELECT R.a FROM R, S WHERE R.b = S.c AND S.d = 1")
        )
        ref.publish("R", (7, 3))
        ref.publish("S", (3, 2))
        ref.publish("S", (3, 1))
        assert ref.answers(qid) == [(7,)]

    def test_window_restricts_combinations(self, catalog):
        ref = ReferenceEngine(catalog)
        query = parse_query(
            "SELECT R.a, S.d FROM R, S WHERE R.b = S.c"
        ).with_window(WindowSpec(size=2, mode="tuples"))
        qid = ref.submit(query)
        ref.publish("R", (1, 10))           # sequence 1
        ref.publish("S", (10, 20))          # sequence 2: span 2 <= 2 -> answer
        ref.publish("S", (10, 30))          # sequence 3: span 3 > 2 -> rejected
        assert ref.answers(qid) == [(1, 20)]

    def test_unknown_relation_and_query(self, catalog):
        ref = ReferenceEngine(catalog)
        with pytest.raises(UnknownRelationError):
            ref.publish("ZZ", (1,))
        with pytest.raises(EngineError):
            ref.answers("missing")

    def test_duplicate_query_id_rejected(self, catalog):
        ref = ReferenceEngine(catalog)
        ref.submit(parse_query("SELECT R.a FROM R"), query_id="q1")
        with pytest.raises(EngineError):
            ref.submit(parse_query("SELECT R.a FROM R"), query_id="q1")

    def test_counters(self, catalog):
        ref = ReferenceEngine(catalog)
        ref.submit(parse_query("SELECT R.a FROM R"))
        ref.publish("R", (1, 2))
        assert ref.registered_queries == 1
        assert ref.published_tuples == 1
        assert ref.answer_count("ref#1") == 1
