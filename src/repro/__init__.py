"""RJoin — continuous multi-way equi-joins over Distributed Hash Tables.

A faithful, fully simulated reproduction of *Continuous Multi-Way Joins over
Distributed Hash Tables* (Idreos, Liarou, Koubarakis — EDBT 2008): the RJoin
algorithm, the Chord substrate it runs on, the sliding-window / DISTINCT /
RIC extensions, the baselines it is compared against, and the complete
experiment harness of the paper's Section 8.

Typical usage::

    from repro import RJoinConfig, RJoinEngine, WindowSpec

    engine = RJoinEngine(RJoinConfig(num_nodes=32, seed=1))
    engine.register_relation("R", ["a", "b"])
    engine.register_relation("S", ["c", "d"])

    handle = engine.submit("SELECT R.a, S.d FROM R, S WHERE R.b = S.c")
    engine.publish("R", (1, 10))
    engine.publish("S", (10, 99))
    print(handle.values())           # [(1, 99)]

The engine runs on a selectable node runtime (``RJoinConfig(runtime=...)``):
the deterministic discrete-event kernel (``sim``) or the concurrent
actor-per-node ``asyncio`` runtime; see :mod:`repro.net.runtime`.

The experiment harness is importable from the package root too — those
names resolve lazily (via :pep:`562`) so ``import repro`` stays light::

    from repro import ExperimentConfig, run_experiment, run_grid, get_scenario

See ``examples/`` for richer scenarios, ``benchmarks/`` for the harness that
regenerates every figure of the paper, and ``python -m repro`` for the
command-line entry points.
"""

import warnings
from typing import Any

from repro.core.answers import Answer, QueryHandle
from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.core.reference import ReferenceEngine
from repro.core.strategy import available_strategies, make_strategy
from repro.data.backends import BACKEND_NAMES, make_store
from repro.data.schema import AttributeRef, Catalog, RelationSchema
from repro.data.tuples import Tuple
from repro.errors import ReproError
from repro.net.runtime import TRANSPORT_NAMES, Transport, make_transport
from repro.net.simulator import SimulationKernel
from repro.sql.ast import (
    Constant,
    JoinPredicate,
    Query,
    SelectionPredicate,
    WindowSpec,
)
from repro.sql.parser import parse_query
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

__version__ = "1.1.0"

__all__ = [
    "Answer",
    "AttributeRef",
    "BACKEND_NAMES",
    "Catalog",
    "ChurnSpec",
    "Constant",
    "ExperimentConfig",
    "JoinPredicate",
    "Query",
    "QueryChurnSpec",
    "QueryHandle",
    "ReferenceEngine",
    "RelationSchema",
    "ReproError",
    "RJoinConfig",
    "RJoinEngine",
    "SelectionPredicate",
    "SimulationKernel",
    "TRANSPORT_NAMES",
    "Transport",
    "Tuple",
    "WindowSpec",
    "WorkloadGenerator",
    "WorkloadSpec",
    "available_strategies",
    "get_scenario",
    "make_store",
    "make_strategy",
    "make_transport",
    "parse_query",
    "run_experiment",
    "run_grid",
    "__version__",
]

#: Experiment-harness entry points, resolved lazily on first attribute access
#: so that ``import repro`` does not pay for the grid runner (multiprocessing,
#: scenario registry, figure machinery).
_LAZY_EXPORTS = {
    "ChurnSpec": ("repro.experiments.config", "ChurnSpec"),
    "ExperimentConfig": ("repro.experiments.config", "ExperimentConfig"),
    "QueryChurnSpec": ("repro.experiments.config", "QueryChurnSpec"),
    "get_scenario": ("repro.experiments.scenarios", "get_scenario"),
    "run_experiment": ("repro.experiments.runner", "run_experiment"),
    "run_grid": ("repro.experiments.parallel", "run_grid"),
}

#: Names that moved during the transport extraction.  They keep resolving
#: here (with a :class:`DeprecationWarning`) so downstream imports break
#: loudly never, softly once.
_DEPRECATED_ALIASES = {
    "EventHandle": ("repro.net.runtime", "EventHandle"),
}


def __getattr__(name: str) -> Any:
    """:pep:`562` hook: lazy experiment exports + deprecation shims."""
    import importlib

    if name in _LAZY_EXPORTS:
        module_name, attribute = _LAZY_EXPORTS[name]
        value = getattr(importlib.import_module(module_name), attribute)
        globals()[name] = value  # cache: subsequent lookups skip this hook
        return value
    if name in _DEPRECATED_ALIASES:
        module_name, attribute = _DEPRECATED_ALIASES[name]
        warnings.warn(
            f"repro.{name} is deprecated; import {attribute} from "
            f"{module_name} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(importlib.import_module(module_name), attribute)
    # PEP 562 requires AttributeError here: hasattr()/getattr() probing
    # depends on it, so the exception-discipline rule does not apply.
    raise AttributeError(  # repro: allow[exception-discipline]
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__() -> list:
    return sorted(set(globals()) | set(__all__))
