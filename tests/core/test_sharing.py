"""Multi-query state sharing and the predicate-aware query index.

The contract of PR 8's matching subsystem:

* sharing is *transparent*: with ``shared_query_state`` on, every handle's
  answer bag equals both the unshared engine's and the reference oracle's,
  across all four indexing strategies and all three store backends,
* the subscriber list is a multiset — two canonically equal partial states
  of the *same* query (derived from distinct tuples with identical values)
  each deliver their copy of every future answer,
* removal, re-submission and owner crashes interact correctly with shared
  records (detach-and-promote, never drop a co-subscriber's state),
* the predicate-aware index keeps the tuple-arrival probe sublinear in the
  resident query count: only records whose discriminating selection the
  tuple satisfies (plus wildcard records) are fetched.
"""

from __future__ import annotations

import pytest

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.core.reference import ReferenceEngine
from repro.data.backends import BACKEND_NAMES
from repro.data.schema import Catalog
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

STRATEGIES = ("rjoin", "random", "worst", "first")


def two_relation_catalog() -> Catalog:
    catalog = Catalog()
    catalog.add_relation("R", ["a", "b"])
    catalog.add_relation("S", ["c", "d"])
    return catalog


def as_bag(values):
    return sorted(repr(v) for v in values)


def run_workload(
    *,
    strategy: str = "rjoin",
    backend: str = "memory",
    shared: bool = True,
    queries: int = 6,
    tuples: int = 30,
    seed: int = 17,
    mirror: bool = True,
    **config_overrides,
):
    """Run a random workload; returns ``(engine, reference, handles)``."""
    spec = WorkloadSpec(
        num_relations=4,
        attributes_per_relation=3,
        value_domain=3,
        join_arity=2,
        seed=seed,
    )
    generator = WorkloadGenerator(spec)
    engine = RJoinEngine(
        RJoinConfig(
            num_nodes=16,
            seed=seed,
            strategy=strategy,
            store_backend=backend,
            shared_query_state=shared,
            **config_overrides,
        )
    )
    engine.register_catalog(generator.catalog)
    reference = ReferenceEngine(generator.catalog) if mirror else None
    handles = []
    sqls = generator.generate_queries(queries)
    for query in sqls:
        handle = engine.submit(query)
        handles.append(handle)
        if reference is not None:
            reference.submit(
                query,
                query_id=handle.query_id,
                insertion_time=handle.insertion_time,
            )
    for generated in generator.generate_tuples(tuples):
        tup = engine.publish(generated.relation, generated.values)
        if reference is not None:
            reference.publish_tuple(tup)
    return engine, reference, handles, sqls


def assert_matches_oracle(handles, reference):
    for handle in handles:
        assert as_bag(handle.values()) == as_bag(
            reference.answers(handle.query_id)
        ), handle.query_id


class TestSharingTransparency:
    """Shared matching is bag-equal to private matching and the oracle."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_shared_matches_unshared_and_oracle(self, strategy, backend):
        shared_engine, reference, shared_handles, _ = run_workload(
            strategy=strategy, backend=backend, shared=True
        )
        private_engine, _, private_handles, _ = run_workload(
            strategy=strategy, backend=backend, shared=False, mirror=False
        )
        assert sum(h.count for h in shared_handles) > 0
        assert_matches_oracle(shared_handles, reference)
        for shared_h, private_h in zip(shared_handles, private_handles):
            assert as_bag(shared_h.values()) == as_bag(private_h.values())
        # Sharing never stores more than private state does.
        shared_summary = shared_engine.metrics_summary()
        private_summary = private_engine.metrics_summary()
        assert (
            shared_summary["current_storage"]
            <= private_summary["current_storage"]
        )
        assert private_summary["shared_state_fanout"] == 0.0

    def test_identical_queries_share_state_and_fan_out(self):
        """N copies of one query keep one shared record chain, N answer streams."""
        catalog = two_relation_catalog()
        sql = "SELECT R.a, S.d FROM R, S WHERE R.b = S.c"
        copies = 5

        def run(shared):
            engine = RJoinEngine(
                RJoinConfig(
                    num_nodes=16, seed=9, shared_query_state=shared
                ),
                catalog=catalog,
            )
            # Batch submission: equal insertion times are the sharing
            # precondition (states submitted at different times admit
            # different tuple suffixes and must stay separate).
            handles = [
                engine.submit(sql, process=False) for _ in range(copies)
            ]
            engine.run()
            for row in [("R", (1, 10)), ("S", (10, 2)), ("S", (10, 3)), ("R", (4, 10))]:
                engine.publish(*row)
            return engine, handles

        shared_engine, shared_handles = run(True)
        private_engine, private_handles = run(False)
        expected = as_bag([(1, 2), (1, 3), (4, 2), (4, 3)])
        for handle in shared_handles + private_handles:
            assert as_bag(handle.values()) == expected
        shared_summary = shared_engine.metrics_summary()
        private_summary = private_engine.metrics_summary()
        # The co-subscribers ride the first copy's physical records.
        assert shared_summary["shared_state_fanout"] > 0.0
        assert (
            shared_summary["current_storage"]
            < private_summary["current_storage"]
        )
        # Every answer delivery is still accounted per subscriber.
        assert shared_summary["answers"] == private_summary["answers"]

    def test_duplicate_tuples_preserve_answer_multiplicity(self):
        """Canonically equal states of the same query stay a multiset.

        Two identical-valued (but distinct) R tuples derive two equal
        rewritten states; merging them must deliver *two* copies of every
        answer they complete — the regression that motivated multiset
        subscribers.
        """
        catalog = two_relation_catalog()
        engine = RJoinEngine(
            RJoinConfig(num_nodes=16, seed=9, shared_query_state=True),
            catalog=catalog,
        )
        handle = engine.submit("SELECT R.a, S.d FROM R, S WHERE R.b = S.c")
        engine.publish("R", (1, 10))
        engine.publish("R", (1, 10))  # identical values, distinct tuple
        engine.publish("S", (10, 7))
        assert as_bag(handle.values()) == as_bag([(1, 7), (1, 7)])


class TestSharingLifecycle:
    """Retraction, re-submission and failover on shared records."""

    def test_remove_one_subscriber_keeps_the_others(self):
        catalog = two_relation_catalog()
        sql = "SELECT R.a, S.d FROM R, S WHERE R.b = S.c"
        engine = RJoinEngine(
            RJoinConfig(num_nodes=16, seed=9, shared_query_state=True),
            catalog=catalog,
        )
        keep = engine.submit(sql, process=False)
        drop = engine.submit(sql, process=False)
        engine.run()
        engine.publish("R", (1, 10))
        engine.remove_query(drop.query_id)
        # No state of the removed query survives anywhere...
        for node in engine.nodes.values():
            for table in (node.input_queries, node.rewritten_queries):
                for _, records in table.items():
                    for record in records:
                        assert not record.state.serves(drop.query_id)
        # ...while the survivor keeps matching.
        engine.publish("S", (10, 7))
        assert as_bag(keep.values()) == as_bag([(1, 7)])
        assert drop.count == 0  # nothing delivered after removal

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_remove_then_resubmit_matches_oracle(self, strategy):
        engine, reference, handles, sqls = run_workload(
            strategy=strategy, queries=6, tuples=15, seed=23
        )
        victim = handles[2]
        victim_sql = sqls[2]
        engine.remove_query(victim.query_id)
        reference.remove_query(victim.query_id)
        resubmitted = engine.submit(victim_sql)
        reference.submit(
            victim_sql,
            query_id=resubmitted.query_id,
            insertion_time=resubmitted.insertion_time,
        )
        handles[2] = resubmitted
        spec = WorkloadSpec(
            num_relations=4,
            attributes_per_relation=3,
            value_domain=3,
            join_arity=2,
            seed=24,
        )
        for generated in WorkloadGenerator(spec).generate_tuples(15):
            tup = engine.publish(generated.relation, generated.values)
            reference.publish_tuple(tup)
        assert_matches_oracle(handles, reference)
        assert engine.churn.orphaned_state_records == 0

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_owner_crash_mid_flight_keeps_co_subscribers(self, strategy):
        """Crashing one subscriber's owner must not starve the others.

        The crash victim is a single-identifier arc (it owns queries but
        essentially no key-range state), so the only moving part is the
        lifecycle failover of its subscriptions on shared records.
        """
        spec = WorkloadSpec(
            num_relations=4,
            attributes_per_relation=3,
            value_domain=3,
            join_arity=2,
            seed=31,
        )
        generator = WorkloadGenerator(spec)
        engine = RJoinEngine(
            RJoinConfig(
                num_nodes=24, seed=31, strategy=strategy, shared_query_state=True
            )
        )
        engine.register_catalog(generator.catalog)
        reference = ReferenceEngine(generator.catalog)
        anchor = engine.ring.nodes[0]
        victim = engine.add_node(
            node_id=(anchor.node_id + 1) % (2**engine.space.bits)
        )
        queries = generator.generate_queries(3)
        handles = []
        # Submit every query twice — once owned by the crash victim, once by
        # a default owner — so shared records serve subscribers on both.
        for query in queries:
            # Both copies submitted at the same kernel time, so their states
            # canonicalize together and shared records carry subscribers of
            # both owners.
            for owner in (victim, None):
                handle = engine.submit(query, owner=owner, process=False)
                reference.submit(
                    query,
                    query_id=handle.query_id,
                    insertion_time=handle.insertion_time,
                )
                handles.append(handle)
            engine.run()
        for generated in generator.generate_tuples(15):
            tup = engine.publish(generated.relation, generated.values)
            reference.publish_tuple(tup)
        engine.crash_node(victim)
        for generated in generator.generate_tuples(15):
            tup = engine.publish(generated.relation, generated.values)
            reference.publish_tuple(tup)
        assert_matches_oracle(handles, reference)


class TestQueryIndexSelectivity:
    """The probe fetches only records the tuple can actually rewrite."""

    def test_selective_queries_prune_candidate_scans(self):
        """100 queries with distinct selection constants: an arriving tuple
        probes only the handful whose constant it carries, not all 100."""
        catalog = two_relation_catalog()
        engine = RJoinEngine(
            RJoinConfig(num_nodes=16, seed=9, strategy="first"),
            catalog=catalog,
        )
        num_queries = 100
        for k in range(num_queries):
            engine.submit(
                f"SELECT R.a, S.d FROM R, S WHERE R.b = S.c AND R.a = {k}"
            )
        arrivals = 10
        for i in range(arrivals):
            engine.publish("R", (i % 5, 10))
        summary = engine.metrics_summary()
        # Pre-index, every R arrival scanned every resident input-query
        # record stored under its key (~num_queries); the predicate-aware
        # index fetches only the record whose constant matches.
        linear_floor = arrivals * num_queries
        assert summary["trigger_candidates_scanned"] < linear_floor / 10
        assert summary["queries_triggered"] >= arrivals

    def test_wildcard_queries_still_see_every_arrival(self):
        catalog = two_relation_catalog()
        engine = RJoinEngine(
            RJoinConfig(num_nodes=16, seed=9), catalog=catalog
        )
        handle = engine.submit("SELECT R.a, S.d FROM R, S WHERE R.b = S.c")
        engine.publish("R", (1, 10))
        engine.publish("R", (2, 10))
        engine.publish("S", (10, 5))
        assert as_bag(handle.values()) == as_bag([(1, 5), (2, 5)])
        assert engine.metrics_summary()["trigger_candidates_scanned"] > 0.0

    def test_counters_flow_through_summary_and_reset(self):
        catalog = two_relation_catalog()
        engine = RJoinEngine(
            RJoinConfig(num_nodes=16, seed=9), catalog=catalog
        )
        engine.submit("SELECT R.a, S.d FROM R, S WHERE R.b = S.c")
        engine.publish("R", (1, 10))
        engine.publish("S", (10, 5))
        summary = engine.metrics_summary()
        assert summary["queries_triggered"] == float(
            engine.churn.queries_triggered
        )
        assert summary["trigger_candidates_scanned"] == float(
            engine.churn.trigger_candidates_scanned
        )
        assert summary["shared_state_fanout"] == float(
            engine.churn.shared_state_fanout
        )
        engine.churn.reset()
        assert engine.churn.queries_triggered == 0
        assert engine.churn.trigger_candidates_scanned == 0
        assert engine.churn.shared_state_fanout == 0
