"""End-to-end observability: trace propagation + metrics instruments.

The zero-dependency observability layer of the reproduction.  Enabled via
``RJoinConfig(observability="on")``:

* every :class:`~repro.net.messages.Envelope` carries a
  :class:`TraceContext` and every delivery opens a :class:`Span`
  (logical-clock timestamps; wall-clock service time on the asyncio
  runtime), streamed to a bounded JSONL sink,
* a :class:`MetricsRegistry` of counters, gauges and mergeable
  fixed-bucket histograms records answer latency, per-hop delay, handler
  service time, inbox depth and per-node/per-key load; the histograms fold
  into ``metrics_summary`` as ``*_p50/_p95/_p99`` keys (result schema v8),
* ``python -m repro.obs`` summarizes or converts a recorded trace file
  (Chrome/Perfetto ``trace_event`` output).
"""

from repro.obs.context import Observability
from repro.obs.export import chrome_trace_events, write_chrome_trace
from repro.obs.instruments import (
    HISTOGRAMS,
    PERCENTILE_POINTS,
    Counter,
    Gauge,
    Histogram,
    HistogramSpec,
    MetricsRegistry,
    histogram_percentiles,
)
from repro.obs.trace import (
    DEFAULT_MAX_SPANS,
    OBSERVABILITY_MODES,
    JsonlSink,
    MemorySink,
    Span,
    SpanSink,
    TraceContext,
    Tracer,
    load_spans,
)

__all__ = [
    "Observability",
    "chrome_trace_events",
    "write_chrome_trace",
    "HISTOGRAMS",
    "PERCENTILE_POINTS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSpec",
    "MetricsRegistry",
    "histogram_percentiles",
    "DEFAULT_MAX_SPANS",
    "OBSERVABILITY_MODES",
    "JsonlSink",
    "MemorySink",
    "Span",
    "SpanSink",
    "TraceContext",
    "Tracer",
    "load_spans",
]
