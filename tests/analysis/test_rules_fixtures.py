"""Every rule fires on its seeded fixture tree and honours the allowlist.

Each fixture under ``fixtures/`` is a miniature package root with known
violations (see ``fixtures/README.md``); these tests are the proof that
``python -m repro.analysis check`` exits non-zero for each rule and that
the suppression layers silence exactly the marked lines.
"""

from __future__ import annotations

from typing import List

from repro.analysis import AnalysisReport, analyze
from repro.lint import lint_allow

from tests.analysis.conftest import FIXTURES


def run_fixture(name: str, rule: str) -> AnalysisReport:
    return analyze(FIXTURES / name, [rule])


def messages(findings) -> List[str]:
    return [finding.message for finding in findings]


class TestDeterminismPurity:
    def test_seeded_violations_fire(self):
        report = run_fixture("determinism", "determinism-purity")
        assert not report.ok
        assert len(report.active) == 5
        joined = "\n".join(messages(report.active))
        assert "time.time()" in joined
        assert "random.random()" in joined
        assert "random.Random() without a seed" in joined
        assert "unordered set" in joined
        assert {f.path for f in report.active} == {
            "core/clock.py",
            "net/transport_sim.py",
        }

    def test_sorted_iteration_is_clean(self):
        report = run_fixture("determinism", "determinism-purity")
        sorted_def_line = 31  # iterate_sorted in core/clock.py
        assert all(
            f.line < sorted_def_line
            for f in report.active
            if f.path == "core/clock.py"
        )

    def test_concurrent_runtime_is_exempt(self):
        # net/runtime_asyncio.py is seeded with wall-clock, global-RNG and
        # set-iteration constructs that would all fire elsewhere; the
        # per-file exemption must silence the whole file without touching
        # the sim-side net/ violation.
        report = run_fixture("determinism", "determinism-purity")
        assert all(f.path != "net/runtime_asyncio.py" for f in report.active)
        assert all(f.path != "net/runtime_asyncio.py" for f in report.suppressed)
        assert any(f.path == "net/transport_sim.py" for f in report.active)

    def test_comment_and_decorator_allowlists_suppress(self):
        report = run_fixture("determinism", "determinism-purity")
        assert len(report.suppressed) == 2
        assert all(f.suppressed_by == "allowlist" for f in report.suppressed)
        suppressed_msgs = "\n".join(messages(report.suppressed))
        assert "time.time()" in suppressed_msgs  # trailing comment form
        assert "time.monotonic()" in suppressed_msgs  # @lint_allow form


class TestProtocolCompleteness:
    def test_seeded_violations_fire(self):
        report = run_fixture("protocol", "protocol-completeness")
        assert not report.ok
        assert len(report.active) == 3
        joined = "\n".join(messages(report.active))
        assert "UnroutedMessage has no dispatch arm" in joined
        assert "UnsentMessage is never constructed" in joined
        assert "GhostMessage" in joined and "not a declared Message" in joined

    def test_compliant_message_stays_silent(self):
        report = run_fixture("protocol", "protocol-completeness")
        assert "HandledMessage" not in "\n".join(messages(report.active))


class TestMetricsRegistry:
    def test_seeded_violations_fire(self):
        report = run_fixture("metrics", "metrics-registry")
        assert not report.ok
        assert len(report.active) == 11
        joined = "\n".join(messages(report.active))
        assert "_hidden is mutated but no @property" in joined
        assert "_orphans" in joined and "never surfaces" in joined
        assert "ghost_metric" in joined and "not defined on ChurnStats" in joined
        assert "'extra_key'" in joined and "does not declare it" in joined
        assert "'ghost_reads'" in joined
        assert "'stale_key'" in joined and "stale schema entry" in joined
        # Histogram direction 1: declared histogram with no percentile keys.
        assert "histogram 'ghost_histogram'" in joined
        for suffix in ("p50", "p95", "p99"):
            assert f"'ghost_histogram_{suffix}'" in joined
        # Histogram direction 2: percentile key without a histogram.
        assert "'phantom_hist_p95'" in joined
        assert "phantom percentile key" in joined
        # The summary never folds the percentiles in.
        assert "does not spread" in joined

    def test_consistent_counter_stays_silent(self):
        report = run_fixture("metrics", "metrics-registry")
        joined = "\n".join(messages(report.active))
        assert "_joins" not in joined
        # The declared answer_latency histogram has all three percentile
        # keys in the schema: neither direction fires, and its keys are not
        # mistaken for stale schema entries despite being absent from the
        # dict literal.
        assert "'answer_latency_p50'" not in joined
        assert "'answer_latency_p95'" not in joined
        assert "'answer_latency_p99'" not in joined


class TestStoreContract:
    def test_seeded_violations_fire(self):
        report = run_fixture("store", "store-contract")
        assert not report.ok
        assert len(report.active) == 3
        joined = "\n".join(messages(report.active))
        assert "RogueBackend does not inherit StoreBackend" in joined
        assert "does not implement abstract StoreBackend.match" in joined
        assert "match_batch changes the batch-contract signature" in joined
        assert all(f.path == "data/rogue_backend.py" for f in report.active)

    def test_compliant_backend_stays_silent(self):
        report = run_fixture("store", "store-contract")
        assert "GoodBackend" not in "\n".join(messages(report.active))


class TestExceptionDiscipline:
    def test_seeded_violations_fire(self):
        report = run_fixture("exceptions", "exception-discipline")
        assert not report.ok
        assert len(report.active) == 2
        joined = "\n".join(messages(report.active))
        assert "raise ValueError" in joined
        assert "raise RuntimeError" in joined

    def test_allowlist_and_benign_shapes(self):
        report = run_fixture("exceptions", "exception-discipline")
        # The marked ValueError raise is suppressed, not active.
        assert len(report.suppressed) == 1
        assert report.suppressed[0].suppressed_by == "allowlist"
        # Subclassing Exception and re-raising are not flagged at all.
        assert all("FixtureError" not in m for m in messages(report.active))


class TestAnnotationCompleteness:
    def test_seeded_violations_fire(self):
        report = run_fixture("annotations", "annotation-completeness")
        assert not report.ok
        assert len(report.active) == 2
        joined = "\n".join(messages(report.active))
        assert "no_return_annotation is missing annotations for: return" in joined
        assert "__init__ is missing annotations for: value, return" in joined

    def test_allowlist_suppresses(self):
        report = run_fixture("annotations", "annotation-completeness")
        assert len(report.suppressed) == 1
        assert "def tolerated" in report.suppressed[0].message


class TestParseError:
    def test_unparsable_file_is_always_an_active_finding(self):
        # Even with zero rules selected, a broken file fails the check.
        report = analyze(FIXTURES / "broken", [])
        assert not report.ok
        assert [f.rule for f in report.active] == ["parse-error"]
        assert report.active[0].path == "core/syntax_error.py"


class TestLintAllowDecorator:
    def test_decorator_is_a_runtime_no_op(self):
        def probe(x: int) -> int:
            return x + 1

        decorated = lint_allow("determinism-purity", reason="test")(probe)
        assert decorated is probe
        assert decorated(1) == 2
