"""One function per figure of the paper's experimental section.

Every ``figureN()`` function runs the corresponding experiment(s) and returns
a :class:`FigureResult` holding the same data series the paper plots, plus a
plain-text rendering used by the benchmark harness.  The base configurations
and default sweeps come from the scenario registry
(:mod:`repro.experiments.scenarios` — scenarios ``fig2`` … ``fig9``), so the
figures, the parallel grid runner and the CLI all share one set of
definitions; passing ``REPRO_FULL_SCALE=1`` (or explicit keyword overrides)
switches to the paper's sizes.

Figure 1 of the paper is a worked example rather than an experiment; it is
reproduced by ``examples/paper_example_figure1.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.scenarios import get_scenario
from repro.metrics.report import format_table, participation_count
from repro.sql.ast import WindowSpec


@dataclass
class FigureResult:
    """Data series regenerating one figure of the paper."""

    figure: str
    description: str
    parameters: Dict[str, object]
    x_label: str
    x_values: List[object]
    series: Dict[str, List[float]]
    distributions: Dict[str, List[float]] = field(default_factory=dict)
    experiments: Dict[str, ExperimentResult] = field(default_factory=dict)

    def to_text(self) -> str:
        """Render the figure's series as a plain-text table."""
        columns = [self.x_label] + list(self.series.keys())
        rows = []
        for index, x in enumerate(self.x_values):
            row = [x]
            for name in self.series:
                values = self.series[name]
                row.append(values[index] if index < len(values) else "")
            rows.append(row)
        title = f"{self.figure}: {self.description}"
        return format_table(title, columns, rows)

    def series_named(self, name: str) -> List[float]:
        """Convenience accessor for one series."""
        return self.series[name]


def _scenario_base(name: str, seed: int) -> ExperimentConfig:
    """The registry's base configuration for a figure scenario, re-seeded."""
    return get_scenario(name).base().with_overrides(seed=seed)


def _scenario_sweep(name: str, parameter: str) -> List[object]:
    """The default sweep values of a figure scenario's variants."""
    return [
        variant.overrides[parameter] for variant in get_scenario(name).variants()
    ]


# ---------------------------------------------------------------------------
# Figure 2 — effect of taking RIC information into account
# ---------------------------------------------------------------------------
def figure2(
    num_nodes: Optional[int] = None,
    num_queries: Optional[int] = None,
    checkpoints: Optional[Sequence[int]] = None,
    seed: int = 42,
) -> FigureResult:
    """Worst vs Random vs RJoin: traffic, QPL and SL per node (Figure 2)."""
    base = _scenario_base("fig2", seed)
    if num_nodes is not None:
        base = base.with_overrides(num_nodes=num_nodes)
    if num_queries is not None:
        base = base.with_overrides(num_queries=num_queries)
    if checkpoints is not None:
        checkpoints = list(checkpoints)
        base = base.with_overrides(
            checkpoints=checkpoints, num_tuples=max(checkpoints)
        )

    strategies = get_scenario("fig2").strategies
    experiments: Dict[str, ExperimentResult] = {}
    for strategy in strategies:
        config = base.with_overrides(name=f"fig2-{strategy}", strategy=strategy)
        experiments[strategy] = run_experiment(config)

    x_values = list(base.checkpoints)
    series: Dict[str, List[float]] = {}
    for strategy in strategies:
        result = experiments[strategy]
        series[f"{strategy}_messages_per_node"] = [
            result.checkpoint_delta(c, "messages_per_node", since_warmup=True)
            for c in x_values
        ]
        series[f"{strategy}_qpl_per_node"] = [
            result.checkpoint_delta(c, "qpl_per_node", since_warmup=True)
            for c in x_values
        ]
        series[f"{strategy}_storage_per_node"] = [
            result.checkpoint_delta(c, "storage_per_node", since_warmup=True)
            for c in x_values
        ]
    series["rjoin_ric_messages_per_node"] = [
        experiments["rjoin"].checkpoint_delta(
            c, "ric_messages_per_node", since_warmup=True
        )
        for c in x_values
    ]
    return FigureResult(
        figure="Figure 2",
        description="Effect of taking RIC information into account",
        parameters={"num_nodes": base.num_nodes, "num_queries": base.num_queries},
        x_label="# of incoming tuples",
        x_values=x_values,
        series=series,
        experiments=experiments,
    )


# ---------------------------------------------------------------------------
# Figure 3 — effect of increasing the number of incoming tuples
# ---------------------------------------------------------------------------
def figure3(
    num_nodes: Optional[int] = None,
    num_queries: Optional[int] = None,
    tuple_counts: Optional[Sequence[int]] = None,
    seed: int = 42,
) -> FigureResult:
    """RJoin under an increasing tuple rate (Figure 3)."""
    if tuple_counts is None:
        tuple_counts = _scenario_sweep("fig3", "num_tuples")
    base = _scenario_base("fig3", seed)
    if num_nodes is not None:
        base = base.with_overrides(num_nodes=num_nodes)
    if num_queries is not None:
        base = base.with_overrides(num_queries=num_queries)

    experiments: Dict[str, ExperimentResult] = {}
    traffic_per_tuple: List[float] = []
    ric_per_tuple: List[float] = []
    distributions: Dict[str, List[float]] = {}
    participation: List[float] = []
    for count in tuple_counts:
        config = base.with_overrides(name=f"fig3-{count}", num_tuples=int(count))
        result = run_experiment(config)
        experiments[str(count)] = result
        traffic_per_tuple.append(result.messages_per_node_per_tuple)
        ric_per_tuple.append(result.ric_messages_per_node_per_tuple)
        distributions[f"qpl_ranked_{count}"] = [float(v) for v in result.ranked_qpl]
        distributions[f"storage_ranked_{count}"] = [
            float(v) for v in result.ranked_storage
        ]
        participation.append(float(result.participating_nodes))

    return FigureResult(
        figure="Figure 3",
        description="Effect of increasing the number of incoming tuples",
        parameters={"num_nodes": base.num_nodes, "num_queries": base.num_queries},
        x_label="# of incoming tuples",
        x_values=list(tuple_counts),
        series={
            "messages_per_node_per_tuple": traffic_per_tuple,
            "ric_messages_per_node_per_tuple": ric_per_tuple,
            "participating_nodes": participation,
        },
        distributions=distributions,
        experiments=experiments,
    )


# ---------------------------------------------------------------------------
# Figure 4 — effect of increasing the number of indexed queries
# ---------------------------------------------------------------------------
def figure4(
    num_nodes: Optional[int] = None,
    query_counts: Optional[Sequence[int]] = None,
    num_tuples: Optional[int] = None,
    seed: int = 42,
) -> FigureResult:
    """RJoin under an increasing number of indexed queries (Figure 4)."""
    if query_counts is None:
        query_counts = _scenario_sweep("fig4", "num_queries")
    base = _scenario_base("fig4", seed)
    if num_tuples is not None:
        base = base.with_overrides(num_tuples=num_tuples)
    if num_nodes is not None:
        base = base.with_overrides(num_nodes=num_nodes)

    experiments: Dict[str, ExperimentResult] = {}
    traffic_per_tuple: List[float] = []
    ric_per_tuple: List[float] = []
    qpl_per_node: List[float] = []
    storage_per_node: List[float] = []
    distributions: Dict[str, List[float]] = {}
    for count in query_counts:
        config = base.with_overrides(name=f"fig4-{count}", num_queries=int(count))
        result = run_experiment(config)
        experiments[str(count)] = result
        traffic_per_tuple.append(result.messages_per_node_per_tuple)
        ric_per_tuple.append(result.ric_messages_per_node_per_tuple)
        qpl_per_node.append(result.qpl_per_node)
        storage_per_node.append(result.storage_per_node)
        distributions[f"qpl_ranked_{count}"] = [float(v) for v in result.ranked_qpl]
        distributions[f"storage_ranked_{count}"] = [
            float(v) for v in result.ranked_storage
        ]

    return FigureResult(
        figure="Figure 4",
        description="Effect of increasing the number of indexed queries",
        parameters={"num_nodes": base.num_nodes, "num_tuples": base.num_tuples},
        x_label="# of indexed queries",
        x_values=list(query_counts),
        series={
            "messages_per_node_per_tuple": traffic_per_tuple,
            "ric_messages_per_node_per_tuple": ric_per_tuple,
            "qpl_per_node": qpl_per_node,
            "storage_per_node": storage_per_node,
        },
        distributions=distributions,
        experiments=experiments,
    )


# ---------------------------------------------------------------------------
# Figure 5 — varying the skew of the data distribution
# ---------------------------------------------------------------------------
def figure5(
    num_nodes: Optional[int] = None,
    num_queries: Optional[int] = None,
    num_tuples: Optional[int] = None,
    thetas: Optional[Sequence[float]] = None,
    seed: int = 42,
) -> FigureResult:
    """RJoin under increasingly skewed workloads (Figure 5)."""
    if thetas is None:
        thetas = _scenario_sweep("fig5", "zipf_theta")
    base = _scenario_base("fig5", seed)
    if num_nodes is not None:
        base = base.with_overrides(num_nodes=num_nodes)
    if num_queries is not None:
        base = base.with_overrides(num_queries=num_queries)
    if num_tuples is not None:
        base = base.with_overrides(num_tuples=num_tuples)

    experiments: Dict[str, ExperimentResult] = {}
    traffic_per_tuple: List[float] = []
    ric_per_tuple: List[float] = []
    qpl_per_node: List[float] = []
    storage_per_node: List[float] = []
    max_qpl: List[float] = []
    distributions: Dict[str, List[float]] = {}
    for theta in thetas:
        config = base.with_overrides(name=f"fig5-{theta}", zipf_theta=float(theta))
        result = run_experiment(config)
        experiments[str(theta)] = result
        traffic_per_tuple.append(result.messages_per_node_per_tuple)
        ric_per_tuple.append(result.ric_messages_per_node_per_tuple)
        qpl_per_node.append(result.qpl_per_node)
        storage_per_node.append(result.storage_per_node)
        max_qpl.append(float(result.max_qpl))
        distributions[f"qpl_ranked_{theta}"] = [float(v) for v in result.ranked_qpl]
        distributions[f"storage_ranked_{theta}"] = [
            float(v) for v in result.ranked_storage
        ]

    return FigureResult(
        figure="Figure 5",
        description="Effect of skewed data",
        parameters={"num_nodes": base.num_nodes, "num_queries": base.num_queries},
        x_label="theta",
        x_values=list(thetas),
        series={
            "messages_per_node_per_tuple": traffic_per_tuple,
            "ric_messages_per_node_per_tuple": ric_per_tuple,
            "qpl_per_node": qpl_per_node,
            "storage_per_node": storage_per_node,
            "max_node_qpl": max_qpl,
        },
        distributions=distributions,
        experiments=experiments,
    )


# ---------------------------------------------------------------------------
# Figure 6 — effect of query complexity (number of joins)
# ---------------------------------------------------------------------------
def figure6(
    num_nodes: Optional[int] = None,
    num_queries: Optional[int] = None,
    num_tuples: Optional[int] = None,
    arities: Optional[Sequence[int]] = None,
    seed: int = 42,
) -> FigureResult:
    """RJoin with 4-, 6- and 8-way join queries (Figure 6)."""
    if arities is None:
        arities = _scenario_sweep("fig6", "join_arity")
    base = _scenario_base("fig6", seed)
    if num_nodes is not None:
        base = base.with_overrides(num_nodes=num_nodes)
    if num_queries is not None:
        base = base.with_overrides(num_queries=num_queries)
    if num_tuples is not None:
        base = base.with_overrides(num_tuples=num_tuples)

    experiments: Dict[str, ExperimentResult] = {}
    traffic_per_tuple: List[float] = []
    ric_per_tuple: List[float] = []
    qpl_per_node: List[float] = []
    storage_per_node: List[float] = []
    distributions: Dict[str, List[float]] = {}
    for arity in arities:
        config = base.with_overrides(name=f"fig6-{arity}way", join_arity=int(arity))
        result = run_experiment(config)
        experiments[f"{arity}-way"] = result
        traffic_per_tuple.append(result.messages_per_node_per_tuple)
        ric_per_tuple.append(result.ric_messages_per_node_per_tuple)
        qpl_per_node.append(result.qpl_per_node)
        storage_per_node.append(result.storage_per_node)
        distributions[f"qpl_ranked_{arity}way"] = [float(v) for v in result.ranked_qpl]
        distributions[f"storage_ranked_{arity}way"] = [
            float(v) for v in result.ranked_storage
        ]

    return FigureResult(
        figure="Figure 6",
        description="Effect of having more complex queries",
        parameters={"num_nodes": base.num_nodes, "num_queries": base.num_queries},
        x_label="# of relations joined",
        x_values=list(arities),
        series={
            "messages_per_node_per_tuple": traffic_per_tuple,
            "ric_messages_per_node_per_tuple": ric_per_tuple,
            "qpl_per_node": qpl_per_node,
            "storage_per_node": storage_per_node,
        },
        distributions=distributions,
        experiments=experiments,
    )


# ---------------------------------------------------------------------------
# Figures 7 and 8 — sliding window size
# ---------------------------------------------------------------------------
def _figure_window_sizes() -> List[int]:
    """Window sizes of the fig7 scenario's variants (shared with Figure 8)."""
    return [
        int(variant.overrides["window"].size)
        for variant in get_scenario("fig7").variants()
    ]


def _window_sweep(
    window_sizes: Sequence[int],
    num_nodes: Optional[int],
    num_queries: Optional[int],
    num_tuples: Optional[int],
    capture_per_tuple: bool,
    seed: int,
) -> Dict[str, ExperimentResult]:
    base = _scenario_base("fig7", seed)
    if num_nodes is not None:
        base = base.with_overrides(num_nodes=num_nodes)
    if num_queries is not None:
        base = base.with_overrides(num_queries=num_queries)
    if num_tuples is not None:
        base = base.with_overrides(num_tuples=num_tuples)
    results: Dict[str, ExperimentResult] = {}
    for size in window_sizes:
        window = WindowSpec(size=float(size), mode="tuples")
        config = base.with_overrides(
            name=f"window-{size}",
            window=window,
            capture_per_tuple=capture_per_tuple,
        )
        results[str(size)] = run_experiment(config)
    return results


def figure7(
    num_nodes: Optional[int] = None,
    num_queries: Optional[int] = None,
    num_tuples: Optional[int] = None,
    window_sizes: Optional[Sequence[int]] = None,
    seed: int = 42,
) -> FigureResult:
    """Effect of the sliding-window size on traffic, QPL and SL (Figure 7)."""
    if window_sizes is None:
        window_sizes = _figure_window_sizes()
    results = _window_sweep(
        window_sizes, num_nodes, num_queries, num_tuples, False, seed
    )
    traffic_per_tuple = [
        results[str(size)].messages_per_node_per_tuple for size in window_sizes
    ]
    ric_per_tuple = [
        results[str(size)].ric_messages_per_node_per_tuple for size in window_sizes
    ]
    qpl_per_node = [results[str(size)].qpl_per_node for size in window_sizes]
    storage_current = [
        float(sum(results[str(size)].ranked_storage_current))
        for size in window_sizes
    ]
    distributions: Dict[str, List[float]] = {}
    for size in window_sizes:
        result = results[str(size)]
        distributions[f"qpl_ranked_W{size}"] = [float(v) for v in result.ranked_qpl]
        distributions[f"storage_ranked_W{size}"] = [
            float(v) for v in result.ranked_storage
        ]
    return FigureResult(
        figure="Figure 7",
        description="Effect of sliding window size (W)",
        parameters={"window_sizes": list(window_sizes)},
        x_label="sliding window size (tuples)",
        x_values=list(window_sizes),
        series={
            "messages_per_node_per_tuple": traffic_per_tuple,
            "ric_messages_per_node_per_tuple": ric_per_tuple,
            "qpl_per_node": qpl_per_node,
            "total_current_storage": storage_current,
        },
        distributions=distributions,
        experiments=results,
    )


def figure8(
    num_nodes: Optional[int] = None,
    num_queries: Optional[int] = None,
    num_tuples: Optional[int] = None,
    window_sizes: Optional[Sequence[int]] = None,
    seed: int = 42,
) -> FigureResult:
    """Cumulative QPL and SL per incoming tuple for each window size (Figure 8)."""
    if window_sizes is None:
        window_sizes = _figure_window_sizes()
    results = _window_sweep(
        window_sizes, num_nodes, num_queries, num_tuples, True, seed
    )
    distributions: Dict[str, List[float]] = {}
    final_qpl: List[float] = []
    final_storage: List[float] = []
    for size in window_sizes:
        result = results[str(size)]
        distributions[f"cumulative_qpl_W{size}"] = [
            float(v) for v in result.cumulative_qpl
        ]
        distributions[f"cumulative_storage_W{size}"] = [
            float(v) for v in result.cumulative_storage
        ]
        final_qpl.append(
            float(result.cumulative_qpl[-1]) if result.cumulative_qpl else 0.0
        )
        final_storage.append(
            float(result.cumulative_storage[-1]) if result.cumulative_storage else 0.0
        )
    return FigureResult(
        figure="Figure 8",
        description="Cumulative load created with each new tuple per window size",
        parameters={"window_sizes": list(window_sizes)},
        x_label="sliding window size (tuples)",
        x_values=list(window_sizes),
        series={
            "final_cumulative_qpl": final_qpl,
            "final_cumulative_storage": final_storage,
        },
        distributions=distributions,
        experiments=results,
    )


# ---------------------------------------------------------------------------
# Figure 9 — using lower-level interfaces (id movement)
# ---------------------------------------------------------------------------
def figure9(
    num_nodes: Optional[int] = None,
    num_queries: Optional[int] = None,
    num_tuples: Optional[int] = None,
    seed: int = 42,
) -> FigureResult:
    """Load distribution with and without id-movement balancing (Figure 9)."""
    base = _scenario_base("fig9", seed)
    if num_nodes is not None:
        base = base.with_overrides(num_nodes=num_nodes)
    if num_queries is not None:
        base = base.with_overrides(num_queries=num_queries)
    if num_tuples is not None:
        base = base.with_overrides(num_tuples=num_tuples)

    without = run_experiment(
        base.with_overrides(name="fig9-without", id_movement=False)
    )
    with_movement = run_experiment(
        base.with_overrides(name="fig9-with", id_movement=True)
    )
    distributions = {
        "qpl_ranked_without": [float(v) for v in without.ranked_qpl],
        "qpl_ranked_with": [float(v) for v in with_movement.ranked_qpl],
        "storage_ranked_without": [float(v) for v in without.ranked_storage_current],
        "storage_ranked_with": [float(v) for v in with_movement.ranked_storage_current],
    }
    series = {
        "max_storage": [
            float(without.max_storage),
            float(with_movement.max_storage),
        ],
        "max_qpl": [float(without.max_qpl), float(with_movement.max_qpl)],
        "participating_nodes": [
            float(participation_count(without.ranked_qpl)),
            float(participation_count(with_movement.ranked_qpl)),
        ],
    }
    return FigureResult(
        figure="Figure 9",
        description="Effect of id movement (without / with)",
        parameters={"num_nodes": base.num_nodes, "num_queries": base.num_queries},
        x_label="configuration",
        x_values=["without", "with"],
        series=series,
        distributions=distributions,
        experiments={"without": without, "with": with_movement},
    )
