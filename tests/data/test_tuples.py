"""Tests for published tuples."""

import pytest

from repro.data.schema import RelationSchema
from repro.data.tuples import Tuple
from repro.errors import SchemaError


@pytest.fixture
def schema():
    return RelationSchema("R", ["a", "b", "c"])


class TestTuple:
    def test_from_schema_valid(self, schema):
        tup = Tuple.from_schema(schema, (1, 2, 3), pub_time=5.0, sequence=9)
        assert tup.relation == "R"
        assert tup.values == (1, 2, 3)
        assert tup.pub_time == 5.0
        assert tup.sequence == 9

    def test_from_schema_arity_mismatch(self, schema):
        with pytest.raises(SchemaError):
            Tuple.from_schema(schema, (1, 2))

    def test_values_are_tuples_even_from_lists(self):
        tup = Tuple(relation="R", values=[1, 2])
        assert isinstance(tup.values, tuple)

    def test_value_of(self, schema):
        tup = Tuple.from_schema(schema, (10, 20, 30))
        assert tup.value_of("a", schema) == 10
        assert tup.value_of("c", schema) == 30

    def test_value_at(self, schema):
        tup = Tuple.from_schema(schema, (10, 20, 30))
        assert tup.value_at(1) == 20

    def test_as_dict(self, schema):
        tup = Tuple.from_schema(schema, (1, 2, 3))
        assert tup.as_dict(schema) == {"a": 1, "b": 2, "c": 3}

    def test_as_dict_arity_mismatch(self, schema):
        tup = Tuple(relation="R", values=(1,))
        with pytest.raises(SchemaError):
            tup.as_dict(schema)

    def test_identity_stable_across_copies(self, schema):
        first = Tuple.from_schema(schema, (1, 2, 3), sequence=4)
        second = Tuple.from_schema(schema, (9, 9, 9), sequence=4)
        assert first.identity == ("R", 4)
        assert first.identity == second.identity

    def test_immutability(self, schema):
        tup = Tuple.from_schema(schema, (1, 2, 3))
        with pytest.raises(Exception):
            tup.relation = "S"  # type: ignore[misc]

    def test_arity(self, schema):
        assert Tuple.from_schema(schema, (1, 2, 3)).arity == 3

    def test_str_contains_relation_and_values(self, schema):
        text = str(Tuple.from_schema(schema, (1, 2, 3), pub_time=7))
        assert "R" in text and "1" in text
