"""Chord-based Distributed Hash Table substrate.

The paper layers RJoin on top of an existing DHT and only uses the standard
lookup API (Section 2); Chord is used in the examples and experiments.  This
subpackage implements that substrate:

* :mod:`repro.dht.hashing` — the m-bit identifier space, consistent hashing
  via SHA-1 and circular-interval arithmetic,
* :mod:`repro.dht.ring` — the sorted identifier ring (successor queries),
* :mod:`repro.dht.chord` — Chord nodes, finger tables, greedy O(log N)
  lookup-path computation, node join/leave and id movement,
* :mod:`repro.dht.api` — the messaging API of the paper:
  ``send(msg, id)``, ``multiSend(M, I)`` and ``sendDirect(msg, addr)``, with
  hop-accurate traffic accounting on the simulation kernel,
* :mod:`repro.dht.loadbalance` — the id-movement load balancer used by the
  lower-layer experiment of Figure 9.
"""

from repro.dht.api import DHTMessagingService
from repro.dht.chord import ChordNode, ChordRing
from repro.dht.hashing import IdentifierSpace
from repro.dht.loadbalance import IdMovementBalancer
from repro.dht.ring import RingMap

__all__ = [
    "ChordNode",
    "ChordRing",
    "DHTMessagingService",
    "IdMovementBalancer",
    "IdentifierSpace",
    "RingMap",
]
