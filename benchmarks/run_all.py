"""Smoke driver for the whole benchmark suite.

Executes every figure benchmark (``bench_fig*.py`` exercises the same
``figureN()`` entry points through pytest-benchmark) plus the hot-path
microbenchmark at drastically reduced sizes, and fails loudly on any
exception.  The goal is not timing fidelity — it is catching code paths that
only the benchmarks exercise (full experiment sweeps, id movement, window
sweeps) without paying for a full benchmark run.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py            # smoke everything
    PYTHONPATH=src python -m pytest -m bench_smoke         # same, via pytest

The pytest entry point lives in ``tests/test_bench_smoke.py`` and is opt-in:
the ``bench_smoke`` marker is deselected by default (see ``pytest.ini``).
"""

from __future__ import annotations

import sys
import traceback
from typing import Callable, Dict, List, Tuple

from repro.experiments import figures

# One entry per paper figure: (figure function, smoke-scale overrides).
# The overrides keep each run to a couple of seconds while still driving the
# full experiment pipeline (warm-up, query indexing, checkpoints, GC,
# id movement) end to end.
SMOKE_FIGURES: List[Tuple[Callable, Dict[str, object]]] = [
    (figures.figure2, {"num_nodes": 12, "num_queries": 6, "checkpoints": [10, 20]}),
    (figures.figure3, {"num_nodes": 12, "num_queries": 6, "tuple_counts": [5, 10]}),
    (figures.figure4, {"num_nodes": 12, "query_counts": [3, 6], "num_tuples": 15}),
    (
        figures.figure5,
        {"num_nodes": 12, "num_queries": 6, "num_tuples": 15, "thetas": (0.5, 0.9)},
    ),
    (
        figures.figure6,
        {"num_nodes": 12, "num_queries": 6, "num_tuples": 15, "arities": (4,)},
    ),
    (
        figures.figure7,
        {"num_nodes": 12, "num_queries": 6, "num_tuples": 15, "window_sizes": [5, 10]},
    ),
    (
        figures.figure8,
        {"num_nodes": 12, "num_queries": 6, "num_tuples": 15, "window_sizes": [5, 10]},
    ),
    (figures.figure9, {"num_nodes": 12, "num_queries": 10, "num_tuples": 15}),
]


def run_all(verbose: bool = True) -> List[str]:
    """Smoke-run every benchmark; returns a list of failure descriptions."""
    failures: List[str] = []

    for figure_fn, overrides in SMOKE_FIGURES:
        name = figure_fn.__name__
        try:
            result = figure_fn(**overrides)
            if verbose:
                print(f"{name}: ok ({result.figure})")
        except Exception:
            failures.append(f"{name} failed:\n{traceback.format_exc()}")
            if verbose:
                print(f"{name}: FAILED")

    try:
        import bench_micro_hotpaths
    except ImportError:
        from benchmarks import bench_micro_hotpaths  # type: ignore[no-redef]
    try:
        report = bench_micro_hotpaths.run_all(smoke=True)
        if verbose:
            print(f"bench_micro_hotpaths: ok ({len(report['results'])} benchmarks)")
    except Exception:
        failures.append(f"bench_micro_hotpaths failed:\n{traceback.format_exc()}")
        if verbose:
            print("bench_micro_hotpaths: FAILED")

    try:
        import bench_parallel
    except ImportError:
        from benchmarks import bench_parallel  # type: ignore[no-redef]
    try:
        report = bench_parallel.run_bench(smoke=True, workers=2)
        if verbose:
            print(f"bench_parallel: ok ({report['cells']} cells)")
    except Exception:
        failures.append(f"bench_parallel failed:\n{traceback.format_exc()}")
        if verbose:
            print("bench_parallel: FAILED")

    return failures


def main() -> int:
    failures = run_all(verbose=True)
    if failures:
        print(f"\n{len(failures)} benchmark(s) failed:", file=sys.stderr)
        for failure in failures:
            print(failure, file=sys.stderr)
        return 1
    print("\nall benchmarks passed in smoke mode")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
