"""Tests for the Chord overlay: ownership, routing, membership changes."""

import pytest

from repro.dht.chord import ChordRing
from repro.dht.hashing import IdentifierSpace
from repro.errors import ConfigurationError, DuplicateNodeError, UnknownNodeError


@pytest.fixture
def ring():
    return ChordRing.create_network(32, space=IdentifierSpace(16), seed=3)


class TestMembership:
    def test_create_network(self, ring):
        assert len(ring) == 32
        assert len(set(node.node_id for node in ring.nodes)) == 32
        assert len(ring.addresses) == 32

    def test_create_network_requires_positive_size(self):
        with pytest.raises(ConfigurationError):
            ChordRing.create_network(0)

    def test_add_and_remove_node(self, ring):
        node = ring.add_node("extra")
        assert ring.has_address("extra")
        assert len(ring) == 33
        ring.remove_node("extra")
        assert not ring.has_address("extra")
        assert len(ring) == 32
        assert node.address == "extra"

    def test_duplicate_address_rejected(self, ring):
        with pytest.raises(DuplicateNodeError):
            ring.add_node(ring.addresses[0])

    def test_unknown_address_raises(self, ring):
        with pytest.raises(UnknownNodeError):
            ring.node_by_address("nope")

    def test_hashed_placement_is_deterministic(self):
        a = ChordRing.create_network(8, hashed_placement=True)
        b = ChordRing.create_network(8, hashed_placement=True)
        assert [n.node_id for n in a.nodes] == [n.node_id for n in b.nodes]


class TestOwnership:
    def test_successor_owns_interval(self, ring):
        for node in ring.nodes:
            assert ring.successor(node.node_id).address == node.address
        # A key just after a node belongs to the next node.
        node = ring.nodes[0]
        nxt = ring.successor_of(node)
        assert ring.successor(node.node_id + 1).address == nxt.address

    def test_owner_of_key_consistent_with_hash(self, ring):
        key = "R.a=42"
        owner = ring.owner_of_key(key)
        assert owner.address == ring.successor(ring.space.hash_key(key)).address

    def test_predecessor_successor_inverse(self, ring):
        for node in ring.nodes:
            assert ring.successor_of(ring.predecessor_of(node)).address == node.address

    def test_arc_lengths_cover_space(self, ring):
        total = sum(ring.arc_length_of(node) for node in ring.nodes)
        assert total == ring.space.size


class TestRouting:
    def test_route_ends_at_owner(self, ring):
        start = ring.nodes[0]
        for key in ("a", "b", "R.a=7", "zzz"):
            identifier = ring.space.hash_key(key)
            path = ring.route_path(start, identifier)
            assert path[0] is start
            assert path[-1].address == ring.successor(identifier).address

    def test_route_from_owner_is_trivial(self, ring):
        identifier = 123
        owner = ring.successor(identifier)
        assert ring.route_path(owner, identifier) == [owner]

    def test_route_length_logarithmic(self, ring):
        # With perfect fingers the path should stay within the bit width and
        # typically around log2(N).
        start = ring.nodes[0]
        lengths = []
        for i in range(64):
            path = ring.route_path(start, ring.space.hash_key(f"key-{i}"))
            lengths.append(len(path) - 1)
        assert max(lengths) <= ring.space.bits
        assert sum(lengths) / len(lengths) <= 2 * 5  # 2*log2(32)

    def test_route_progress_monotonic(self, ring):
        start = ring.nodes[3]
        identifier = ring.space.hash_key("monotone")
        path = ring.route_path(start, identifier)
        distances = [ring.space.distance(node.node_id, identifier) for node in path]
        # Every intermediate hop strictly reduces the clockwise distance to
        # the identifier; the final hop lands on the owner, which sits at or
        # just past the identifier, so it is excluded from the check.
        intermediate = distances[:-1]
        assert all(b < a for a, b in zip(intermediate, intermediate[1:]))

    def test_lookup_returns_owner_and_hops(self, ring):
        owner, hops = ring.lookup(ring.addresses[0], "some-key")
        assert owner.address == ring.owner_of_key("some-key").address
        assert hops >= 0

    def test_finger_table_size_and_contents(self, ring):
        node = ring.nodes[0]
        fingers = ring.finger_table(node)
        assert len(fingers) == ring.space.bits
        assert fingers[0].address == ring.successor(node.node_id + 1).address

    def test_finger_cache_invalidated_on_membership_change(self, ring):
        node = ring.nodes[0]
        before = ring.finger_table(node)
        ring.add_node("joiner")
        after = ring.finger_table(node)
        assert len(after) == ring.space.bits
        assert before is not after


class TestIdMovement:
    def test_move_node_changes_ownership(self, ring):
        node = ring.nodes[0]
        target = ring.nodes[10]
        predecessor = ring.predecessor_of(target)
        new_id = ring.space.midpoint(predecessor.node_id, target.node_id)
        if new_id in (predecessor.node_id, target.node_id):
            pytest.skip("arc too small for this seed")
        old_id, moved_id = ring.move_node(node.address, new_id)
        assert moved_id == new_id
        assert ring.node_by_address(node.address).node_id == new_id
        assert ring.successor(new_id).address == node.address
        assert old_id != new_id

    def test_move_to_same_position_is_noop(self, ring):
        node = ring.nodes[0]
        old_id, new_id = ring.move_node(node.address, node.node_id)
        assert old_id == new_id
