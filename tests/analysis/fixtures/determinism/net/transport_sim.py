"""Deterministic transport with a seeded violation (fixture tree).

The ``net/`` directory stays inside the ``determinism-purity`` scope even
though ``net/runtime_asyncio.py`` is exempt; this file proves the exemption
is per-file, not per-directory.
"""

import time


def stamp_delivery():
    return time.time()  # VIOLATION: sim transports must use the kernel clock
