"""Loading and parsing the source tree under analysis.

A :class:`Project` is the parsed view of one *package root* — a directory
whose layout mirrors the :mod:`repro` package (``core/``, ``net/``,
``data/`` …).  For the real tree the package root is ``src/repro`` itself;
the test suite points the analyzer at fixture trees that mimic the layout
with seeded violations.

Files that fail to parse are reported as findings of the pseudo-rule
``parse-error`` rather than crashing the run, so one broken file cannot
hide every other diagnostic.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.analysis.base import Finding, SourceFile
from repro.errors import AnalysisError

#: Directories never analyzed (caches, fixture sandboxes, VCS internals).
_SKIPPED_DIRS = {"__pycache__", ".git", ".mypy_cache", ".ruff_cache"}


def default_package_root() -> Path:
    """The ``repro`` package this analyzer ships inside (``src/repro``)."""
    return Path(__file__).resolve().parent.parent


class Project:
    """The parsed source files of one package root."""

    def __init__(self, package_root: Path) -> None:
        package_root = Path(package_root)
        if not package_root.is_dir():
            raise AnalysisError(
                f"package root {str(package_root)!r} is not a directory"
            )
        self.package_root = package_root.resolve()
        self._files: Dict[str, SourceFile] = {}
        self.parse_failures: List[Finding] = []
        self._load()

    def _load(self) -> None:
        for path in sorted(self.package_root.rglob("*.py")):
            if any(part in _SKIPPED_DIRS for part in path.parts):
                continue
            rel = path.relative_to(self.package_root).as_posix()
            text = path.read_text(encoding="utf-8")
            try:
                self._files[rel] = SourceFile.parse(rel, text)
            except SyntaxError as exc:
                self.parse_failures.append(
                    Finding(
                        rule="parse-error",
                        path=rel,
                        line=exc.lineno or 1,
                        message=f"file does not parse: {exc.msg}",
                    )
                )

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def files(self) -> Iterator[SourceFile]:
        """Every parsed file, in deterministic (sorted-path) order."""
        for rel in sorted(self._files):
            yield self._files[rel]

    def in_dirs(self, *prefixes: str) -> Iterator[SourceFile]:
        """Parsed files whose relative path starts with any of ``prefixes``."""
        for rel in sorted(self._files):
            if any(rel.startswith(prefix) for prefix in prefixes):
                yield self._files[rel]

    def get(self, rel: str) -> Optional[SourceFile]:
        """The parsed file at ``rel``, or ``None`` when absent/unparsable."""
        return self._files.get(rel)

    def __len__(self) -> int:
        return len(self._files)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Project({str(self.package_root)!r}, files={len(self._files)})"
