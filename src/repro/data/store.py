"""Per-node local tuple storage.

Every RJoin node stores tuples it receives *at the value level* so that
rewritten queries arriving later can still be matched against them
(Procedure 2 and 3 of the paper).  The attribute-level tuple table (ALTT) of
Section 4 reuses the same structure with an expiry time (see
:mod:`repro.core.altt`).

The store is a mapping ``indexing key -> list of stored tuples``.  It also
maintains aggregate counters that feed the storage-load metric of the
experimental section: the *storage load* of a node is the number of rewritten
queries plus the number of tuples that the node has to store locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple as TupleT

from repro.data.tuples import Tuple


@dataclass
class StoredTuple:
    """A tuple held in a node-local store together with bookkeeping data."""

    tuple: Tuple
    key: str
    stored_at: float

    @property
    def identity(self) -> TupleT[str, int]:
        """Identity of the underlying published tuple."""
        return self.tuple.identity


class TupleStore:
    """Key-addressed local storage for published tuples.

    The store intentionally keeps one entry per ``(key, tuple identity)``
    pair: the same publication indexed under two different keys at the same
    node occupies two slots (it costs storage twice), which matches how the
    paper counts storage load, while lookups that span several keys can
    deduplicate through :meth:`tuples_for_prefix`.
    """

    def __init__(self) -> None:
        self._by_key: Dict[str, List[StoredTuple]] = {}
        self._stored_total = 0  # cumulative number of store operations

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, key: str, tup: Tuple, now: float) -> StoredTuple:
        """Store ``tup`` under ``key`` and return the stored record."""
        record = StoredTuple(tuple=tup, key=key, stored_at=now)
        self._by_key.setdefault(key, []).append(record)
        self._stored_total += 1
        return record

    def remove_older_than(self, key: str, cutoff: float) -> int:
        """Drop tuples under ``key`` stored strictly before ``cutoff``.

        Returns the number of removed entries.  Used by the ALTT garbage
        collector and by window-based state reduction.
        """
        records = self._by_key.get(key)
        if not records:
            return 0
        kept = [r for r in records if r.stored_at >= cutoff]
        removed = len(records) - len(kept)
        if kept:
            self._by_key[key] = kept
        else:
            del self._by_key[key]
        return removed

    def remove_published_before(self, cutoff: float) -> int:
        """Drop every tuple whose publication time is strictly before ``cutoff``."""
        removed = 0
        for key in list(self._by_key.keys()):
            records = self._by_key[key]
            kept = [r for r in records if r.tuple.pub_time >= cutoff]
            removed += len(records) - len(kept)
            if kept:
                self._by_key[key] = kept
            else:
                del self._by_key[key]
        return removed

    def clear(self) -> None:
        """Remove every stored tuple (does not reset cumulative counters)."""
        self._by_key.clear()

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def tuples_for_key(self, key: str) -> List[Tuple]:
        """Return the tuples stored under exactly ``key``."""
        return [r.tuple for r in self._by_key.get(key, [])]

    def records_for_key(self, key: str) -> List[StoredTuple]:
        """Return the stored records under exactly ``key``."""
        return list(self._by_key.get(key, []))

    def tuples_for_prefix(self, prefix: str) -> List[Tuple]:
        """Return tuples stored under any key starting with ``prefix``.

        Used when a rewritten query indexed at the *attribute level* needs to
        scan every locally stored tuple of a relation-attribute pair
        regardless of the value component of the key.  Results are
        deduplicated by tuple identity.
        """
        seen: Set[TupleT[str, int]] = set()
        result: List[Tuple] = []
        for key, records in self._by_key.items():
            if not key.startswith(prefix):
                continue
            for record in records:
                if record.identity in seen:
                    continue
                seen.add(record.identity)
                result.append(record.tuple)
        return result

    def has_key(self, key: str) -> bool:
        """Return whether any tuple is stored under ``key``."""
        return key in self._by_key

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of currently stored entries (across all keys)."""
        return sum(len(records) for records in self._by_key.values())

    @property
    def cumulative_stored(self) -> int:
        """Total number of store operations performed over the node's lifetime."""
        return self._stored_total

    def keys(self) -> Iterable[str]:
        """Iterate over the indexing keys that currently hold tuples."""
        return self._by_key.keys()

    def __iter__(self) -> Iterator[StoredTuple]:
        for records in self._by_key.values():
            yield from records

    def distinct_tuples(self) -> int:
        """Number of distinct publications currently stored at this node."""
        return len({record.identity for record in self})
