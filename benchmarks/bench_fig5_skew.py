"""Figure 5 — varying the skew of the data distribution (Zipf θ).

Regenerates the per-tuple traffic cost and the ranked-node QPL / storage
distributions for θ ∈ {0.3, 0.5, 0.7, 0.9}.

Expected shape (paper): the more skewed the workload, the more joined tuples
exist, so every metric grows with θ and the most loaded node gets hotter,
while the RIC-request traffic decreases (the same values repeat, so cached
RIC information is reused more often).
"""

import pytest

from repro.experiments.figures import figure5


@pytest.mark.benchmark(group="figure5")
def test_figure5_skew(benchmark):
    result = benchmark.pedantic(figure5, rounds=1, iterations=1)
    print()
    print(result.to_text())

    qpl = result.series["qpl_per_node"]
    storage = result.series["storage_per_node"]
    max_qpl = result.series["max_node_qpl"]
    ric = result.series["ric_messages_per_node_per_tuple"]

    # Higher skew -> more work overall (compare the extremes).
    assert qpl[-1] > qpl[0]
    assert storage[-1] > storage[0]
    # The hottest node gets hotter as skew grows.
    assert max_qpl[-1] >= max_qpl[0]
    # RIC reuse dampens the growth of the RIC-request traffic: it grows
    # strictly slower than the query-processing load does (see
    # EXPERIMENTS.md for the deviation note vs. the paper's absolute
    # decrease).
    assert ric[-1] / max(ric[0], 1e-9) <= qpl[-1] / max(qpl[0], 1e-9)
