"""SQLite-backed tuple store (the ``sqlite`` backend).

A disk-capable implementation of the
:class:`~repro.data.backends.StoreBackend` contract: stored records live in
one SQLite table whose indexes make every hot operation an index scan —

* ``(relation, attribute, value)`` serves the attribute-level prefix match
  (:meth:`SqliteTupleStore.tuples_for_prefix`): canonical two-field prefixes
  resolve to an equality scan on the first two columns,
* ``(pub_time, sequence)`` and ``(sequence)`` serve the two window-expiry
  orders (:meth:`SqliteTupleStore.remove_published_before` /
  :meth:`SqliteTupleStore.remove_sequenced_before`),
* ``(key, pub_time, sequence)`` serves exact-key lookups in publication
  order without re-sorting.

Writes are *batched*: :meth:`SqliteTupleStore.add` only appends to a pending
buffer, and the buffer is flushed inside a single transaction the first time
a read or removal needs to see it.  Under the engine's batched publish path
(``RJoinEngine.publish_batch``) every tuple fan-out of one network drain
lands in one ``executemany`` per node — one transaction per batch instead of
one per record.

Tuple values are serialized with :mod:`pickle` so arbitrary Python values
round-trip exactly (the cross-backend answer-equality tests rely on this).
By default the database lives in memory (``:memory:``); pass a path to put
it on disk and study out-of-core behaviour.
"""

from __future__ import annotations

import pickle
import sqlite3
from typing import Iterable, Iterator, List, Tuple as TupleT

from repro.data.backends import (
    SEPARATOR,
    StoreBackend,
    StoredTuple,
    bucket_of,
    merge_records,
)
from repro.data.tuples import Tuple

_SCHEMA = """
CREATE TABLE records (
    id INTEGER PRIMARY KEY,
    key TEXT NOT NULL,
    relation TEXT,
    attribute TEXT,
    value TEXT,
    rel TEXT NOT NULL,
    sequence INTEGER NOT NULL,
    pub_time REAL NOT NULL,
    stored_at REAL NOT NULL,
    publisher TEXT,
    payload BLOB NOT NULL
);
CREATE INDEX idx_records_key_order ON records (key, pub_time, sequence);
CREATE INDEX idx_records_attr ON records (relation, attribute, value);
CREATE INDEX idx_records_pub ON records (pub_time, sequence);
CREATE INDEX idx_records_seq ON records (sequence);
"""

#: Column list of every record-returning SELECT, in `_record_from_row` order.
_RECORD_COLUMNS = "key, rel, sequence, pub_time, stored_at, publisher, payload"


class SqliteTupleStore(StoreBackend):
    """Key-addressed tuple storage backed by a SQLite table."""

    name = "sqlite"

    def __init__(self, path: str = ":memory:"):
        """``path`` is the database location; the default keeps it in memory."""
        self._conn = sqlite3.connect(path, isolation_level=None)
        # The store is node-local simulation state: durability across a host
        # crash buys nothing here, so trade it for write speed.
        self._conn.execute("PRAGMA synchronous = OFF")
        self._conn.execute("PRAGMA journal_mode = MEMORY")
        self._conn.executescript(_SCHEMA)
        #: INSERT parameter rows buffered until the next read/removal.
        self._pending: List[TupleT] = []
        self._size = 0
        self._stored_total = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, key: str, tup: Tuple, now: float) -> StoredTuple:
        """Store ``tup`` under ``key`` and return the stored record."""
        relation = attribute = value = None
        if bucket_of(key) is not None:
            relation, attribute, value = key.split(SEPARATOR, 2)
        self._pending.append(
            (
                key,
                relation,
                attribute,
                value,
                tup.relation,
                tup.sequence,
                tup.pub_time,
                now,
                tup.publisher,
                pickle.dumps(tup.values, protocol=pickle.HIGHEST_PROTOCOL),
            )
        )
        self._size += 1
        self._stored_total += 1
        return StoredTuple(tuple=tup, key=key, stored_at=now)

    def flush(self) -> None:
        """Write the pending buffer in one transaction."""
        if not self._pending:
            return
        self._conn.execute("BEGIN")
        self._conn.executemany(
            "INSERT INTO records (key, relation, attribute, value, rel, "
            "sequence, pub_time, stored_at, publisher, payload) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            self._pending,
        )
        self._conn.execute("COMMIT")
        self._pending.clear()

    def _delete(self, sql: str, parameters: TupleT) -> int:
        """Run a DELETE, keep the size counter in step, return the row count."""
        self.flush()
        removed = self._conn.execute(sql, parameters).rowcount
        self._size -= removed
        return removed

    def remove_older_than(self, key: str, cutoff: float) -> int:
        """Drop tuples under ``key`` stored strictly before ``cutoff``."""
        return self._delete(
            "DELETE FROM records WHERE key = ? AND stored_at < ?", (key, cutoff)
        )

    def remove_published_before(self, cutoff: float) -> int:
        """Drop every tuple published strictly before ``cutoff``.

        An index range-scan on ``(pub_time, sequence)`` — no Python-side
        bookkeeping is needed because the index *is* the expiry order.
        """
        return self._delete("DELETE FROM records WHERE pub_time < ?", (cutoff,))

    def remove_sequenced_before(self, cutoff: float) -> int:
        """Drop every tuple whose sequence number is strictly below ``cutoff``."""
        return self._delete("DELETE FROM records WHERE sequence < ?", (cutoff,))

    def remove_key(self, key: str) -> List[StoredTuple]:
        """Remove and return every record stored under ``key`` (re-homing)."""
        records = self.records_for_key(key)
        if records:
            self._delete("DELETE FROM records WHERE key = ?", (key,))
        return records

    def clear(self) -> None:
        """Remove every stored tuple (does not reset cumulative counters)."""
        self._pending.clear()
        self._conn.execute("DELETE FROM records")
        self._size = 0

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @staticmethod
    def _record_from_row(row: TupleT) -> StoredTuple:
        key, rel, sequence, pub_time, stored_at, publisher, payload = row
        tup = Tuple(
            relation=rel,
            values=pickle.loads(payload),
            pub_time=pub_time,
            sequence=sequence,
            publisher=publisher,
        )
        return StoredTuple(tuple=tup, key=key, stored_at=stored_at)

    def _select_records(self, where: str, parameters: TupleT) -> List[StoredTuple]:
        self.flush()
        rows = self._conn.execute(
            f"SELECT {_RECORD_COLUMNS} FROM records WHERE {where} "
            "ORDER BY pub_time, sequence",
            parameters,
        )
        return [self._record_from_row(row) for row in rows]

    def tuples_for_key(self, key: str) -> List[Tuple]:
        """The tuples stored under exactly ``key``, in publication order."""
        return [record.tuple for record in self.records_for_key(key)]

    def records_for_key(self, key: str) -> List[StoredTuple]:
        """The stored records under exactly ``key``, in publication order."""
        return self._select_records("key = ?", (key,))

    def tuples_for_prefix(self, prefix: str) -> List[Tuple]:
        """Tuples under any key starting with ``prefix`` (deduplicated, ordered).

        Canonical attribute-level prefixes (``relation SEP attribute SEP``)
        become an equality scan on the ``(relation, attribute, value)``
        index; arbitrary prefixes fall back to a table scan.
        """
        bucket = bucket_of(prefix)
        if bucket is not None and len(bucket) == len(prefix):
            relation, attribute = prefix.split(SEPARATOR)[:2]
            records = self._select_records(
                "relation = ? AND attribute = ?", (relation, attribute)
            )
        else:
            records = self._select_records(
                "substr(key, 1, ?) = ?", (len(prefix), prefix)
            )
        # The SELECT already returns publication order; merge_records only
        # contributes the identity deduplication here.
        return merge_records([records])

    def has_key(self, key: str) -> bool:
        """Return whether any tuple is stored under ``key``."""
        self.flush()
        row = self._conn.execute(
            "SELECT 1 FROM records WHERE key = ? LIMIT 1", (key,)
        ).fetchone()
        return row is not None

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of currently stored entries (across all keys); O(1)."""
        return self._size

    @property
    def cumulative_stored(self) -> int:
        """Total number of store operations performed over the node's lifetime."""
        return self._stored_total

    def keys(self) -> Iterable[str]:
        """The indexing keys that currently hold tuples."""
        self.flush()
        return [
            row[0]
            for row in self._conn.execute("SELECT DISTINCT key FROM records")
        ]

    def __iter__(self) -> Iterator[StoredTuple]:
        self.flush()
        rows = self._conn.execute(
            f"SELECT {_RECORD_COLUMNS} FROM records ORDER BY key, pub_time, sequence"
        )
        for row in rows:
            yield self._record_from_row(row)

    def distinct_tuples(self) -> int:
        """Number of distinct publications currently stored at this node."""
        self.flush()
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM (SELECT DISTINCT rel, sequence FROM records)"
        ).fetchone()
        return count

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying database connection."""
        self._conn.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SqliteTupleStore(size={self._size}, pending={len(self._pending)})"
