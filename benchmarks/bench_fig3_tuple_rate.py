"""Figure 3 — effect of increasing the number of incoming tuples.

Regenerates the per-tuple traffic cost (total vs RIC-request), and the
ranked-node query-processing / storage load distributions of RJoin as the
number of incoming tuples grows.

Expected shape (paper): the per-tuple cost grows slowly (RIC information is
cached and piggy-backed, so its share shrinks), and more nodes participate in
query processing as more distinct values spread rewritten queries around the
network.
"""

import pytest

from repro.experiments.figures import figure3


@pytest.mark.benchmark(group="figure3")
def test_figure3_tuple_rate(benchmark):
    result = benchmark.pedantic(figure3, rounds=1, iterations=1)
    print()
    print(result.to_text())

    counts = result.x_values
    smallest, largest = str(counts[0]), str(counts[-1])

    # Total load grows with the number of tuples.
    assert sum(result.distributions[f"qpl_ranked_{largest}"]) >= sum(
        result.distributions[f"qpl_ranked_{smallest}"]
    )
    assert sum(result.distributions[f"storage_ranked_{largest}"]) >= sum(
        result.distributions[f"storage_ranked_{smallest}"]
    )
    # More tuples -> more participating nodes (the distribution flattens).
    participation = result.series["participating_nodes"]
    assert participation[-1] >= participation[0]
    # RIC traffic is only a part of the total per-tuple traffic.
    for total, ric in zip(
        result.series["messages_per_node_per_tuple"],
        result.series["ric_messages_per_node_per_tuple"],
    ):
        assert ric <= total
