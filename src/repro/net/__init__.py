"""Discrete-event network simulation substrate.

The paper's evaluation runs many Chord nodes inside a single process and
measures message counts, query-processing load and storage load (Section 8).
This subpackage provides the simulation kernel used for that purpose:

* :class:`~repro.net.simulator.SimulationKernel` — a priority-queue
  discrete-event scheduler with a global clock,
* :class:`~repro.net.messages.Message` / :class:`~repro.net.messages.Envelope`
  — the base message abstraction and its routing metadata,
* :class:`~repro.net.stats.TrafficStats` — per-node accounting of messages
  sent and routed (the paper's definition of network traffic).

The model follows the relaxed asynchronous system model of Section 2: there
is a known upper bound on message transmission delay; a message sent at time
``t`` over ``h`` hops is delivered at ``t + h * hop_delay``.
"""

from repro.net.messages import Envelope, Message
from repro.net.simulator import SimulationKernel
from repro.net.stats import TrafficStats

__all__ = ["Envelope", "Message", "SimulationKernel", "TrafficStats"]
