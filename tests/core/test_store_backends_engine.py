"""Cross-backend equivalence at the engine level.

The tuple-store backend is an implementation detail of node-local state, so
swapping it must never change *what* the system computes: the bag of
answers, the stored-state aggregates and the re-homing behaviour under
membership change all have to match the default ``memory`` backend — and,
on library-default configurations, the centralised reference oracle.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.core.reference import ReferenceEngine
from repro.data.backends import BACKEND_NAMES
from repro.sql.ast import WindowSpec
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

ALTERNATIVE_BACKENDS = tuple(name for name in BACKEND_NAMES if name != "memory")


def run_workload(backend: str, window: WindowSpec, seed: int = 11):
    """One window-churn-style run (GC pressure on) on the given backend."""
    spec = WorkloadSpec(
        num_relations=4,
        attributes_per_relation=3,
        value_domain=4,
        join_arity=3,
        window=window,
        seed=seed,
    )
    generator = WorkloadGenerator(spec)
    config = RJoinConfig(
        num_nodes=16,
        seed=seed,
        store_backend=backend,
        tuple_gc_window=window,
        gc_every_tuples=10,
    )
    engine = RJoinEngine(config)
    engine.register_catalog(generator.catalog)
    reference = ReferenceEngine(generator.catalog)
    handles = []
    for query in generator.generate_queries(6):
        handle = engine.submit(query)
        reference.submit(
            query, query_id=handle.query_id, insertion_time=handle.insertion_time
        )
        handles.append(handle)
    for generated in generator.generate_tuples(60):
        tup = engine.publish(generated.relation, generated.values)
        reference.publish_tuple(tup)
    return engine, reference, handles


def as_bag(values) -> List[str]:
    return sorted(repr(v) for v in values)


class TestAnswerEquivalence:
    @pytest.mark.parametrize("backend", ALTERNATIVE_BACKENDS)
    @pytest.mark.parametrize("window_size", [10, 25])
    def test_backend_answers_match_memory_and_reference(
        self, backend, window_size
    ):
        """The window-churn grid produces identical answers on every backend."""
        window = WindowSpec(size=float(window_size), mode="tuples")
        memory_engine, memory_ref, memory_handles = run_workload("memory", window)
        engine, reference, handles = run_workload(backend, window)
        assert len(handles) == len(memory_handles)
        for handle, memory_handle in zip(handles, memory_handles):
            bag = as_bag(handle.values())
            assert bag == as_bag(memory_handle.values())
            assert bag == as_bag(reference.answers(handle.query_id))

    @pytest.mark.parametrize("backend", ALTERNATIVE_BACKENDS)
    def test_stored_state_aggregates_match_memory(self, backend):
        window = WindowSpec(size=25.0, mode="tuples")
        memory_engine, _, _ = run_workload("memory", window)
        engine, _, _ = run_workload(backend, window)
        for address, node in engine.nodes.items():
            memory_node = memory_engine.nodes[address]
            assert len(node.tuple_store) == len(memory_node.tuple_store)
            assert (
                node.tuple_store.distinct_tuples()
                == memory_node.tuple_store.distinct_tuples()
            )
        assert engine.metrics_summary() == memory_engine.metrics_summary()


class TestMembershipAcrossBackends:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_graceful_membership_conserves_state(self, backend):
        """Join + graceful leave re-home records into the survivors' backends."""
        window = WindowSpec(size=50.0, mode="tuples")
        engine, _, handles = run_workload(backend, window)
        stored_before = sum(len(n.tuple_store) for n in engine.nodes.values())
        engine.add_node()
        engine.remove_node(graceful=True)
        stored_after = sum(len(n.tuple_store) for n in engine.nodes.values())
        assert stored_after == stored_before
        assert engine.churn.records_lost == 0
        # The re-homed records live in stores of the engine's backend kind.
        for node in engine.nodes.values():
            assert node.tuple_store.name == backend

    @pytest.mark.parametrize("backend", ALTERNATIVE_BACKENDS)
    def test_crash_accounting_matches_memory(self, backend):
        window = WindowSpec(size=50.0, mode="tuples")
        memory_engine, _, _ = run_workload("memory", window)
        engine, _, _ = run_workload(backend, window)
        memory_engine.crash_node("node-3")
        engine.crash_node("node-3")
        assert engine.churn.records_lost == memory_engine.churn.records_lost
        assert engine.churn.bytes_lost == memory_engine.churn.bytes_lost
