"""Relational data model used by the RJoin engine.

The paper assumes the relational data model: data is inserted into the
network as tuples of append-only relations (Section 2).  This subpackage
provides:

* :class:`~repro.data.schema.RelationSchema` and
  :class:`~repro.data.schema.Catalog` — relation schemas and the schema
  catalog shared by publishers and queriers,
* :class:`~repro.data.tuples.Tuple` — an immutable published tuple carrying
  its publication time and per-relation sequence number,
* :class:`~repro.data.backends.StoreBackend` — the contract of the per-node
  local tuple storage, with three implementations behind
  :func:`~repro.data.backends.make_store`:
  :class:`~repro.data.store.TupleStore` (``memory``, the default),
  :class:`~repro.data.sqlite_store.SqliteTupleStore` (``sqlite``) and
  :class:`~repro.data.append_log.AppendLogTupleStore` (``append-log``).
"""

from repro.data.backends import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    StoreBackend,
    StoredTuple,
    make_store,
)
from repro.data.schema import AttributeRef, Catalog, RelationSchema
from repro.data.store import TupleStore
from repro.data.tuples import Tuple

__all__ = [
    "AttributeRef",
    "BACKEND_NAMES",
    "Catalog",
    "DEFAULT_BACKEND",
    "RelationSchema",
    "StoreBackend",
    "StoredTuple",
    "Tuple",
    "TupleStore",
    "make_store",
]
