"""Query lifecycle subsystem: continuous-query removal and owner failover.

The invariants checked here are the contract of
:class:`repro.core.lifecycle.QueryLifecycleManager`:

* ``remove_query`` leaves zero orphaned records on any node — no stored
  input-query record, rewritten query, pending RIC round trip or handle
  registration of the removed query survives anywhere, across all four
  indexing strategies and all three store backends,
* after removing *all* queries the network is fully vacuumed: every node's
  tuple store, ALTT, query tables and candidate table are empty,
* removal is mirrored by :class:`~repro.core.reference.ReferenceEngine`, so
  oracle equality holds across removals and re-submissions,
* owner failover re-registers a departed owner's queries on its ring
  successor (which already holds the replicated
  :class:`~repro.core.lifecycle.HandleRegistration`), re-routes in-flight
  answers and loses no post-crash answers; membership changes re-home
  registrations like any other state kind.
"""

import pytest

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.core.reference import ReferenceEngine
from repro.data.backends import BACKEND_NAMES
from repro.errors import EngineError
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

STRATEGIES = ("rjoin", "random", "worst", "first")


def build(seed=5, queries=6, tuples=30, mirror=False, **overrides):
    spec = WorkloadSpec(
        num_relations=4,
        attributes_per_relation=3,
        value_domain=4,
        join_arity=3,
        seed=seed,
    )
    generator = WorkloadGenerator(spec)
    params = dict(num_nodes=16, seed=seed)
    params.update(overrides)
    engine = RJoinEngine(RJoinConfig(**params))
    engine.register_catalog(generator.catalog)
    reference = ReferenceEngine(generator.catalog) if mirror else None
    handles = []
    for query in generator.generate_queries(queries):
        handle = engine.submit(query)
        handles.append(handle)
        if reference is not None:
            reference.submit(
                query,
                query_id=handle.query_id,
                insertion_time=handle.insertion_time,
            )
    for generated in generator.generate_tuples(tuples):
        tup = engine.publish(generated.relation, generated.values)
        if reference is not None:
            reference.publish_tuple(tup)
    return generator, engine, reference, handles


def records_for_query(engine, query_id):
    """Every record of ``query_id`` still present anywhere in the network."""
    found = []
    for node in engine.nodes.values():
        for table in (node.input_queries, node.rewritten_queries):
            for _, records in table.items():
                for record in records:
                    if record.state.query_id == query_id:
                        found.append(record)
        for op in node._pending_ric.values():
            if op.state.query_id == query_id:
                found.append(op)
        if query_id in node.registrations:
            found.append(node.registrations[query_id])
    return found


def assert_answer_bags_match(engine_handles, reference):
    for handle in engine_handles:
        got = sorted(repr(v) for v in handle.values())
        expected = sorted(repr(v) for v in reference.answers(handle.query_id))
        assert got == expected, handle.query_id


def assert_registration_invariant(engine):
    """Every active query's registration lives on its owner's successor."""
    placed = {}
    for node in engine.nodes.values():
        for query_id, registration in node.registrations.items():
            assert query_id not in placed, f"{query_id} replicated twice"
            placed[query_id] = (node.address, registration)
    for query_id, handle in engine.handles.items():
        home = engine.lifecycle.registration_home(query_id)
        if home is None:
            continue
        assert query_id in placed, query_id
        address, registration = placed[query_id]
        assert address == home
        assert registration.owner == handle.owner


class TestRemoveQuery:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_remove_leaves_zero_orphans(self, strategy, backend):
        _, engine, _, handles = build(strategy=strategy, store_backend=backend)
        victim = handles[0]
        assert records_for_query(engine, victim.query_id)
        engine.remove_query(victim.query_id)
        assert records_for_query(engine, victim.query_id) == []
        assert victim.query_id not in engine.handles
        assert engine.churn.queries_removed == 1
        assert engine.churn.orphaned_state_records == 0

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_remove_all_queries_vacuums_every_node(self, strategy, backend):
        _, engine, _, handles = build(strategy=strategy, store_backend=backend)
        for handle in handles:
            engine.remove_query(handle.query_id)
        for node in engine.nodes.values():
            assert len(node.input_queries) == 0
            assert len(node.rewritten_queries) == 0
            assert len(node.tuple_store) == 0
            assert len(node.altt) == 0
            assert len(node.candidate_table) == 0
            assert not node._pending_ric
            assert not node.registrations
        summary = engine.metrics_summary()
        assert summary["queries_removed"] == len(handles)
        assert summary["active_queries"] == 0
        assert summary["orphaned_state_records"] == 0
        assert summary["records_vacuumed"] > 0
        # current-storage accounting matches the (empty) live state
        assert engine.loads.total_current_storage == 0

    def test_remove_keeps_delivered_answers(self):
        _, engine, _, handles = build(queries=8, tuples=40)
        total_before = engine.total_answers
        victim = max(handles, key=lambda handle: handle.count)
        answers_before = victim.count
        engine.remove_query(victim.query_id)
        assert victim.count == answers_before  # handle history untouched
        assert engine.total_answers == total_before
        assert engine.metrics_summary()["answers"] == total_before

    def test_remove_unknown_query_raises(self):
        _, engine, _, _ = build(queries=1, tuples=0)
        with pytest.raises(EngineError):
            engine.remove_query("no-such-query")

    def test_double_remove_raises(self):
        _, engine, _, handles = build(queries=2, tuples=5)
        engine.remove_query(handles[0].query_id)
        with pytest.raises(EngineError):
            engine.remove_query(handles[0].query_id)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_removal_mirrored_in_reference(self, strategy):
        generator, engine, reference, handles = build(
            strategy=strategy, mirror=True, queries=6, tuples=25
        )
        removed = handles[1]
        engine.remove_query(removed.query_id)
        reference.remove_query(removed.query_id)
        # keep publishing: the removed query gains nothing, survivors stay
        # in lockstep with the oracle
        for generated in generator.generate_tuples(25):
            tup = engine.publish(generated.relation, generated.values)
            reference.publish_tuple(tup)
        assert_answer_bags_match(handles, reference)
        assert records_for_query(engine, removed.query_id) == []
        assert engine.churn.orphaned_state_records == 0

    def test_remove_then_resubmit_matches_fresh_submit(self):
        """A removed-and-resubmitted query answers exactly like a fresh one."""
        generator, engine, reference, handles = build(
            mirror=True, queries=4, tuples=20
        )
        victim = handles[0]
        engine.remove_query(victim.query_id)
        reference.remove_query(victim.query_id)
        fresh = engine.submit(victim.query)
        reference.submit(
            victim.query,
            query_id=fresh.query_id,
            insertion_time=fresh.insertion_time,
        )
        handles[0] = fresh
        for generated in generator.generate_tuples(25):
            tup = engine.publish(generated.relation, generated.values)
            reference.publish_tuple(tup)
        assert_answer_bags_match(handles, reference)

    def test_no_resurrection_after_continued_publishing(self):
        generator, engine, _, handles = build(queries=6, tuples=20)
        victim = handles[0]
        engine.remove_query(victim.query_id)
        for generated in generator.generate_tuples(30):
            engine.publish(generated.relation, generated.values)
        assert records_for_query(engine, victim.query_id) == []
        assert engine.churn.orphaned_state_records == 0
        # retired handles received nothing new
        assert engine.metrics_summary()["queries_removed"] == 1

    def test_retraction_uses_real_messages(self):
        _, engine, _, handles = build(queries=3, tuples=10)
        messages_before = engine.traffic.total_messages
        engine.remove_query(handles[0].query_id)
        # one direct transmission per *other* live node (the origin's own
        # copy is a local delivery and costs nothing)
        assert (
            engine.traffic.total_messages - messages_before
            == len(engine.ring) - 1
        )


class TestOwnerFailover:
    def test_registrations_replicated_on_submit(self):
        _, engine, _, _ = build(queries=6, tuples=10)
        assert_registration_invariant(engine)

    def test_owner_crash_reregisters_on_successor(self):
        _, engine, _, handles = build(queries=6, tuples=15)
        victim_owner = handles[0].owner
        owned = engine.lifecycle.queries_owned_by(victim_owner)
        assert owned
        chord_node = engine.ring.node_by_address(victim_owner)
        successor = engine.ring.successor_of(chord_node).address
        engine.crash_node(victim_owner)
        for query_id in owned:
            assert engine.handles[query_id].owner == successor
        assert engine.churn.failover_reregistrations == len(owned)
        assert_registration_invariant(engine)

    def test_graceful_leave_reregisters_too(self):
        _, engine, _, handles = build(queries=6, tuples=15)
        victim_owner = handles[0].owner
        owned = engine.lifecycle.queries_owned_by(victim_owner)
        engine.remove_node(victim_owner, graceful=True)
        for query_id in owned:
            assert engine.handles[query_id].owner != victim_owner
        assert engine.churn.failover_reregistrations == len(owned)
        assert_registration_invariant(engine)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_owner_crash_loses_no_post_crash_answers(self, strategy):
        """After crashing an owner with empty local state, the surviving
        handles (including the failed-over ones) keep matching the oracle —
        the post-crash answer bag equals a never-crashed run's."""
        spec = WorkloadSpec(
            num_relations=4,
            attributes_per_relation=3,
            value_domain=3,
            join_arity=3,
            seed=31,
        )
        generator = WorkloadGenerator(spec)
        engine = RJoinEngine(
            RJoinConfig(num_nodes=24, seed=31, strategy=strategy)
        )
        engine.register_catalog(generator.catalog)
        reference = ReferenceEngine(generator.catalog)
        # Owner by construction without key-range state: a node whose arc is
        # a single identifier (predecessor's id + 1) owns essentially no
        # keys, so crashing it destroys only its ownership role — the state
        # loss the reference cannot model stays zero and the post-crash
        # answer bag must equal a never-crashed run's (= the oracle's).
        anchor = engine.ring.nodes[0]
        victim = engine.add_node(node_id=(anchor.node_id + 1) % (2**engine.space.bits))
        handles = []
        for query in generator.generate_queries(6):
            handle = engine.submit(query, owner=victim)
            reference.submit(
                query,
                query_id=handle.query_id,
                insertion_time=handle.insertion_time,
            )
            handles.append(handle)
        for generated in generator.generate_tuples(20):
            tup = engine.publish(generated.relation, generated.values)
            reference.publish_tuple(tup)
        node = engine.nodes[victim]
        assert (
            len(node.input_queries)
            + len(node.rewritten_queries)
            + len(node.tuple_store)
            + len(node.altt)
            == 0
        ), "the single-identifier arc unexpectedly attracted state"
        owned = engine.lifecycle.queries_owned_by(victim)
        assert owned
        engine.crash_node(victim)
        assert engine.churn.failover_reregistrations >= len(owned)
        for generated in generator.generate_tuples(30):
            tup = engine.publish(generated.relation, generated.values)
            reference.publish_tuple(tup)
        assert_answer_bags_match(handles, reference)

    def test_in_flight_answers_reroute_to_survivor(self):
        from repro.core.protocol import AnswerMessage

        generator, engine, _, handles = build(queries=8, tuples=30)
        by_id = {handle.query_id: handle for handle in handles}
        # Step the kernel by hand until an answer is in flight towards a
        # (remote) owner, then crash that owner before the delivery fires.
        target = None
        for generated in generator.generate_tuples(60):
            engine.publish(generated.relation, generated.values, process=False)
            while engine.kernel.pending_events:
                pending = [
                    event.args[0]
                    for event in engine.kernel._heap
                    if not event.cancelled
                    and not event.fired
                    and event.args
                    and hasattr(event.args[0], "message")
                    and isinstance(event.args[0].message, AnswerMessage)
                    and event.args[0].sender != event.args[0].destination
                    and event.args[0].destination in engine.nodes
                ]
                if pending:
                    target = pending[0]
                    break
                engine.kernel.step()
            if target is not None:
                break
        assert target is not None, "workload produced no in-flight answer"
        owner = target.destination
        handle = by_id[target.message.query_id]
        assert handle.owner == owner
        delivered_before = handle.count
        engine.crash_node(owner)
        assert engine.churn.answers_rerouted > 0
        engine.run()
        # the re-routed answer reached the failed-over handle, not the void
        assert handle.count > delivered_before
        assert handle.owner != owner
        summary = engine.metrics_summary()
        assert summary["answers_rerouted"] == engine.churn.answers_rerouted

    def test_failover_disabled_drops_answers(self):
        generator, engine, _, handles = build(
            queries=6, tuples=15, owner_failover=False
        )
        # no registrations are replicated at all
        assert all(not node.registrations for node in engine.nodes.values())
        victim = handles[0]
        owner_before = victim.owner
        count_before = victim.count
        dropped_before = engine.api.dropped_messages
        engine.crash_node(owner_before)
        assert victim.owner == owner_before  # nothing re-registered
        assert engine.churn.failover_reregistrations == 0
        for generated in generator.generate_tuples(25):
            engine.publish(generated.relation, generated.values)
        # answers produced for the orphaned handle were dropped, not delivered
        assert victim.count == count_before
        assert engine.api.dropped_messages >= dropped_before

    def test_remove_query_with_dead_owner_and_failover_disabled(self):
        _, engine, _, handles = build(queries=6, tuples=15, owner_failover=False)
        victim = handles[0]
        engine.crash_node(victim.owner)
        engine.remove_query(victim.query_id)  # a live node drives retraction
        assert records_for_query(engine, victim.query_id) == []


class TestRegistrationRehoming:
    def test_joins_keep_registration_invariant(self):
        _, engine, _, _ = build(queries=8, tuples=15)
        for _ in range(5):
            engine.add_node()
            assert_registration_invariant(engine)

    def test_replica_crash_repairs_registrations(self):
        _, engine, _, handles = build(queries=6, tuples=15)
        # crash a node that holds a replica but owns no query itself
        holder = next(
            node.address
            for node in engine.nodes.values()
            if node.registrations
            and not engine.lifecycle.queries_owned_by(node.address)
        )
        engine.crash_node(holder)
        assert_registration_invariant(engine)
        # the destroyed replicas were re-created out-of-band, and measured
        assert engine.metrics_summary()["replica_repairs"] > 0

    def test_replica_graceful_leave_rehomes_registrations(self):
        _, engine, _, _ = build(queries=6, tuples=15)
        holder = next(
            node.address
            for node in engine.nodes.values()
            if node.registrations
            and not engine.lifecycle.queries_owned_by(node.address)
        )
        engine.remove_node(holder, graceful=True)
        assert_registration_invariant(engine)

    def test_id_movement_keeps_registration_invariant(self):
        _, engine, _, _ = build(
            queries=8,
            tuples=15,
            id_movement=True,
            rebalance_every_tuples=10_000,
        )
        engine.rebalance()
        assert_registration_invariant(engine)

    def test_mixed_membership_sequence_keeps_invariant(self):
        generator, engine, _, _ = build(queries=8, tuples=20)
        engine.add_node()
        engine.remove_node()
        engine.crash_node()
        engine.add_node()
        assert_registration_invariant(engine)
        for generated in generator.generate_tuples(10):
            engine.publish(generated.relation, generated.values)
        assert_registration_invariant(engine)

    def test_watermark_synced_on_failover(self):
        _, engine, _, handles = build(queries=6, tuples=40)
        victim = max(handles, key=lambda handle: handle.count)
        if victim.count == 0:
            pytest.skip("workload produced no answers to watermark")
        owner = victim.owner
        engine.crash_node(owner)
        registration = next(
            node.registrations[victim.query_id]
            for node in engine.nodes.values()
            if victim.query_id in node.registrations
        )
        assert registration.watermark == victim.count
        assert registration.owner == victim.owner
