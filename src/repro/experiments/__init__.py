"""Experiment harness reproducing the paper's evaluation (Section 8).

* :mod:`repro.experiments.config` — experiment parameters (network size,
  workload, strategy, checkpoints) with the paper-scale and the reduced
  default-scale presets,
* :mod:`repro.experiments.runner` — runs one experiment end to end on the
  RJoin engine and collects every metric series the figures need,
* :mod:`repro.experiments.figures` — one function per figure (Figures 2–9),
  each returning a :class:`~repro.experiments.figures.FigureResult` with the
  same series the paper plots.
"""

from repro.experiments.config import ExperimentConfig, is_full_scale
from repro.experiments.figures import (
    FigureResult,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
)
from repro.experiments.runner import ExperimentResult, run_experiment

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "FigureResult",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "is_full_scale",
    "run_experiment",
]
