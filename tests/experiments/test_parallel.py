"""Tests for the parallel grid runner (tiny cells, real processes)."""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import (
    AGGREGATE_FILENAME,
    cell_path,
    load_aggregate,
    run_cell,
    run_grid,
)
from repro.experiments.scenarios import Scenario, Variant
from repro.metrics.serialize import RESULT_SCHEMA_VERSION

TINY_BASE = ExperimentConfig(
    name="tiny", num_nodes=16, num_queries=10, num_tuples=8, warmup_tuples=0
)


def tiny_scenario(name="tiny-sweep"):
    return Scenario(
        name=name,
        description="grid-runner test scenario",
        axis="zipf_theta",
        default_base=TINY_BASE,
        default_variants=(
            Variant(label="theta=0.3", overrides={"zipf_theta": 0.3}),
            Variant(label="theta=0.9", overrides={"zipf_theta": 0.9}),
        ),
        seeds=(1, 2),
    )


class TestRunCell:
    def test_payload_shape(self):
        cell = tiny_scenario().cells(seeds=[1])[0]
        payload = run_cell(cell)
        assert payload["schema_version"] == RESULT_SCHEMA_VERSION
        assert payload["cell"]["cell_id"] == cell.cell_id
        assert payload["result"]["summary"]["published_tuples"] == 8
        assert payload["elapsed_seconds"] > 0
        json.dumps(payload)  # must be JSON-serializable end to end


class TestRunGrid:
    def test_serial_grid_writes_cell_files_and_aggregate(self, tmp_path):
        scenario = tiny_scenario()
        report = run_grid(scenario, tmp_path, workers=1)
        assert len(report.outcomes) == 4
        assert report.computed == 4 and report.cached == 0
        for outcome in report.outcomes:
            assert outcome.path.is_file()
            data = json.loads(outcome.path.read_text())
            assert data["cell"]["scenario"] == scenario.name
        aggregate = json.loads(
            (tmp_path / scenario.name / AGGREGATE_FILENAME).read_text()
        )
        assert aggregate["cells"] == 4
        assert len(aggregate["groups"]) == 2  # one per variant

    def test_parallel_matches_serial(self, tmp_path):
        scenario = tiny_scenario()
        serial = run_grid(scenario, tmp_path / "serial", workers=1)
        parallel = run_grid(scenario, tmp_path / "parallel", workers=2)
        serial_summaries = {
            outcome.cell.cell_id: outcome.summary for outcome in serial.outcomes
        }
        parallel_summaries = {
            outcome.cell.cell_id: outcome.summary for outcome in parallel.outcomes
        }
        assert serial_summaries == parallel_summaries

    def test_aggregate_mean_stddev_across_seeds(self, tmp_path):
        scenario = tiny_scenario()
        report = run_grid(scenario, tmp_path, workers=1)
        group = report.groups()[0]
        assert group["seeds"] == [1, 2]
        stats = group["summary"]["total_messages"]
        per_seed = [
            outcome.summary["total_messages"]
            for outcome in report.outcomes
            if outcome.cell.variant == group["variant"]
        ]
        assert stats["count"] == 2
        assert stats["mean"] == pytest.approx(sum(per_seed) / 2)
        assert stats["min"] <= stats["mean"] <= stats["max"]

    def test_resume_skips_completed_cells(self, tmp_path):
        scenario = tiny_scenario()
        first = run_grid(scenario, tmp_path, workers=1)
        assert first.computed == 4
        second = run_grid(scenario, tmp_path, workers=1)
        assert second.computed == 0 and second.cached == 4

    def test_resume_after_interruption_recomputes_only_missing(self, tmp_path):
        scenario = tiny_scenario()
        run_grid(scenario, tmp_path, workers=1)
        # Simulate an interrupted sweep: one checkpoint is missing, one is a
        # truncated partial write.
        cells = scenario.cells()
        cell_path(tmp_path / scenario.name, cells[0]).unlink()
        cell_path(tmp_path / scenario.name, cells[1]).write_text("{\"trunc")
        resumed = run_grid(scenario, tmp_path, workers=1)
        assert resumed.computed == 2 and resumed.cached == 2

    def test_stale_schema_version_is_recomputed(self, tmp_path):
        scenario = tiny_scenario()
        run_grid(scenario, tmp_path, workers=1)
        cells = scenario.cells()
        path = cell_path(tmp_path / scenario.name, cells[0])
        payload = json.loads(path.read_text())
        payload["schema_version"] = RESULT_SCHEMA_VERSION - 1
        path.write_text(json.dumps(payload))
        resumed = run_grid(scenario, tmp_path, workers=1)
        assert resumed.computed == 1 and resumed.cached == 3

    def test_changed_config_invalidates_checkpoint(self, tmp_path):
        """Overrides change the resolved config without changing the cell id;
        stale checkpoints must be recomputed, not reused."""
        scenario = tiny_scenario()
        run_grid(scenario, tmp_path, workers=1)
        changed = run_grid(
            scenario, tmp_path, workers=1, overrides={"num_nodes": 24}
        )
        assert changed.computed == 4 and changed.cached == 0
        assert all(
            outcome.summary["nodes"] == 24.0 for outcome in changed.outcomes
        )
        # The original grid's checkpoints were overwritten by the new config,
        # so re-running the original recomputes again.
        original = run_grid(scenario, tmp_path, workers=1)
        assert original.computed == 4

    def test_non_dict_checkpoint_json_is_recomputed(self, tmp_path):
        scenario = tiny_scenario()
        run_grid(scenario, tmp_path, workers=1)
        cells = scenario.cells()
        cell_path(tmp_path / scenario.name, cells[0]).write_text("[1, 2]")
        cell_path(tmp_path / scenario.name, cells[1]).write_text(
            json.dumps({"schema_version": RESULT_SCHEMA_VERSION, "cell": 5})
        )
        resumed = run_grid(scenario, tmp_path, workers=1)
        assert resumed.computed == 2 and resumed.cached == 2

    def test_no_resume_recomputes_everything(self, tmp_path):
        scenario = tiny_scenario()
        run_grid(scenario, tmp_path, workers=1)
        fresh = run_grid(scenario, tmp_path, workers=1, resume=False)
        assert fresh.computed == 4

    def test_registered_scenario_by_name_with_overrides(self, tmp_path):
        report = run_grid(
            "skew-sweep",
            tmp_path,
            workers=1,
            seeds=[3],
            overrides={
                "num_nodes": 16,
                "num_queries": 8,
                "num_tuples": 6,
                "warmup_tuples": 0,
            },
        )
        assert report.scenario == "skew-sweep"
        assert len(report.outcomes) == 5
        assert all(
            outcome.summary["published_tuples"] == 6
            for outcome in report.outcomes
        )

    def test_progress_callback_sees_every_cell(self, tmp_path):
        seen = []
        run_grid(tiny_scenario(), tmp_path, workers=1, progress=seen.append)
        assert len(seen) == 4

    def test_invalid_workers_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            run_grid(tiny_scenario(), tmp_path, workers=-1)


class TestLoadAggregate:
    def test_round_trip(self, tmp_path):
        scenario = tiny_scenario()
        run_grid(scenario, tmp_path, workers=1)
        aggregate = load_aggregate(tmp_path, scenario.name)
        assert aggregate["scenario"] == scenario.name

    def test_missing_aggregate_raises(self, tmp_path):
        with pytest.raises(ExperimentError, match="no aggregate"):
            load_aggregate(tmp_path, "never-ran")
