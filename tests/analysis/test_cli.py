"""CLI contract of ``python -m repro.analysis``: exit codes and formats."""

from __future__ import annotations

import json

from repro.analysis.cli import main
from repro.analysis.rules import ALL_RULES

from tests.analysis.conftest import FIXTURES

DETERMINISM = str(FIXTURES / "determinism")


class TestExitCodes:
    def test_findings_exit_one(self, capsys):
        assert main(["check", DETERMINISM]) == 1
        out = capsys.readouterr().out
        assert "[determinism-purity]" in out

    def test_clean_tree_exits_zero(self, capsys, tmp_path):
        clean = tmp_path / "pkg"
        (clean / "core").mkdir(parents=True)
        (clean / "core" / "ok.py").write_text("X: int = 1\n")
        assert main(["check", str(clean)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["check", DETERMINISM, "--rules", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_tree_exits_two(self, capsys, tmp_path):
        assert main(["check", str(tmp_path / "absent")]) == 2
        assert "not a directory" in capsys.readouterr().err


class TestFormats:
    def test_json_document(self, capsys):
        code = main(["check", DETERMINISM, "--format", "json"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert document["active_count"] == len(document["findings"])
        assert {"rule", "path", "line", "message"} <= set(
            document["findings"][0]
        )

    def test_github_annotations(self, capsys):
        code = main(["check", DETERMINISM, "--format", "github"])
        assert code == 1
        lines = capsys.readouterr().out.splitlines()
        annotations = [line for line in lines if line.startswith("::error ")]
        assert annotations
        # The prefix maps fixture-relative paths onto repo-relative ones.
        assert all(
            "file=src/repro/core/" in line or "file=src/repro/net/" in line
            for line in annotations
        )
        assert all("line=" in line for line in annotations)

    def test_verbose_lists_suppressed(self, capsys):
        main(["check", DETERMINISM, "--verbose"])
        assert "(suppressed: allowlist)" in capsys.readouterr().out


class TestRuleSelection:
    def test_rules_flag_scopes_the_run(self, capsys):
        code = main(
            ["check", DETERMINISM, "--rules", "exception-discipline"]
        )
        # The determinism fixture has no exception violations.
        assert code == 0

    def test_list_prints_every_rule(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.name in out


class TestBaselineFlow:
    def test_write_then_check_with_baseline(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                ["check", DETERMINISM, "--write-baseline", "--baseline",
                 str(baseline)]
            )
            == 0
        )
        assert baseline.exists()
        assert (
            main(["check", DETERMINISM, "--baseline", str(baseline)]) == 0
        )
        assert (
            main(
                ["check", DETERMINISM, "--baseline", str(baseline),
                 "--no-baseline"]
            )
            == 1
        )
