"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.net.simulator import SimulationKernel


class TestScheduling:
    def test_events_run_in_time_order(self):
        kernel = SimulationKernel()
        order = []
        kernel.schedule_at(5.0, order.append, "late")
        kernel.schedule_at(1.0, order.append, "early")
        kernel.schedule_at(3.0, order.append, "middle")
        kernel.run_until_idle()
        assert order == ["early", "middle", "late"]

    def test_ties_broken_by_insertion_order(self):
        kernel = SimulationKernel()
        order = []
        kernel.schedule_at(2.0, order.append, "first")
        kernel.schedule_at(2.0, order.append, "second")
        kernel.run_until_idle()
        assert order == ["first", "second"]

    def test_schedule_in_relative_delay(self):
        kernel = SimulationKernel(start_time=10.0)
        seen = []
        kernel.schedule_in(2.5, lambda: seen.append(kernel.now))
        kernel.run_until_idle()
        assert seen == [12.5]

    def test_clock_advances_to_event_time(self):
        kernel = SimulationKernel()
        kernel.schedule_at(7.0, lambda: None)
        kernel.run_until_idle()
        assert kernel.now == 7.0

    def test_scheduling_in_the_past_rejected(self):
        kernel = SimulationKernel(start_time=5.0)
        with pytest.raises(SimulationError):
            kernel.schedule_at(1.0, lambda: None)
        with pytest.raises(SimulationError):
            kernel.schedule_in(-1.0, lambda: None)

    def test_cascading_events(self):
        kernel = SimulationKernel()
        seen = []

        def first():
            seen.append("first")
            kernel.schedule_in(1.0, second)

        def second():
            seen.append("second")

        kernel.schedule_in(1.0, first)
        kernel.run_until_idle()
        assert seen == ["first", "second"]
        assert kernel.now == 2.0


class TestCancellation:
    def test_cancelled_events_do_not_fire(self):
        kernel = SimulationKernel()
        seen = []
        handle = kernel.schedule_at(1.0, seen.append, "x")
        handle.cancel()
        kernel.run_until_idle()
        assert not seen
        assert handle.cancelled

    def test_pending_events_excludes_cancelled(self):
        kernel = SimulationKernel()
        keep = kernel.schedule_at(1.0, lambda: None)
        drop = kernel.schedule_at(2.0, lambda: None)
        drop.cancel()
        assert kernel.pending_events == 1
        assert keep.time == 1.0


class TestClockControl:
    def test_advance_to_and_by(self):
        kernel = SimulationKernel()
        kernel.advance_to(5.0)
        kernel.advance_by(2.0)
        assert kernel.now == 7.0

    def test_advance_backwards_rejected(self):
        kernel = SimulationKernel()
        kernel.advance_to(5.0)
        with pytest.raises(SimulationError):
            kernel.advance_to(1.0)
        with pytest.raises(SimulationError):
            kernel.advance_by(-0.1)

    def test_run_until_processes_only_due_events(self):
        kernel = SimulationKernel()
        seen = []
        kernel.schedule_at(1.0, seen.append, "a")
        kernel.schedule_at(10.0, seen.append, "b")
        processed = kernel.run_until(5.0)
        assert processed == 1
        assert seen == ["a"]
        assert kernel.now == 5.0
        kernel.run_until_idle()
        assert seen == ["a", "b"]


class TestGuards:
    def test_max_events_guard(self):
        kernel = SimulationKernel()

        def loop():
            kernel.schedule_in(1.0, loop)

        kernel.schedule_in(1.0, loop)
        with pytest.raises(SimulationError):
            kernel.run_until_idle(max_events=10)

    def test_events_processed_counter(self):
        kernel = SimulationKernel()
        for i in range(4):
            kernel.schedule_at(float(i + 1), lambda: None)
        kernel.run_until_idle()
        assert kernel.events_processed == 4


class TestPendingEventsCounter:
    def test_pending_events_is_tracked_incrementally(self):
        kernel = SimulationKernel()
        handles = [kernel.schedule_at(float(i), lambda: None) for i in range(5)]
        assert kernel.pending_events == 5
        handles[0].cancel()
        handles[0].cancel()  # double cancel must not double count
        assert kernel.pending_events == 4
        kernel.run_until_idle()
        assert kernel.pending_events == 0

    def test_cancel_after_fire_keeps_counter_consistent(self):
        kernel = SimulationKernel()
        handle = kernel.schedule_at(1.0, lambda: None)
        kernel.schedule_at(2.0, lambda: None)
        kernel.step()
        handle.cancel()  # no-op: the event already fired
        assert kernel.pending_events == 1
        kernel.run_until_idle()
        assert kernel.pending_events == 0
