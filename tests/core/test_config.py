"""Tests for engine configuration validation."""

import pytest

from repro.core.config import AUTO, RJoinConfig
from repro.errors import ConfigurationError


class TestRJoinConfig:
    def test_defaults_are_valid(self):
        config = RJoinConfig()
        assert config.num_nodes > 0
        assert config.strategy == "rjoin"
        assert config.altt_delta == AUTO

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_nodes", 0),
            ("bits", 0),
            ("bits", 512),
            ("hop_delay", -1.0),
            ("delay_jitter", -0.5),
            ("ric_window", 0.0),
            ("ric_freshness", -1.0),
            ("gc_every_tuples", 0),
            ("rebalance_every_tuples", 0),
            ("light_load_factor", 0.0),
            ("light_load_factor", 1.5),
            ("altt_delta", -1.0),
            ("altt_delta", "whenever"),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            RJoinConfig(**{field: value})

    def test_resolve_altt_delta_auto(self):
        config = RJoinConfig(altt_delta=AUTO)
        assert config.resolve_altt_delta(10.0) == 40.0
        assert config.resolve_altt_delta(0.0) is None

    def test_resolve_altt_delta_explicit(self):
        assert RJoinConfig(altt_delta=7.5).resolve_altt_delta(100.0) == 7.5
        assert RJoinConfig(altt_delta=None).resolve_altt_delta(100.0) is None
