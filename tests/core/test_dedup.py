"""Tests for DISTINCT projection tracking."""

from repro.core.dedup import ProjectionTracker, project, projection_attributes
from repro.data.schema import Catalog
from repro.data.tuples import Tuple
from repro.sql.parser import parse_query


def catalog():
    cat = Catalog()
    cat.add_relation("R", ["A1", "A2", "A3"])
    cat.add_relation("S", ["B1", "B2", "B3"])
    return cat


def make_tuple(cat, relation, values):
    return Tuple.from_schema(cat.get(relation), values)


def paper_query(cat):
    return parse_query(
        "SELECT R.A1, S.B1 FROM R, S WHERE R.A2 = S.B2", catalog=cat
    )


class TestProjection:
    def test_projection_attributes_cover_select_and_where(self):
        cat = catalog()
        query = paper_query(cat)
        assert projection_attributes(query, "S") == ("B1", "B2")
        assert projection_attributes(query, "R") == ("A1", "A2")
        assert projection_attributes(query, "T") == ()

    def test_project_values(self):
        cat = catalog()
        query = paper_query(cat)
        tup = make_tuple(cat, "S", ("b", 2, "c"))
        assert project(query, tup, cat.get("S")) == (("B1", "b"), ("B2", 2))


class TestProjectionTracker:
    def test_paper_example2_duplicate_suppressed(self):
        """Tuples (b,2,c) and (b,2,e) of S share the projection (b,2)."""
        cat = catalog()
        query = paper_query(cat)
        tracker = ProjectionTracker()
        schema = cat.get("S")
        first = make_tuple(cat, "S", ("b", 2, "c"))
        second = make_tuple(cat, "S", ("b", 2, "e"))
        assert tracker.admit_and_record(query, first, schema)
        assert not tracker.admit_and_record(query, second, schema)
        assert len(tracker) == 1

    def test_different_projection_admitted(self):
        cat = catalog()
        query = paper_query(cat)
        tracker = ProjectionTracker()
        schema = cat.get("S")
        tracker.admit_and_record(query, make_tuple(cat, "S", ("b", 2, "c")), schema)
        assert tracker.admit_and_record(
            query, make_tuple(cat, "S", ("x", 2, "c")), schema
        )
        assert tracker.admit_and_record(
            query, make_tuple(cat, "S", ("b", 3, "c")), schema
        )
        assert len(tracker) == 3

    def test_admits_does_not_record(self):
        cat = catalog()
        query = paper_query(cat)
        tracker = ProjectionTracker()
        schema = cat.get("S")
        tup = make_tuple(cat, "S", ("b", 2, "c"))
        assert tracker.admits(query, tup, schema)
        assert tracker.admits(query, tup, schema)
        tracker.record(query, tup, schema)
        assert not tracker.admits(query, tup, schema)

    def test_values_outside_projection_ignored(self):
        cat = catalog()
        query = paper_query(cat)
        tracker = ProjectionTracker()
        schema = cat.get("R")
        tracker.admit_and_record(query, make_tuple(cat, "R", (1, 2, 3)), schema)
        # Same A1/A2 but different A3 (A3 is not in select/where): still a duplicate.
        assert not tracker.admit_and_record(
            query, make_tuple(cat, "R", (1, 2, 99)), schema
        )
