"""Rule ``store-contract`` — registered backends honour the store contract.

``make_store`` (``data/backends.py``) is the only way the engine obtains a
tuple store, so the classes it can return *are* the backend registry.  A
backend that misses part of the :class:`~repro.data.backends.StoreBackend`
contract fails at runtime deep inside a scenario (or worse, silently
answers differently).  This rule checks, per registered backend class:

* the class inherits :class:`StoreBackend` (directly or through a base in
  the same module) — inheriting the base class is what makes the
  documented per-item fallbacks of the batch contract apply,
* every ``@abstractmethod`` of ``StoreBackend`` is implemented in the
  class body (or an in-module base): a missing one would raise
  ``TypeError`` only at instantiation, i.e. mid-experiment,
* any override of the set-at-a-time contract (``add_batch`` /
  ``match_batch`` / ``tuples_for_prefixes`` / ``remove_expired``) keeps
  the base signature's parameter names — callers pass keywords, so a
  renamed parameter is an API break the type system never sees.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.base import Finding, Rule, SourceFile
from repro.analysis.project import Project

BACKENDS_FILE = "data/backends.py"
FACTORY_NAME = "make_store"
BASE_CLASS = "StoreBackend"

#: The set-at-a-time contract whose base-class fallbacks backends may
#: inherit; overrides must keep the parameter names.
BATCH_CONTRACT = ("add_batch", "match_batch", "tuples_for_prefixes", "remove_expired")


def _find_class(sf: SourceFile, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        item.name: item
        for item in cls.body
        if isinstance(item, ast.FunctionDef)
    }


def _is_abstract(func: ast.FunctionDef) -> bool:
    for decorator in func.decorator_list:
        name = (
            decorator.id
            if isinstance(decorator, ast.Name)
            else decorator.attr
            if isinstance(decorator, ast.Attribute)
            else None
        )
        if name == "abstractmethod":
            return True
    return False


def _param_names(func: ast.FunctionDef) -> List[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append("*" + args.vararg.arg)
    if args.kwarg:
        names.append("**" + args.kwarg.arg)
    return names


class StoreContractRule(Rule):
    """Every class make_store can return implements the store contract."""

    name = "store-contract"
    description = (
        "make_store backends inherit StoreBackend, implement every "
        "abstract method and keep batch-contract signatures"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        backends_sf = project.get(BACKENDS_FILE)
        if backends_sf is None:
            return
        base = _find_class(backends_sf, BASE_CLASS)
        if base is None:
            return
        base_methods = _methods(base)
        abstract = sorted(
            name for name, func in base_methods.items() if _is_abstract(func)
        )
        registered = self._registered_backends(backends_sf)
        for module_rel, class_name, anchor in registered:
            sf = project.get(module_rel)
            if sf is None:
                yield self.finding(
                    backends_sf,
                    anchor,
                    f"{FACTORY_NAME} returns {class_name} from "
                    f"{module_rel!r}, which is not part of the analyzed "
                    "tree",
                )
                continue
            cls = _find_class(sf, class_name)
            if cls is None:
                yield self.finding(
                    backends_sf,
                    anchor,
                    f"{FACTORY_NAME} returns {class_name}, which is not "
                    f"defined in {module_rel}",
                )
                continue
            yield from self._check_backend(
                sf, cls, abstract, base_methods
            )

    # ------------------------------------------------------------------
    def _registered_backends(
        self, backends_sf: SourceFile
    ) -> List[Tuple[str, str, ast.AST]]:
        """``(module path, class name, anchor)`` per make_store return.

        ``make_store`` imports implementations lazily; the imports inside
        the factory body name both the module and the class, and the
        ``return`` statements name which classes are actually reachable.
        """
        factory: Optional[ast.FunctionDef] = None
        for node in ast.walk(backends_sf.tree):
            if isinstance(node, ast.FunctionDef) and node.name == FACTORY_NAME:
                factory = node
        if factory is None:
            return []
        imported: Dict[str, str] = {}  # class name -> module rel path
        for node in ast.walk(factory):
            if isinstance(node, ast.ImportFrom) and node.module:
                module_rel = node.module
                prefix = "repro."
                if module_rel.startswith(prefix):
                    module_rel = module_rel[len(prefix):]
                module_rel = module_rel.replace(".", "/") + ".py"
                for alias in node.names:
                    imported[alias.asname or alias.name] = module_rel
        registered: List[Tuple[str, str, ast.AST]] = []
        seen: Set[str] = set()
        for node in ast.walk(factory):
            if not (isinstance(node, ast.Return) and isinstance(node.value, ast.Call)):
                continue
            func = node.value.func
            if isinstance(func, ast.Name) and func.id in imported:
                if func.id not in seen:
                    seen.add(func.id)
                    registered.append((imported[func.id], func.id, node))
        return registered

    def _check_backend(
        self,
        sf: SourceFile,
        cls: ast.ClassDef,
        abstract: List[str],
        base_methods: Dict[str, ast.FunctionDef],
    ) -> Iterator[Finding]:
        # Resolve in-module base-class chains so a backend may share code
        # through a local intermediate class.
        defined: Dict[str, ast.FunctionDef] = {}
        inherits_base = False
        stack = [cls]
        visited: Set[str] = set()
        while stack:
            current = stack.pop()
            if current.name in visited:
                continue
            visited.add(current.name)
            for name, func in _methods(current).items():
                defined.setdefault(name, func)
            for base in current.bases:
                base_name = (
                    base.id
                    if isinstance(base, ast.Name)
                    else base.attr
                    if isinstance(base, ast.Attribute)
                    else None
                )
                if base_name == BASE_CLASS:
                    inherits_base = True
                elif base_name is not None:
                    parent = _find_class(sf, base_name)
                    if parent is not None:
                        stack.append(parent)

        if not inherits_base:
            yield self.finding(
                sf,
                cls,
                f"backend {cls.name} does not inherit {BASE_CLASS}: the "
                "documented per-item batch fallbacks do not apply and the "
                "contract is unenforced",
            )
        for name in abstract:
            if name not in defined:
                yield self.finding(
                    sf,
                    cls,
                    f"backend {cls.name} does not implement abstract "
                    f"{BASE_CLASS}.{name}: instantiation would fail "
                    "mid-experiment",
                )
        for name in BATCH_CONTRACT:
            base_func = base_methods.get(name)
            override = defined.get(name)
            if base_func is None or override is None:
                continue
            if _param_names(override) != _param_names(base_func):
                yield self.finding(
                    sf,
                    override,
                    f"backend {cls.name}.{name} changes the batch-contract "
                    f"signature: expected parameters "
                    f"{_param_names(base_func)!r}, found "
                    f"{_param_names(override)!r}",
                )
