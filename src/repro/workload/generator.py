"""Generation of the paper's experimental workload.

The generator produces two things:

* **continuous queries** — random k-way chain equi-joins over a uniform
  catalog (``k`` relations, ``k - 1`` join predicates, adjacent joins share a
  relation), optionally with a sliding window and/or DISTINCT,
* **tuples** — a stream where the relation of every new tuple and each of its
  attribute values are drawn from Zipf distributions (Section 8).

Both are deterministic for a fixed seed, which keeps experiments and the
property-based comparison against the reference engine reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple as TupleT

from repro.data.schema import AttributeRef, Catalog
from repro.errors import ConfigurationError
from repro.sql.ast import JoinPredicate, Query, WindowSpec
from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True)
class GeneratedTuple:
    """A relation name plus attribute values, ready to be published."""

    relation: str
    values: TupleT[int, ...]


@dataclass
class WorkloadSpec:
    """Parameters of the synthetic workload (defaults follow Section 8)."""

    num_relations: int = 10
    attributes_per_relation: int = 10
    value_domain: int = 100
    zipf_theta: float = 0.9
    join_arity: int = 4               # number of relations per query (k-way join)
    projection_size: int = 2          # attributes in the select list
    window: Optional[WindowSpec] = None
    distinct: bool = False
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_relations <= 0 or self.attributes_per_relation <= 0:
            raise ConfigurationError("catalog dimensions must be positive")
        if self.value_domain <= 0:
            raise ConfigurationError("the value domain must be positive")
        if self.join_arity < 1:
            raise ConfigurationError("queries must involve at least one relation")
        if self.join_arity > self.num_relations:
            raise ConfigurationError(
                "join arity cannot exceed the number of relations "
                "(self-joins are not supported)"
            )
        if self.projection_size < 1:
            raise ConfigurationError("the select list needs at least one attribute")


class WorkloadGenerator:
    """Produces catalogs, query batches and tuple streams from a :class:`WorkloadSpec`."""

    def __init__(self, spec: Optional[WorkloadSpec] = None):
        self.spec = spec or WorkloadSpec()
        self._rng = random.Random(self.spec.seed)
        self.catalog = Catalog.uniform(
            self.spec.num_relations, self.spec.attributes_per_relation
        )
        self._relation_names = self.catalog.relation_names()
        self._relation_sampler = ZipfSampler(
            self.spec.num_relations,
            self.spec.zipf_theta,
            rng=random.Random(self.spec.seed + 1),
        )
        self._value_sampler = ZipfSampler(
            self.spec.value_domain,
            self.spec.zipf_theta,
            rng=random.Random(self.spec.seed + 2),
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def generate_query(self) -> Query:
        """Generate one random k-way chain join query.

        The chain shape matches the paper's experiments
        (``R.A = S.B and S.C = J.F and J.C = K.D``): relations are distinct,
        adjacent join predicates share a relation, and the joined attributes
        are drawn uniformly at random.
        """
        relations = self._rng.sample(self._relation_names, self.spec.join_arity)
        joins: List[JoinPredicate] = []
        for left_rel, right_rel in zip(relations, relations[1:]):
            left_attr = self._random_attribute(left_rel)
            right_attr = self._random_attribute(right_rel)
            joins.append(
                JoinPredicate(
                    AttributeRef(left_rel, left_attr),
                    AttributeRef(right_rel, right_attr),
                )
            )
        select_items = tuple(
            AttributeRef(rel, self._random_attribute(rel))
            for rel in self._rng.choices(relations, k=self.spec.projection_size)
        )
        query = Query(
            select_items=select_items,
            relations=tuple(relations),
            join_predicates=tuple(joins),
            selection_predicates=(),
            distinct=self.spec.distinct,
            window=self.spec.window,
        )
        return query.validate(self.catalog)

    def generate_queries(self, count: int) -> List[Query]:
        """Generate ``count`` independent random queries."""
        return [self.generate_query() for _ in range(count)]

    def _random_attribute(self, relation: str) -> str:
        schema = self.catalog.get(relation)
        return self._rng.choice(schema.attributes)

    # ------------------------------------------------------------------
    # tuples
    # ------------------------------------------------------------------
    def generate_tuple(self) -> GeneratedTuple:
        """Generate one tuple: Zipf relation choice, Zipf value per attribute."""
        relation = self._relation_names[self._relation_sampler.sample()]
        schema = self.catalog.get(relation)
        values = tuple(self._value_sampler.sample() for _ in schema.attributes)
        return GeneratedTuple(relation=relation, values=values)

    def generate_tuples(self, count: int) -> List[GeneratedTuple]:
        """Generate ``count`` tuples."""
        return [self.generate_tuple() for _ in range(count)]

    def tuple_stream(self, count: Optional[int] = None) -> Iterator[GeneratedTuple]:
        """Yield tuples lazily; infinite stream when ``count`` is None."""
        produced = 0
        while count is None or produced < count:
            yield self.generate_tuple()
            produced += 1

    # ------------------------------------------------------------------
    # derived helpers
    # ------------------------------------------------------------------
    def hottest_relation(self) -> str:
        """The relation with the highest expected arrival rate (Zipf rank 0)."""
        return self._relation_names[0]

    def coldest_relation(self) -> str:
        """The relation with the lowest expected arrival rate."""
        return self._relation_names[-1]
