"""Fixture dispatcher with a dead arm and an unaccounted message."""

from core.protocol import HandledMessage, UnroutedMessage, UnsentMessage


class GhostMessage:
    """Not a declared Message subclass — its dispatch arm is dead code."""


class RJoinNode:
    def __init__(self, service):
        self.service = service

    def handle_envelope(self, message):
        if isinstance(message, HandledMessage):
            return "handled"
        if isinstance(message, UnsentMessage):
            return "unsent"
        if isinstance(message, GhostMessage):  # VIOLATION: dead dispatch arm
            return "ghost"
        return None

    def announce(self, target):
        # Accounted send sites for HandledMessage and UnroutedMessage:
        # construction plus a messaging-primitive call in one function.
        self.service.send(target, HandledMessage())
        self.service.send(target, UnroutedMessage())

    def mint_without_sending(self):
        # VIOLATION (for UnsentMessage): constructed, but no function ever
        # pairs the construction with send/multi_send/send_direct.
        return UnsentMessage()
