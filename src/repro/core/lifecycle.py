"""Query lifecycle management: retraction and owner failover.

The engine used to support exactly one lifecycle transition — submission
(:meth:`~repro.core.engine.RJoinEngine.submit`).  Continuous queries could
never be *retracted*, and a crashed owner silently lost every answer its
handles would have received.  This module owns everything that happens to a
query after submission:

* **Removal** — :meth:`repro.core.engine.RJoinEngine.remove_query`
  (backed by this manager's tombstone and registration bookkeeping) drives
  the retraction of a continuous query through the ring: a
  :class:`~repro.core.protocol.RetractQueryMessage` is broadcast from the
  owner to every live node (real, traffic-accounted messages), each node
  purges the query's state on delivery (its input-query record, every
  rewritten query it spawned, pending RIC round trips), and — once no
  active query remains — the network-wide *vacuum* reclaims the state that
  only existed to serve queries: stored value-level tuples and ALTT entries
  published strictly before "now" (no future query can ever consume them,
  because the trigger condition requires ``pubT(t) >= insT(q)``) and the
  candidate-table caches.  A tombstone set guards against resurrection:
  query state arriving after its retraction is dropped and counted as an
  ``orphaned_state_records`` probe (zero in healthy runs).

* **Owner failover** — on submission (when
  :attr:`~repro.core.config.RJoinConfig.owner_failover` is enabled) the
  query's *handle registration* — owner address plus the answer dedup
  watermark — is replicated as a :class:`HandleRegistration` onto the ring
  successor of the owner: exactly the node that inherits the owner's key
  range if the owner crashes.  ``crash_node()`` on an owner then triggers
  re-registration on that survivor (the replica already holds the
  registration — that is the point of replicating it), in-flight answers to
  the dead owner are re-routed to the new owner instead of being destroyed,
  and answers produced later resolve the *current* owner at emission time.
  Registrations are node-local state like any other kind: the
  :class:`~repro.core.membership.MembershipManager` re-homes them whenever
  ring mutations move the successor of an owner (joins, graceful leaves,
  crashes of the replica itself, id movement).

* **Shared rewritten-query state** — with
  :attr:`~repro.core.config.RJoinConfig.shared_query_state` enabled,
  canonically equal rewritten states collapse into one stored record with a
  subscriber list (see :class:`repro.core.protocol.QueryState`), and both
  transitions above become *per-subscriber*: retraction detaches only the
  removed query's subscriptions (promoting a surviving subscriber to
  primary when the record's nominal owner is retracted — the record keeps
  serving its co-subscribers), and the answer path resolves the live owner
  through :meth:`QueryLifecycleManager.resolve_owner` for each subscriber
  independently, so an owner crash re-routes exactly the crashed
  subscriber's answer stream and leaves the others untouched.

Everything the subsystem does is measured through the lifecycle counters of
:class:`~repro.metrics.collectors.ChurnStats` (``queries_removed``,
``orphaned_state_records``, ``failover_reregistrations``,
``answers_rerouted`` plus the retraction/vacuum record counts), surfaced in
``RJoinEngine.metrics_summary``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.dht.chord import ChordRing
from repro.errors import EngineError
from repro.metrics.collectors import ChurnStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.answers import QueryHandle
    from repro.core.node import RJoinNode


@dataclass
class HandleRegistration:
    """The replicated registration of one continuous query's handle.

    Lives on the ring successor of the query's owner (the node that takes
    over the owner's key range on a crash).  ``owner`` is the address
    answers must be shipped to; ``watermark`` is the number of answers known
    to be delivered as of the last replication sync.  Today's failover path
    re-routes in-flight answers exactly once by construction (cancel +
    re-send), so the watermark is bookkeeping: it records the dedup floor a
    message-level re-delivery scheme would have to resume from, and tests
    assert it stays in sync with the handle across failovers.
    """

    query_id: str
    owner: str
    watermark: int = 0
    replicated_at: float = 0.0


class QueryLifecycleManager:
    """Owns continuous-query state transitions beyond submission.

    The manager is engine-internal: :class:`~repro.core.engine.RJoinEngine`
    delegates ``remove_query`` and the owner-failover part of
    ``crash_node`` / ``remove_node`` to it.  It keeps no private location
    table for the replicas — a registration's home is always derivable from
    the live ring (:meth:`registration_home`), which is what lets the
    membership layer re-home registrations like any other state kind.
    """

    def __init__(
        self,
        ring: ChordRing,
        nodes: Dict[str, "RJoinNode"],
        handles: Dict[str, "QueryHandle"],
        churn: ChurnStats,
        clock: Callable[[], float],
        enabled: bool = True,
    ) -> None:
        self.ring = ring
        self.nodes = nodes
        self.handles = handles
        self.churn = churn
        self._clock = clock
        #: Whether handle registrations are replicated (owner failover).
        self.enabled = enabled
        #: Query ids that have been retracted; state arriving for them after
        #: the retraction is orphaned and must be dropped on sight.
        self.retracted: Set[str] = set()
        #: owner address -> ids of the active queries it owns.
        self._by_owner: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # registration placement
    # ------------------------------------------------------------------
    def registration_home(self, query_id: str) -> Optional[str]:
        """Address of the node that must hold ``query_id``'s registration.

        The ring successor of the query's current owner — the node that
        inherits the owner's identifier range if the owner fails.  ``None``
        for unknown/retracted queries (their registrations are garbage) and
        when the owner itself is the whole ring.
        """
        handle = self.handles.get(query_id)
        if handle is None or not self.ring.has_address(handle.owner):
            return None
        owner_node = self.ring.node_by_address(handle.owner)
        successor = self.ring.successor_of(owner_node)
        if successor.address == handle.owner:
            return None  # single-node ring: nowhere to replicate
        return successor.address

    def register(self, handle: "QueryHandle") -> None:
        """Replicate ``handle``'s registration onto the owner's successor."""
        self._by_owner.setdefault(handle.owner, set()).add(handle.query_id)
        if not self.enabled:
            return
        home = self.registration_home(handle.query_id)
        if home is None:
            return
        self.nodes[home].registrations[handle.query_id] = HandleRegistration(
            query_id=handle.query_id,
            owner=handle.owner,
            watermark=handle.count,
            replicated_at=self._clock(),
        )

    def deregister(self, query_id: str) -> None:
        """Drop a removed query's registration everywhere it could live."""
        handle = self.handles.get(query_id)
        if handle is not None:
            owned = self._by_owner.get(handle.owner)
            if owned is not None:
                owned.discard(query_id)
                if not owned:
                    del self._by_owner[handle.owner]
        for node in self.nodes.values():
            node.registrations.pop(query_id, None)

    def mark_retracted(self, query_id: str) -> None:
        """Tombstone ``query_id`` so late-arriving state is dropped."""
        self.retracted.add(query_id)

    def is_retracted(self, query_id: str) -> bool:
        """Whether ``query_id`` has been removed (orphan guard)."""
        return query_id in self.retracted

    # ------------------------------------------------------------------
    # owner resolution (the answer path asks on every emission)
    # ------------------------------------------------------------------
    def resolve_owner(self, query_id: str, default: str) -> str:
        """The current owner of ``query_id`` (``default`` when unknown).

        Query state carries the owner address it was created with; after a
        failover that address is stale.  Producers resolve the live owner at
        emission time, so answers keep flowing to the surviving registrant.
        """
        handle = self.handles.get(query_id)
        return handle.owner if handle is not None else default

    # ------------------------------------------------------------------
    # owner failover
    # ------------------------------------------------------------------
    def queries_owned_by(self, address: str) -> List[str]:
        """Ids of the active queries whose handles live on ``address``."""
        return sorted(self._by_owner.get(address, ()))

    def failover_owner(self, address: str, successor: str) -> List[str]:
        """Re-register every query owned by ``address`` onto ``successor``.

        Called by the engine after the departed owner left the ring, with
        the successor the *pre-departure* ring named for it: the node that
        already holds the replicated registrations (that is the point of
        replicating them there).  Each registration is refreshed and moved
        to the new owner's own successor.  Returns the re-registered query
        ids.
        """
        if not self.enabled:
            return []
        moved = self.queries_owned_by(address)
        if not moved:
            return []
        now = self._clock()
        for query_id in moved:
            handle = self.handles[query_id]
            handle.owner = successor
            registration = self._find_registration(query_id)
            if registration is None:
                registration = HandleRegistration(query_id=query_id, owner=successor)
            registration.owner = successor
            registration.watermark = handle.count
            registration.replicated_at = now
            self._place(query_id, registration)
            self.churn.record_failover_reregistration()
        self._by_owner.setdefault(successor, set()).update(moved)
        self._by_owner.pop(address, None)
        return moved

    def repair_replicas(self, departed: str) -> int:
        """Re-create the registrations a departed node held for live owners.

        A crash destroys the replica records stored on the dead node; each
        affected owner re-replicates its handle registration onto the
        current successor (out-of-band, like membership re-homing).  Returns
        the number of registrations re-created.
        """
        if not self.enabled:
            return 0
        repaired = 0
        placed: Set[str] = set()
        for node in self.nodes.values():
            placed.update(node.registrations)
        now = self._clock()
        for query_id, handle in self.handles.items():
            if query_id in placed or handle.owner == departed:
                continue
            registration = HandleRegistration(
                query_id=query_id,
                owner=handle.owner,
                watermark=handle.count,
                replicated_at=now,
            )
            if self._place(query_id, registration):
                repaired += 1
        return repaired

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _find_registration(self, query_id: str) -> Optional[HandleRegistration]:
        """Locate (and detach) the replica record of ``query_id``."""
        for node in self.nodes.values():
            registration = node.registrations.pop(query_id, None)
            if registration is not None:
                return registration
        return None

    def _place(self, query_id: str, registration: HandleRegistration) -> bool:
        """Store ``registration`` at its current home; False when homeless."""
        home = self.registration_home(query_id)
        if home is None:
            return False
        node = self.nodes.get(home)
        if node is None:
            raise EngineError(
                f"registration home {home!r} for query {query_id!r} has no "
                "application-layer node registered"
            )
        node.registrations[query_id] = registration
        return True
