"""Running rules over a project and applying the suppression layers."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.base import Finding, Rule
from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.project import Project
from repro.analysis.rules import ALL_RULES, rules_by_name
from repro.errors import AnalysisError


@dataclass
class AnalysisReport:
    """The outcome of one analysis run."""

    package_root: str
    files_analyzed: int
    rules_run: List[str]
    #: Findings that fail the check (not allowlisted, not baselined).
    active: List[Finding] = field(default_factory=list)
    #: Findings silenced by an allowlist marker or the baseline.
    suppressed: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the tree satisfies every checked invariant."""
        return not self.active

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe rendering (the ``--format json`` document)."""

        def _render(finding: Finding) -> Dict[str, object]:
            return {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
                "suppressed_by": finding.suppressed_by,
            }

        return {
            "version": 1,
            "package_root": self.package_root,
            "files_analyzed": self.files_analyzed,
            "rules_run": list(self.rules_run),
            "ok": self.ok,
            "active_count": len(self.active),
            "suppressed_count": len(self.suppressed),
            "findings": [_render(f) for f in self.active],
            "suppressed": [_render(f) for f in self.suppressed],
        }


def select_rules(names: Optional[Sequence[str]]) -> List[Rule]:
    """The shipped rules matching ``names`` (all of them when ``None``)."""
    if names is None:
        return list(ALL_RULES)
    registry = rules_by_name()
    selected: List[Rule] = []
    for name in names:
        if name not in registry:
            known = ", ".join(sorted(registry))
            raise AnalysisError(f"unknown rule {name!r}; known rules: {known}")
        selected.append(registry[name])
    return selected


def analyze(
    package_root: Path,
    rule_names: Optional[Sequence[str]] = None,
    baseline_path: Optional[Path] = None,
) -> AnalysisReport:
    """Run the selected rules over ``package_root`` and classify findings.

    Suppression order: allowlist markers first (they are part of the
    source and reviewed with it), then the baseline.  Parse failures are
    reported as active findings of the pseudo-rule ``parse-error`` — a
    file the analyzer cannot read is never silently clean.
    """
    rules = select_rules(rule_names)
    project = Project(package_root)

    raw: List[Finding] = list(project.parse_failures)
    for rule in rules:
        raw.extend(rule.check(project))

    allowlisted: List[Finding] = []
    unsuppressed: List[Finding] = []
    for finding in raw:
        sf = project.get(finding.path)
        if sf is not None and sf.is_allowed(finding.rule, finding.line):
            allowlisted.append(finding.suppressed("allowlist"))
        else:
            unsuppressed.append(finding)

    baseline = load_baseline(baseline_path) if baseline_path else {}
    active, baselined = apply_baseline(unsuppressed, baseline)

    active.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    suppressed = sorted(
        allowlisted + baselined,
        key=lambda f: (f.path, f.line, f.rule, f.message),
    )
    return AnalysisReport(
        package_root=str(project.package_root),
        files_analyzed=len(project),
        rules_run=[rule.name for rule in rules],
        active=active,
        suppressed=suppressed,
    )
