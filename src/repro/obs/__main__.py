"""Module entry point: ``python -m repro.obs``."""

from __future__ import annotations

import sys

from repro.obs.cli import main

if __name__ == "__main__":
    sys.exit(main())
