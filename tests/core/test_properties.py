"""Property-based tests (hypothesis) for core invariants."""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.keys import value_key
from repro.core.rewriting import rewrite_query
from repro.core.windows import WindowState, admits, combination_valid, extend
from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.core.reference import ReferenceEngine
from repro.data.schema import AttributeRef, Catalog
from repro.data.tuples import Tuple
from repro.dht.hashing import IdentifierSpace
from repro.dht.ring import RingMap
from repro.sql.ast import JoinPredicate, Query, SelectionPredicate, WindowSpec


# ---------------------------------------------------------------------------
# Identifier space / ring properties
# ---------------------------------------------------------------------------
@given(st.integers(min_value=0), st.integers(min_value=0), st.integers(min_value=0))
def test_ring_distance_triangle_identity(a, b, c):
    """Clockwise distances around the circle compose modulo the circle size."""
    space = IdentifierSpace(16)
    total = (space.distance(a, b) + space.distance(b, c)) % space.size
    assert total == space.distance(a, c)


@given(st.sets(st.integers(min_value=0, max_value=2**16 - 1), min_size=1, max_size=40),
       st.integers(min_value=0, max_value=2**16 - 1))
def test_ring_successor_is_owner(ids, probe):
    """successor(k) is the first identifier at or after k (wrapping around)."""
    space = IdentifierSpace(16)
    ring = RingMap(space)
    for identifier in ids:
        ring.insert(identifier, f"n{identifier}")
    owner_id, _ = ring.successor(probe)
    candidates = sorted(ids)
    expected = next((i for i in candidates if i >= probe), candidates[0])
    assert owner_id == expected


@given(st.text(min_size=0, max_size=20))
def test_hash_is_stable_and_bounded(key):
    space = IdentifierSpace(32)
    assert 0 <= space.hash_key(key) < space.size
    assert space.hash_key(key) == space.hash_key(key)


# ---------------------------------------------------------------------------
# Rewriting properties
# ---------------------------------------------------------------------------
_catalog = Catalog()
_catalog.add_relation("R", ["a", "b"])
_catalog.add_relation("S", ["a", "b"])

_small_values = st.integers(min_value=0, max_value=3)


@given(_small_values, _small_values, _small_values)
def test_rewrite_reduces_arity_or_dies(r_a, r_b, sel_value):
    query = Query(
        select_items=(AttributeRef("R", "a"), AttributeRef("S", "b")),
        relations=("R", "S"),
        join_predicates=(
            JoinPredicate(AttributeRef("R", "b"), AttributeRef("S", "a")),
        ),
        selection_predicates=(SelectionPredicate(AttributeRef("R", "a"), sel_value),),
    )
    tup = Tuple.from_schema(_catalog.get("R"), (r_a, r_b))
    result = rewrite_query(query, tup, _catalog.get("R"))
    if r_a != sel_value:
        assert result.dead
    else:
        assert result.query.arity == 1
        assert all(
            sp.attribute.relation != "R" for sp in result.query.selection_predicates
        )
        # The derived selection carries the joined value.
        assert (
            SelectionPredicate(AttributeRef("S", "a"), r_b)
            in result.query.selection_predicates
        )


@given(st.lists(st.tuples(_small_values, _small_values), min_size=2, max_size=2))
def test_rewrite_order_independence(values):
    """Consuming R then S yields the same answer as S then R."""
    (r_a, r_b), (s_a, s_b) = values
    query = Query(
        select_items=(AttributeRef("R", "a"), AttributeRef("S", "b")),
        relations=("R", "S"),
        join_predicates=(
            JoinPredicate(AttributeRef("R", "b"), AttributeRef("S", "a")),
        ),
    )
    r_tup = Tuple.from_schema(_catalog.get("R"), (r_a, r_b))
    s_tup = Tuple.from_schema(_catalog.get("S"), (s_a, s_b))

    def consume(order):
        current = query
        for tup in order:
            outcome = rewrite_query(current, tup, _catalog.get(tup.relation))
            if outcome.dead:
                return None
            current = outcome.query
        return current.answer_values() if current.is_complete() else None

    assert consume([r_tup, s_tup]) == consume([s_tup, r_tup])


# ---------------------------------------------------------------------------
# Window properties
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=6),
       st.integers(min_value=1, max_value=10))
def test_incremental_window_equals_global_check(clocks, size):
    """Incremental admission accepts a combination iff the global span fits."""
    window = WindowSpec(size=float(size), mode="time")
    state = None
    ok = True
    for clock in clocks:
        tup = Tuple(relation="R", values=(1,), pub_time=float(clock))
        if not admits(window, state, tup):
            ok = False
            break
        state = extend(window, state, tup)
    assert ok == combination_valid(window, tuple(float(c) for c in clocks))


@given(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=50))
def test_window_state_extension_is_commutative(a, b):
    base = WindowState(min_clock=10, max_clock=10)
    assert base.extended_with(a).extended_with(b) == base.extended_with(
        b
    ).extended_with(a)


# ---------------------------------------------------------------------------
# Key properties
# ---------------------------------------------------------------------------
@given(
    st.text(min_size=1, max_size=8),
    st.text(min_size=1, max_size=8),
    st.integers(min_value=0, max_value=99),
)
def test_value_keys_extend_their_attribute_prefix(relation, attribute, value):
    key = value_key(relation, attribute, value)
    assert key.text.startswith(key.attribute_prefix)
    assert key.at_attribute_level().text != key.text


# ---------------------------------------------------------------------------
# End-to-end equivalence on tiny random workloads
# ---------------------------------------------------------------------------
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=10, max_value=25),
)
def test_engine_matches_reference_on_random_workloads(seed, num_tuples):
    """RJoin delivers exactly the oracle's bag of answers (Theorems 1 and 2)."""
    rng = random.Random(seed)
    catalog = Catalog()
    catalog.add_relation("A", ["x", "y"])
    catalog.add_relation("B", ["x", "y"])
    catalog.add_relation("C", ["x", "y"])
    engine = RJoinEngine(RJoinConfig(num_nodes=12, seed=seed % 97), catalog=catalog)
    reference = ReferenceEngine(catalog)

    query = Query(
        select_items=(AttributeRef("A", "x"), AttributeRef("C", "y")),
        relations=("A", "B", "C"),
        join_predicates=(
            JoinPredicate(AttributeRef("A", "y"), AttributeRef("B", "x")),
            JoinPredicate(AttributeRef("B", "y"), AttributeRef("C", "x")),
        ),
    )
    handle = engine.submit(query)
    reference.submit(
        query, query_id=handle.query_id, insertion_time=handle.insertion_time
    )

    relations = ["A", "B", "C"]
    for _ in range(num_tuples):
        relation = rng.choice(relations)
        values = (rng.randint(0, 2), rng.randint(0, 2))
        tup = engine.publish(relation, values)
        reference.publish_tuple(tup)

    got = sorted(repr(v) for v in handle.values())
    expected = sorted(repr(v) for v in reference.answers(handle.query_id))
    assert got == expected


# ---------------------------------------------------------------------------
# Indexed node-local state vs naive scan semantics
# ---------------------------------------------------------------------------
_store_ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "gc_time", "gc_seq", "lookup"]),
        st.integers(min_value=0, max_value=5),   # value / cutoff selector
        st.integers(min_value=0, max_value=30),  # clock component
    ),
    min_size=1,
    max_size=40,
)


@given(_store_ops)
def test_store_heap_expiry_matches_filter_semantics(ops):
    """Heap-based expiry removes exactly the records a full scan would."""
    from repro.data.store import TupleStore

    store = TupleStore()
    shadow = []  # (key, tuple) pairs still alive under naive filtering
    schema = _catalog.get("R")
    sequence = 0
    for op, value, clock in ops:
        if op == "add":
            sequence += 1
            tup = Tuple.from_schema(
                schema, (value, value), pub_time=float(clock), sequence=sequence
            )
            key = f"R\x1fa\x1f{value!r}"
            store.add(key, tup, now=float(clock))
            shadow.append((key, tup))
        elif op == "gc_time":
            cutoff = float(clock)
            expected = sum(1 for _, t in shadow if t.pub_time < cutoff)
            shadow = [(k, t) for k, t in shadow if t.pub_time >= cutoff]
            assert store.remove_published_before(cutoff) == expected
        elif op == "gc_seq":
            cutoff = value * 4
            expected = sum(1 for _, t in shadow if t.sequence < cutoff)
            shadow = [(k, t) for k, t in shadow if t.sequence >= cutoff]
            assert store.remove_sequenced_before(cutoff) == expected
        else:
            prefix = "R\x1fa\x1f"
            got = {t.identity for t in store.tuples_for_prefix(prefix)}
            expected_ids = {t.identity for _, t in shadow}
            assert got == expected_ids
        assert len(store) == len(shadow)
        assert store.distinct_tuples() == len({t.identity for _, t in shadow})


@given(
    st.lists(
        st.tuples(st.booleans(), st.floats(min_value=0, max_value=50)),
        min_size=1,
        max_size=40,
    ),
    st.floats(min_value=0.5, max_value=10),
)
def test_altt_heap_expiry_matches_filter_semantics(events, delta):
    """ALTT expiry drops exactly the entries older than Δ, in any add order."""
    from repro.core.altt import AttributeLevelTupleTable

    table = AttributeLevelTupleTable(delta=delta)
    shadow = []  # (key, received_at) of retained entries
    schema = _catalog.get("R")
    sequence = 0
    for is_expire, clock in events:
        if is_expire:
            cutoff = clock - delta
            expected = sum(1 for _, at in shadow if at < cutoff)
            shadow = [(k, at) for k, at in shadow if at >= cutoff]
            assert table.expire(now=clock) == expected
        else:
            sequence += 1
            tup = Tuple.from_schema(
                schema, (1, 1), pub_time=clock, sequence=sequence
            )
            key = f"R\x1fa{sequence % 3}"
            table.add(key, tup, now=clock)
            shadow.append((key, clock))
        assert len(table) == len(shadow)
