"""Tests for the sorted identifier ring."""

import pytest

from repro.dht.hashing import IdentifierSpace
from repro.dht.ring import RingMap
from repro.errors import DuplicateNodeError, EmptyRingError, UnknownNodeError


@pytest.fixture
def ring():
    space = IdentifierSpace(8)
    ring = RingMap(space)
    for identifier in (10, 100, 200):
        ring.insert(identifier, f"n{identifier}")
    return ring


class TestRingMap:
    def test_successor_basic(self, ring):
        assert ring.successor(50) == (100, "n100")
        assert ring.successor(100) == (100, "n100")
        assert ring.successor(101) == (200, "n200")

    def test_successor_wraps(self, ring):
        assert ring.successor(201) == (10, "n10")
        assert ring.successor(0) == (10, "n10")

    def test_predecessor(self, ring):
        assert ring.predecessor(100) == (10, "n10")
        assert ring.predecessor(5) == (200, "n200")
        assert ring.predecessor(150) == (100, "n100")

    def test_empty_ring_raises(self):
        ring = RingMap(IdentifierSpace(8))
        with pytest.raises(EmptyRingError):
            ring.successor(1)
        with pytest.raises(EmptyRingError):
            ring.predecessor(1)
        with pytest.raises(EmptyRingError):
            ring.arc_length(1)

    def test_duplicate_insert_raises(self, ring):
        with pytest.raises(DuplicateNodeError):
            ring.insert(100, "other")

    def test_remove(self, ring):
        assert ring.remove(100) == "n100"
        assert ring.successor(50) == (200, "n200")
        with pytest.raises(UnknownNodeError):
            ring.remove(100)

    def test_move(self, ring):
        ring.move(100, 150)
        assert ring.get(150) == "n100"
        assert ring.get(100) is None

    def test_move_to_taken_position_rolls_back(self, ring):
        with pytest.raises(DuplicateNodeError):
            ring.move(100, 200)
        assert ring.get(100) == "n100"

    def test_contains_and_len(self, ring):
        assert 10 in ring
        assert 11 not in ring
        assert len(ring) == 3

    def test_iteration_ordered(self, ring):
        assert [identifier for identifier, _ in ring] == [10, 100, 200]
        assert ring.identifiers() == [10, 100, 200]
        assert ring.values() == ["n10", "n100", "n200"]

    def test_arc_length(self, ring):
        assert ring.arc_length(100) == 90
        assert ring.arc_length(10) == 66  # wraps from 200 to 10: 256 - 190

    def test_arc_length_single_node(self):
        ring = RingMap(IdentifierSpace(8))
        ring.insert(42, "only")
        assert ring.arc_length(42) == 256

    def test_normalization(self, ring):
        assert ring.successor(256 + 50) == (100, "n100")
