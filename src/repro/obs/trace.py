"""Trace propagation: contexts, spans, sinks and the tracer.

One *trace* follows everything a single engine operation (a tuple
publication, a query submission, a retraction) causes across the network:
the originating operation opens a **root span**, every message the
operation (transitively) sends carries a :class:`TraceContext` on its
:class:`~repro.net.messages.Envelope`, and every delivery opens a child
span on the receiving node.  The parent/child links reconstruct the full
rewriting chain of the paper's Procedure 2 — which node re-indexed the
query, where the matching tuple triggered it, and which hop produced the
answer.

Timestamps are the *logical* transport clock, so a trace taken on the
``sim`` runtime is bit-identical across reruns; on the ``asyncio`` runtime
the tracer additionally records wall-clock service time per span
(``wall_us``).  Span volume is bounded by the sink (drops are counted, not
silently lost).
"""

from __future__ import annotations

import itertools
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    TextIO,
)

from repro.errors import ObservabilityError

#: Valid values of ``RJoinConfig.observability``.
OBSERVABILITY_MODES = ("off", "on")

#: Default bound on the number of spans a sink retains / writes.
DEFAULT_MAX_SPANS = 100_000

#: Default bound on the number of trace start times the tracer remembers
#: (oldest evicted first; latency for an evicted trace is simply not
#: recorded).
DEFAULT_MAX_TRACES = 65_536


class TraceContext(NamedTuple):
    """The propagation state carried by one in-flight message.

    ``trace_id`` names the originating operation, ``span_id`` is the span
    the delivery of this message will open, ``parent_id`` is the span that
    sent it (``None`` for a root) and ``hop`` counts indexing hops from the
    root.  A named tuple rather than a frozen dataclass: one context is
    allocated per posted message, and tuple construction is several times
    cheaper than the ``object.__setattr__`` dance a frozen dataclass pays.
    """

    trace_id: str
    span_id: int
    parent_id: Optional[int]
    hop: int


@dataclass(slots=True)
class Span:
    """One recorded unit of work: a message delivery or a root operation.

    Slotted: one span is allocated (and ten attributes set) per delivery,
    and the memory sink retains up to 100k of them — slots cut both the
    per-instance footprint and the attribute-write cost on the hot path.
    """

    trace_id: str
    span_id: int
    parent_id: Optional[int]
    name: str
    node: str
    start: float
    end: float
    #: Logical time the message was handed to the transport (equals
    #: ``start`` for root spans).
    sent_at: float
    #: Routing hops the delivered message travelled (0 for root spans).
    hops: int
    #: Depth of this span in the trace tree (indexing hops from the root).
    hop: int
    #: Wall-clock handler service time in microseconds (0.0 on the
    #: deterministic runtime, where wall time would break reproducibility).
    wall_us: float = 0.0

    @property
    def duration(self) -> float:
        """Logical duration: delivery-to-handler-return time."""
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe rendering of the span (one JSONL line)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "sent_at": self.sent_at,
            "hops": self.hops,
            "hop": self.hop,
            "wall_us": self.wall_us,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        parent = data.get("parent_id")
        return cls(
            trace_id=str(data["trace_id"]),
            span_id=int(data["span_id"]),
            parent_id=None if parent is None else int(parent),
            name=str(data["name"]),
            node=str(data["node"]),
            start=float(data["start"]),
            end=float(data["end"]),
            sent_at=float(data.get("sent_at", data["start"])),
            hops=int(data.get("hops", 0)),
            hop=int(data.get("hop", 0)),
            wall_us=float(data.get("wall_us", 0.0)),
        )


class SpanSink:
    """Base class of span destinations; bounded, with a drop counter."""

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        if max_spans <= 0:
            raise ObservabilityError("max_spans must be positive")
        self.max_spans = max_spans
        self.recorded = 0
        self.dropped = 0

    def record(self, span: Span) -> None:
        """Record one finished span (drops once the bound is reached)."""
        if self.recorded >= self.max_spans:
            self.dropped += 1
            return
        self.recorded += 1
        self._store(span)

    def _store(self, span: Span) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered spans to their destination (no-op by default)."""

    def close(self) -> None:
        """Release resources held by the sink (no-op by default)."""


class MemorySink(SpanSink):
    """Keeps spans in memory; the default sink of an in-process engine."""

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        super().__init__(max_spans)
        self.spans: List[Span] = []

    def record(self, span: Span) -> None:
        """Record one finished span (drops once the bound is reached).

        Overrides the base bound-check + ``_store`` dispatch pair with one
        flat method: this is the per-span hot path of the default sink.
        """
        if self.recorded >= self.max_spans:
            self.dropped += 1
            return
        self.recorded += 1
        self.spans.append(span)

    def _store(self, span: Span) -> None:
        self.spans.append(span)

    def write_jsonl(self, path: str) -> int:
        """Dump the retained spans as JSONL; returns the span count."""
        with open(path, "w", encoding="utf-8") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.to_dict(), sort_keys=True))
                handle.write("\n")
        return len(self.spans)


class JsonlSink(SpanSink):
    """Streams spans to a JSONL file as they finish (bounded)."""

    def __init__(self, path: str, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        super().__init__(max_spans)
        self.path = path
        self._handle: Optional[TextIO] = open(path, "w", encoding="utf-8")

    def _store(self, span: Span) -> None:
        if self._handle is None:
            raise ObservabilityError(
                f"trace sink {self.path!r} is closed; no further spans "
                "can be recorded"
            )
        self._handle.write(json.dumps(span.to_dict(), sort_keys=True))
        self._handle.write("\n")

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def load_spans(path: str) -> List[Span]:
    """Read a JSONL trace file back into :class:`Span` objects."""
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(Span.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError) as exc:
                raise ObservabilityError(
                    f"{path}:{line_number}: malformed trace line ({exc})"
                ) from exc
    return spans


class Tracer:
    """Allocates contexts, tracks the active span and records finished spans.

    The tracer keeps a stack of active contexts: the engine pushes a root
    context around each operation, the messaging layer pushes the carried
    context around each delivery, and every message sent while a context is
    active becomes its child.  Handler execution is synchronous on both
    runtimes, so the stack nests correctly even under the asyncio actor
    scheduler (tasks only interleave at await points, never mid-handler).
    """

    def __init__(
        self,
        sink: SpanSink,
        clock: Callable[[], float],
        wall_clock: bool = False,
        max_traces: int = DEFAULT_MAX_TRACES,
    ) -> None:
        if max_traces <= 0:
            raise ObservabilityError("max_traces must be positive")
        self.sink = sink
        self.clock = clock
        self.wall_clock = wall_clock
        self.max_traces = max_traces
        self._span_ids = itertools.count(1)
        self._stack: List[TraceContext] = []
        self._wall_starts: List[float] = []
        self._trace_starts: Dict[str, float] = {}
        self.traces_started = 0

    # ------------------------------------------------------------------
    # context allocation
    # ------------------------------------------------------------------
    @property
    def current(self) -> Optional[TraceContext]:
        """The innermost active context (``None`` outside any span)."""
        return self._stack[-1] if self._stack else None

    def new_trace(self, trace_id: str) -> TraceContext:
        """Open a fresh trace rooted at the current logical time."""
        if trace_id not in self._trace_starts:
            if len(self._trace_starts) >= self.max_traces:
                # Evict the oldest registration (dict preserves insertion
                # order); latency against an evicted root is not recorded.
                oldest = next(iter(self._trace_starts))
                del self._trace_starts[oldest]
            self._trace_starts[trace_id] = self.clock()
            self.traces_started += 1
        return TraceContext(trace_id, next(self._span_ids), None, 0)

    def child(self, parent: TraceContext) -> TraceContext:
        """A context for a message sent from inside ``parent``'s span."""
        # Positional construction: keyword arguments route a NamedTuple
        # through Python-level argument matching, and this allocates once
        # per posted message.
        return TraceContext(
            parent.trace_id, next(self._span_ids), parent.span_id, parent.hop + 1
        )

    def trace_start(self, trace_id: str) -> Optional[float]:
        """Logical time the trace was opened (``None`` if unknown/evicted)."""
        return self._trace_starts.get(trace_id)

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def begin_span(
        self,
        context: TraceContext,
        name: str,
        node: str,
        sent_at: Optional[float] = None,
        hops: int = 0,
    ) -> Span:
        """Activate ``context``; messages sent until ``end_span`` become its
        children.

        The explicit begin/end pair exists for the per-delivery hot path:
        a generator-based context manager costs two extra frames per
        delivery, which alone pushed the ``on``-mode overhead past the
        benchmark gate.  Callers must guarantee ``end_span`` runs (use
        ``try``/``finally``); :meth:`span` wraps the pair for everyone
        outside the hot path.
        """
        start = self.clock()
        span = Span(
            trace_id=context.trace_id,
            span_id=context.span_id,
            parent_id=context.parent_id,
            name=name,
            node=node,
            start=start,
            end=start,
            sent_at=start if sent_at is None else sent_at,
            hops=hops,
            hop=context.hop,
        )
        self._stack.append(context)
        if self.wall_clock:
            self._wall_starts.append(time.perf_counter())
        return span

    def end_span(self, span: Span) -> None:
        """Close the innermost open span and record it with the sink."""
        self._stack.pop()
        if self.wall_clock:
            span.wall_us = (time.perf_counter() - self._wall_starts.pop()) * 1e6
        span.end = self.clock()
        self.sink.record(span)

    @contextmanager
    def span(
        self,
        context: TraceContext,
        name: str,
        node: str,
        sent_at: Optional[float] = None,
        hops: int = 0,
    ) -> Iterator[Span]:
        """Activate ``context`` for the duration of the block.

        Messages sent inside the block become children of ``context``; the
        finished span is recorded with the sink when the block exits (also
        on exception — a failing handler still leaves a complete trace).
        """
        span = self.begin_span(context, name, node, sent_at=sent_at, hops=hops)
        try:
            yield span
        finally:
            self.end_span(span)
