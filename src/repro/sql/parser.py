"""Tokenizer and recursive-descent parser for the supported SQL subset.

Grammar (case-insensitive keywords)::

    query      := SELECT [DISTINCT] select_list FROM relation_list
                  [WHERE predicate (AND predicate)*]
                  [WINDOW number (TUPLES | TIME)]
    select_list:= select_item (',' select_item)*
    select_item:= attr_ref | literal
    relation_list := identifier (',' identifier)*
    predicate  := operand '=' operand
    operand    := attr_ref | literal
    attr_ref   := identifier '.' identifier
    literal    := integer | float | quoted string

Both orientations of selections (``R.A = 5`` and ``5 = R.A``) are accepted,
mirroring the rewritten queries shown in the paper (e.g. ``where 3 = S.A``).
A predicate between two literals is evaluated immediately: ``5 = 5`` is
dropped, ``5 = 6`` raises :class:`~repro.errors.UnsupportedQueryError`
because a continuous query that can never be satisfied is almost certainly a
user error.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple, Union

from repro.data.schema import AttributeRef, Catalog
from repro.errors import SQLSyntaxError, UnsupportedQueryError
from repro.sql.ast import (
    Constant,
    JoinPredicate,
    Query,
    SelectionPredicate,
    WindowSpec,
)

_KEYWORDS = {
    "SELECT",
    "DISTINCT",
    "FROM",
    "WHERE",
    "AND",
    "WINDOW",
    "TUPLES",
    "TIME",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<symbol>[.,=*()])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """A single lexical token with its position (for error messages)."""

    kind: str  # 'keyword' | 'ident' | 'number' | 'string' | 'symbol' | 'eof'
    text: str
    position: int


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into tokens, raising :class:`SQLSyntaxError` on garbage."""
    tokens: List[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SQLSyntaxError(
                f"unexpected character {text[pos]!r} at position {pos}"
            )
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        value = match.group()
        if match.lastgroup == "ident":
            upper = value.upper()
            if upper in _KEYWORDS:
                tokens.append(Token("keyword", upper, match.start()))
            else:
                tokens.append(Token("ident", value, match.start()))
        elif match.lastgroup == "number":
            tokens.append(Token("number", value, match.start()))
        elif match.lastgroup == "string":
            tokens.append(Token("string", value, match.start()))
        else:
            tokens.append(Token("symbol", value, match.start()))
    tokens.append(Token("eof", "", length))
    return tokens


class _Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token], text: str):
        self._tokens = tokens
        self._text = text
        self._index = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _error(self, message: str) -> SQLSyntaxError:
        token = self._peek()
        return SQLSyntaxError(
            f"{message} at position {token.position} (near {token.text!r}) "
            f"in query: {self._text!r}"
        )

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._peek()
        if token.kind != "keyword" or token.text != keyword:
            raise self._error(f"expected {keyword}")
        return self._advance()

    def _accept_keyword(self, keyword: str) -> bool:
        token = self._peek()
        if token.kind == "keyword" and token.text == keyword:
            self._advance()
            return True
        return False

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._peek()
        if token.kind != "symbol" or token.text != symbol:
            raise self._error(f"expected {symbol!r}")
        return self._advance()

    def _accept_symbol(self, symbol: str) -> bool:
        token = self._peek()
        if token.kind == "symbol" and token.text == symbol:
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------
    # grammar productions
    # ------------------------------------------------------------------
    def parse(self) -> Query:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        select_items = self._parse_select_list()
        self._expect_keyword("FROM")
        relations = self._parse_relation_list()
        join_predicates: List[JoinPredicate] = []
        selection_predicates: List[SelectionPredicate] = []
        if self._accept_keyword("WHERE"):
            join_predicates, selection_predicates = self._parse_where()
        window = self._parse_window()
        token = self._peek()
        if token.kind != "eof":
            raise self._error("unexpected trailing input")
        return Query(
            select_items=tuple(select_items),
            relations=tuple(relations),
            join_predicates=tuple(join_predicates),
            selection_predicates=tuple(selection_predicates),
            distinct=distinct,
            window=window,
        )

    def _parse_select_list(self) -> List[Union[AttributeRef, Constant]]:
        items = [self._parse_operand()]
        while self._accept_symbol(","):
            items.append(self._parse_operand())
        return items

    def _parse_relation_list(self) -> List[str]:
        relations = [self._parse_identifier("relation name")]
        while self._accept_symbol(","):
            relations.append(self._parse_identifier("relation name"))
        return relations

    def _parse_identifier(self, what: str) -> str:
        token = self._peek()
        if token.kind != "ident":
            raise self._error(f"expected {what}")
        self._advance()
        return token.text

    def _parse_operand(self) -> Union[AttributeRef, Constant]:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return Constant(_parse_number(token.text))
        if token.kind == "string":
            self._advance()
            return Constant(_unquote(token.text))
        if token.kind == "ident":
            relation = self._advance().text
            self._expect_symbol(".")
            attribute = self._parse_identifier("attribute name")
            return AttributeRef(relation, attribute)
        raise self._error("expected an attribute reference or a literal")

    def _parse_where(
        self,
    ) -> Tuple[List[JoinPredicate], List[SelectionPredicate]]:
        joins: List[JoinPredicate] = []
        selections: List[SelectionPredicate] = []
        while True:
            left = self._parse_operand()
            self._expect_symbol("=")
            right = self._parse_operand()
            self._classify_predicate(left, right, joins, selections)
            if not self._accept_keyword("AND"):
                break
        return joins, selections

    @staticmethod
    def _classify_predicate(
        left: Union[AttributeRef, Constant],
        right: Union[AttributeRef, Constant],
        joins: List[JoinPredicate],
        selections: List[SelectionPredicate],
    ) -> None:
        if isinstance(left, AttributeRef) and isinstance(right, AttributeRef):
            joins.append(JoinPredicate(left, right))
        elif isinstance(left, AttributeRef) and isinstance(right, Constant):
            selections.append(SelectionPredicate(left, right.value))
        elif isinstance(left, Constant) and isinstance(right, AttributeRef):
            selections.append(SelectionPredicate(right, left.value))
        else:
            assert isinstance(left, Constant) and isinstance(right, Constant)
            if left.value != right.value:
                raise UnsupportedQueryError(
                    f"constant predicate {left} = {right} can never be satisfied"
                )
            # A trivially true predicate is simply dropped.

    def _parse_window(self) -> Optional[WindowSpec]:
        if not self._accept_keyword("WINDOW"):
            return None
        token = self._peek()
        if token.kind != "number":
            raise self._error("expected a window size")
        self._advance()
        size = _parse_number(token.text)
        if self._accept_keyword("TUPLES"):
            mode = "tuples"
        elif self._accept_keyword("TIME"):
            mode = "time"
        else:
            mode = "time"
        return WindowSpec(size=float(size), mode=mode)


def _parse_number(text: str) -> Any:
    """Parse a numeric literal, preferring ``int`` when exact."""
    if "." in text:
        return float(text)
    return int(text)


def _unquote(text: str) -> str:
    """Strip quotes and unescape a single-quoted SQL string literal."""
    body = text[1:-1]
    return body.replace("\\'", "'").replace("\\\\", "\\")


def parse_query(
    text: str,
    catalog: Optional[Catalog] = None,
    validate: bool = True,
) -> Query:
    """Parse SQL ``text`` into a :class:`~repro.sql.ast.Query`.

    Parameters
    ----------
    text:
        The SQL query text.
    catalog:
        When given, attribute references are validated against the catalog.
    validate:
        When true (the default), structural validation is performed
        (connected join graph, relations referenced in FROM, no self-joins).
    """
    tokens = tokenize(text)
    query = _Parser(tokens, text).parse()
    if validate:
        query.validate(catalog)
    return query
