"""Fixture histogram declaration with one schema-less entry.

The real tree declares ``HistogramSpec(...)`` entries; the rule also
accepts bare strings, which keeps this fixture dependency-free.
"""

HISTOGRAMS = (
    "answer_latency",
    # VIOLATION: declared but SUMMARY_SCHEMA has no ghost_histogram_p* keys.
    "ghost_histogram",
)
