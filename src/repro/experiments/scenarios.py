"""Declarative scenario registry for the experiment grid.

A :class:`Scenario` names a family of experiments: a base
:class:`~repro.experiments.config.ExperimentConfig`, the axis being swept,
the variants along that axis (each a bundle of config overrides), and the
strategies/seeds the grid expands over.  Scenarios are *declarative*: they
describe configurations without running anything, so the same definition
feeds the figure harness (``repro.experiments.figures``), the parallel grid
runner (``repro.experiments.parallel``) and the CLI
(``python -m repro.experiments``).

Two groups of scenarios ship by default:

* the exploratory grid of the ROADMAP — ``baseline``, ``skew-sweep``,
  ``window-churn``, ``bursty``, ``query-flood``, ``hot-key``, ``node-churn``,
  ``query-churn``, ``owner-failover``, ``latency`` and ``store-backends`` —
  stressing the system along axes the paper's Section 8 only touches
  implicitly, and
* one scenario per paper figure (``fig2`` … ``fig9``) so that the figure
  functions are thin consumers of the registry.

Every scenario expands into :class:`ScenarioCell`\\ s — one fully resolved
``ExperimentConfig`` per (variant, strategy, seed) — via
:meth:`Scenario.cells`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.data.backends import BACKEND_NAMES
from repro.errors import ExperimentError
from repro.experiments.config import (
    ChurnSpec,
    ExperimentConfig,
    QueryChurnSpec,
    is_full_scale,
)
from repro.sql.ast import WindowSpec


@dataclass(frozen=True)
class Variant:
    """One point along a scenario's sweep axis."""

    label: str
    overrides: Mapping[str, object] = field(default_factory=dict)

    def apply(self, base: ExperimentConfig) -> ExperimentConfig:
        """The base configuration with this variant's overrides applied."""
        return base.with_overrides(**dict(self.overrides))


@dataclass(frozen=True)
class ScenarioCell:
    """One fully resolved grid cell: scenario × variant × strategy × seed."""

    scenario: str
    variant: str
    strategy: str
    seed: int
    config: ExperimentConfig

    @property
    def cell_id(self) -> str:
        """Stable, filesystem-safe identifier used for checkpoint files."""
        variant = str(self.variant).replace("/", "-").replace(" ", "_")
        return f"{self.scenario}__{variant}__{self.strategy}__seed{self.seed}"


@dataclass(frozen=True)
class Scenario:
    """A named, parameterized family of experiment configurations."""

    name: str
    description: str
    axis: str
    default_base: ExperimentConfig
    default_variants: Tuple[Variant, ...]
    paper_base: Optional[ExperimentConfig] = None
    paper_variants: Optional[Tuple[Variant, ...]] = None
    strategies: Tuple[str, ...] = ("rjoin",)
    seeds: Tuple[int, ...] = (41, 42, 43)

    def base(self, full_scale: Optional[bool] = None) -> ExperimentConfig:
        """The scenario's base configuration at the requested scale."""
        if full_scale is None:
            full_scale = is_full_scale()
        if full_scale and self.paper_base is not None:
            return self.paper_base
        return self.default_base

    def variants(self, full_scale: Optional[bool] = None) -> Tuple[Variant, ...]:
        """The swept variants at the requested scale."""
        if full_scale is None:
            full_scale = is_full_scale()
        if full_scale and self.paper_variants is not None:
            return self.paper_variants
        return self.default_variants

    def variant_named(self, label: str) -> Variant:
        """Look up one variant by label (either scale)."""
        for variant in tuple(self.default_variants) + tuple(self.paper_variants or ()):
            if variant.label == label:
                return variant
        raise ExperimentError(
            f"scenario {self.name!r} has no variant {label!r}; "
            f"known: {[v.label for v in self.default_variants]}"
        )

    def config_for(
        self,
        variant: Variant,
        strategy: Optional[str] = None,
        seed: Optional[int] = None,
        overrides: Optional[Mapping[str, object]] = None,
        full_scale: Optional[bool] = None,
    ) -> ExperimentConfig:
        """Resolve one grid cell's configuration."""
        config = self.base(full_scale)
        if overrides:
            config = config.with_overrides(**dict(overrides))
        config = variant.apply(config)
        fields: Dict[str, object] = {
            "name": f"{self.name}-{variant.label}",
        }
        if strategy is not None:
            fields["strategy"] = strategy
        if seed is not None:
            fields["seed"] = seed
        return config.with_overrides(**fields)

    def cells(
        self,
        seeds: Optional[Sequence[int]] = None,
        strategies: Optional[Sequence[str]] = None,
        overrides: Optional[Mapping[str, object]] = None,
        full_scale: Optional[bool] = None,
    ) -> List[ScenarioCell]:
        """Expand the scenario into its full variant × strategy × seed grid."""
        seeds = tuple(seeds) if seeds is not None else self.seeds
        strategies = (
            tuple(strategies) if strategies is not None else self.strategies
        )
        cells: List[ScenarioCell] = []
        for variant in self.variants(full_scale):
            for strategy in strategies:
                for seed in seeds:
                    cells.append(
                        ScenarioCell(
                            scenario=self.name,
                            variant=variant.label,
                            strategy=strategy,
                            seed=int(seed),
                            config=self.config_for(
                                variant,
                                strategy=strategy,
                                seed=int(seed),
                                overrides=overrides,
                                full_scale=full_scale,
                            ),
                        )
                    )
        return cells


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
SCENARIOS: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add ``scenario`` to the registry (last registration wins)."""
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ExperimentError(
            f"unknown scenario {name!r}; known scenarios: {known}"
        ) from None


def scenario_names() -> List[str]:
    """Sorted names of every registered scenario."""
    return sorted(SCENARIOS)


def _sweep(
    parameter: str,
    values: Sequence[object],
    label: Optional[str] = None,
    extra: Optional[Mapping[str, object]] = None,
) -> Tuple[Variant, ...]:
    """Variants sweeping one config field over ``values``."""
    variants = []
    for value in values:
        overrides = {parameter: value}
        if extra:
            overrides.update(extra)
        variants.append(
            Variant(label=f"{label or parameter}={value}", overrides=overrides)
        )
    return tuple(variants)


def _window_sweep(sizes: Sequence[int]) -> Tuple[Variant, ...]:
    return tuple(
        Variant(
            label=f"W={size}",
            overrides={"window": WindowSpec(size=float(size), mode="tuples")},
        )
        for size in sizes
    )


# ---------------------------------------------------------------------------
# exploratory grid scenarios (the ROADMAP's "as many scenarios as you can
# imagine" backlog starts here)
# ---------------------------------------------------------------------------
register(
    Scenario(
        name="baseline",
        description=(
            "All four indexing strategies on the default Section 8 workload; "
            "the sanity anchor every other scenario is compared against."
        ),
        axis="strategy",
        default_base=ExperimentConfig(
            name="baseline",
            num_nodes=60,
            num_queries=150,
            num_tuples=80,
            warmup_tuples=20,
        ),
        default_variants=(Variant(label="default"),),
        paper_base=ExperimentConfig.paper_scale(name="baseline"),
        strategies=("worst", "random", "rjoin", "first"),
    )
)

register(
    Scenario(
        name="skew-sweep",
        description=(
            "Zipf theta swept from uniform (0.0) past the paper's default "
            "(0.9) into extreme skew (1.2)."
        ),
        axis="zipf_theta",
        default_base=ExperimentConfig(
            name="skew-sweep",
            num_nodes=60,
            num_queries=120,
            num_tuples=80,
            warmup_tuples=20,
        ),
        default_variants=_sweep(
            "zipf_theta", (0.0, 0.3, 0.6, 0.9, 1.2), label="theta"
        ),
        paper_base=ExperimentConfig.paper_scale(name="skew-sweep"),
    )
)

register(
    Scenario(
        name="window-churn",
        description=(
            "Sliding windows of shrinking size over a long tuple stream: "
            "garbage-collection pressure and storage churn."
        ),
        axis="window",
        default_base=ExperimentConfig(
            name="window-churn",
            num_nodes=60,
            num_queries=100,
            num_tuples=120,
            warmup_tuples=20,
        ),
        default_variants=_window_sweep((10, 25, 50, 100)),
        paper_base=ExperimentConfig.paper_scale(name="window-churn"),
    )
)

register(
    Scenario(
        name="bursty",
        description=(
            "High-rate batched arrivals through publish_batch: bursts of "
            "increasing size with a single network drain per burst."
        ),
        axis="batch_size",
        default_base=ExperimentConfig(
            name="bursty",
            num_nodes=60,
            num_queries=120,
            num_tuples=120,
            warmup_tuples=20,
            publish_mode="batch",
        ),
        default_variants=_sweep("batch_size", (5, 20, 50)),
        paper_base=ExperimentConfig.paper_scale(
            name="bursty", publish_mode="batch"
        ),
    )
)

register(
    Scenario(
        name="query-flood",
        description=(
            "Queries vastly outnumber tuples: indexing cost dominates and "
            "per-tuple fan-out grows with the indexed population."
        ),
        axis="num_queries",
        default_base=ExperimentConfig(
            name="query-flood",
            num_nodes=60,
            num_queries=200,
            num_tuples=20,
            warmup_tuples=10,
        ),
        default_variants=_sweep("num_queries", (200, 400, 800)),
        paper_base=ExperimentConfig.paper_scale(name="query-flood"),
        # Million-query matching (PR 8): the full-scale sweep pushes the
        # resident population to 10⁵–10⁶ queries — feasible only because the
        # predicate-aware query index keeps per-arrival matching sublinear
        # and shared rewritten-query state collapses duplicates.  The
        # ``q100000-private`` variant re-runs the 10⁵ point with sharing
        # disabled so the two optimisations can be separated in the report.
        paper_variants=_sweep("num_queries", (100_000, 300_000, 1_000_000))
        + (
            Variant(
                label="q100000-private",
                overrides={
                    "num_queries": 100_000,
                    "shared_query_state": False,
                },
            ),
        ),
    )
)

register(
    Scenario(
        name="hot-key",
        description=(
            "Adversarial value skew: a growing fraction of tuples carries "
            "only the hottest values, hammering the nodes that own them."
        ),
        axis="hot_key_fraction",
        default_base=ExperimentConfig(
            name="hot-key",
            num_nodes=60,
            num_queries=120,
            num_tuples=80,
            warmup_tuples=20,
            hot_value_count=2,
        ),
        default_variants=_sweep(
            "hot_key_fraction", (0.0, 0.25, 0.5, 0.9), label="hot"
        ),
        paper_base=ExperimentConfig.paper_scale(
            name="hot-key", hot_value_count=2
        ),
    )
)

register(
    Scenario(
        name="node-churn",
        description=(
            "Live ring membership: nodes join, leave gracefully and crash "
            "mid-stream; measures re-homing cost, lost state and answer "
            "completeness under topology change."
        ),
        axis="churn",
        default_base=ExperimentConfig(
            name="node-churn",
            num_nodes=40,
            num_queries=100,
            num_tuples=100,
            warmup_tuples=20,
        ),
        default_variants=(
            Variant(label="stable", overrides={"churn": None}),
            Variant(
                label="join",
                overrides={"churn": ChurnSpec(join_every=20)},
            ),
            Variant(
                label="leave",
                overrides={"churn": ChurnSpec(leave_every=20)},
            ),
            Variant(
                label="crash",
                overrides={"churn": ChurnSpec(crash_every=25)},
            ),
            Variant(
                label="mixed",
                overrides={
                    "churn": ChurnSpec(
                        join_every=20, leave_every=30, crash_every=50
                    )
                },
            ),
        ),
        paper_base=ExperimentConfig.paper_scale(name="node-churn"),
        paper_variants=(
            Variant(label="stable", overrides={"churn": None}),
            Variant(
                label="join",
                overrides={"churn": ChurnSpec(join_every=50)},
            ),
            Variant(
                label="leave",
                overrides={"churn": ChurnSpec(leave_every=50)},
            ),
            Variant(
                label="crash",
                overrides={"churn": ChurnSpec(crash_every=100)},
            ),
            Variant(
                label="mixed",
                overrides={
                    "churn": ChurnSpec(
                        join_every=50, leave_every=75, crash_every=150
                    )
                },
            ),
        ),
    )
)

register(
    Scenario(
        name="query-churn",
        description=(
            "Continuous queries come and go mid-stream: retraction through "
            "the ring (zero-orphan purge + vacuum), optionally followed by "
            "re-submission; composes with node churn into the full "
            "elasticity story."
        ),
        axis="query_churn",
        default_base=ExperimentConfig(
            name="query-churn",
            num_nodes=40,
            num_queries=60,
            num_tuples=100,
            warmup_tuples=20,
        ),
        default_variants=(
            Variant(label="stable", overrides={"query_churn": None}),
            Variant(
                label="remove",
                overrides={
                    "query_churn": QueryChurnSpec(
                        remove_every=10, resubmit=False
                    )
                },
            ),
            Variant(
                label="churn",
                overrides={"query_churn": QueryChurnSpec(remove_every=10)},
            ),
            Variant(
                label="churn+nodes",
                overrides={
                    "query_churn": QueryChurnSpec(remove_every=10),
                    "churn": ChurnSpec(join_every=25, leave_every=40),
                },
            ),
        ),
        paper_base=ExperimentConfig.paper_scale(name="query-churn"),
        paper_variants=(
            Variant(label="stable", overrides={"query_churn": None}),
            Variant(
                label="remove",
                overrides={
                    "query_churn": QueryChurnSpec(
                        remove_every=50, resubmit=False
                    )
                },
            ),
            Variant(
                label="churn",
                overrides={"query_churn": QueryChurnSpec(remove_every=50)},
            ),
            Variant(
                label="churn+nodes",
                overrides={
                    "query_churn": QueryChurnSpec(remove_every=50),
                    "churn": ChurnSpec(join_every=100, leave_every=150),
                },
            ),
            # Million-query churn (PR 8): retraction and re-submission
            # against a 10⁵/10⁶-strong resident population — the removal
            # walk and the re-submitted queries' indexing both ride the
            # predicate-aware query index, so the churn cost must stay flat
            # relative to the 2·10⁴ baseline above.
            Variant(
                label="churn-q100000",
                overrides={
                    "num_queries": 100_000,
                    "query_churn": QueryChurnSpec(remove_every=50),
                },
            ),
            Variant(
                label="churn-q1000000",
                overrides={
                    "num_queries": 1_000_000,
                    "query_churn": QueryChurnSpec(remove_every=50),
                },
            ),
        ),
    )
)

register(
    Scenario(
        name="owner-failover",
        description=(
            "Nodes crash mid-stream while owning live query handles: with "
            "handle replication the successor re-registers them and answers "
            "re-route; without it every crashed owner's future answers are "
            "dropped.  Compare answers / failover_reregistrations / "
            "answers_rerouted across the two variants."
        ),
        axis="owner_failover",
        default_base=ExperimentConfig(
            name="owner-failover",
            num_nodes=40,
            num_queries=80,
            num_tuples=100,
            warmup_tuples=20,
            churn=ChurnSpec(crash_every=25, min_nodes=8),
        ),
        default_variants=(
            Variant(label="failover", overrides={"owner_failover": True}),
            Variant(
                label="no-failover", overrides={"owner_failover": False}
            ),
        ),
        paper_base=ExperimentConfig.paper_scale(
            name="owner-failover",
            churn=ChurnSpec(crash_every=100, min_nodes=100),
        ),
    )
)


def _backend_variants(window_size: int) -> Tuple[Variant, ...]:
    """One variant per registered tuple-store backend, under one GC window."""
    window = WindowSpec(size=float(window_size), mode="tuples")
    return tuple(
        Variant(
            label=backend,
            overrides={"store_backend": backend, "window": window},
        )
        for backend in BACKEND_NAMES
    )


register(
    Scenario(
        name="store-backends",
        description=(
            "window-churn-style GC pressure replayed across the pluggable "
            "tuple-store backends (memory / sqlite / append-log): same "
            "workload, same sliding window, different storage engines — "
            "answers must be identical, storage and wall-clock differ."
        ),
        axis="store_backend",
        default_base=ExperimentConfig(
            name="store-backends",
            num_nodes=60,
            num_queries=100,
            num_tuples=120,
            warmup_tuples=20,
        ),
        default_variants=_backend_variants(window_size=25),
        paper_base=ExperimentConfig.paper_scale(name="store-backends"),
        paper_variants=_backend_variants(window_size=100),
    )
)

register(
    Scenario(
        name="latency",
        description=(
            "Network asynchrony swept independently of load: hop delay and "
            "per-message jitter separate algorithmic cost from delivery "
            "interleaving (ALTT/Δ pressure)."
        ),
        axis="hop_delay/delay_jitter",
        default_base=ExperimentConfig(
            name="latency",
            num_nodes=60,
            num_queries=120,
            num_tuples=80,
            warmup_tuples=20,
        ),
        default_variants=(
            Variant(label="hop=0.1", overrides={"hop_delay": 0.1}),
            Variant(label="hop=1", overrides={"hop_delay": 1.0}),
            Variant(label="hop=5", overrides={"hop_delay": 5.0}),
            Variant(
                label="hop=1+jitter=2",
                overrides={"hop_delay": 1.0, "delay_jitter": 2.0},
            ),
            Variant(
                label="hop=1+jitter=10",
                overrides={"hop_delay": 1.0, "delay_jitter": 10.0},
            ),
        ),
        paper_base=ExperimentConfig.paper_scale(name="latency"),
    )
)


# ---------------------------------------------------------------------------
# one scenario per paper figure — the figure harness consumes these
# ---------------------------------------------------------------------------
register(
    Scenario(
        name="fig2",
        description="Effect of taking RIC information into account (Figure 2).",
        axis="strategy",
        default_base=ExperimentConfig(
            name="fig2",
            num_nodes=50,
            num_queries=100,
            num_tuples=200,
            checkpoints=[50, 100, 200],
            warmup_tuples=60,
        ),
        default_variants=(Variant(label="default"),),
        paper_base=ExperimentConfig(
            name="fig2",
            num_nodes=1000,
            num_queries=20000,
            num_tuples=400,
            checkpoints=[50, 100, 200, 400],
            warmup_tuples=200,
        ),
        strategies=("worst", "random", "rjoin"),
        seeds=(42,),
    )
)

register(
    Scenario(
        name="fig3",
        description="Effect of increasing the number of incoming tuples (Figure 3).",
        axis="num_tuples",
        default_base=ExperimentConfig(
            name="fig3",
            num_nodes=100,
            num_queries=400,
            num_tuples=1,
            warmup_tuples=40,
        ),
        default_variants=_sweep("num_tuples", (20, 40, 80, 160)),
        paper_base=ExperimentConfig(
            name="fig3",
            num_nodes=1000,
            num_queries=20000,
            num_tuples=1,
            warmup_tuples=200,
        ),
        paper_variants=_sweep("num_tuples", (40, 80, 160, 320, 640, 1280, 2560)),
        seeds=(42,),
    )
)

register(
    Scenario(
        name="fig4",
        description="Effect of increasing the number of indexed queries (Figure 4).",
        axis="num_queries",
        default_base=ExperimentConfig(
            name="fig4",
            num_nodes=100,
            num_queries=1,
            num_tuples=60,
            warmup_tuples=40,
        ),
        default_variants=_sweep("num_queries", (100, 200, 400, 800)),
        paper_base=ExperimentConfig(
            name="fig4",
            num_nodes=1000,
            num_queries=1,
            num_tuples=1000,
            warmup_tuples=200,
        ),
        paper_variants=_sweep("num_queries", (2000, 4000, 8000, 16000, 32000)),
        seeds=(42,),
    )
)

register(
    Scenario(
        name="fig5",
        description="Effect of skewed data (Figure 5).",
        axis="zipf_theta",
        default_base=ExperimentConfig(
            name="fig5",
            num_nodes=100,
            num_queries=300,
            num_tuples=100,
            warmup_tuples=0,
        ),
        default_variants=_sweep("zipf_theta", (0.3, 0.5, 0.7, 0.9), label="theta"),
        paper_base=ExperimentConfig(
            name="fig5",
            num_nodes=1000,
            num_queries=20000,
            num_tuples=1000,
            warmup_tuples=0,
        ),
        seeds=(42,),
    )
)

register(
    Scenario(
        name="fig6",
        description="Effect of having more complex queries (Figure 6).",
        axis="join_arity",
        default_base=ExperimentConfig(
            name="fig6",
            num_nodes=100,
            num_queries=200,
            num_tuples=80,
            warmup_tuples=40,
        ),
        default_variants=_sweep("join_arity", (4, 6, 8)),
        paper_base=ExperimentConfig(
            name="fig6",
            num_nodes=1000,
            num_queries=20000,
            num_tuples=1000,
            warmup_tuples=200,
        ),
        seeds=(42,),
    )
)

register(
    Scenario(
        name="fig7",
        description="Effect of the sliding window size (Figures 7 and 8).",
        axis="window",
        default_base=ExperimentConfig(
            name="fig7",
            num_nodes=100,
            num_queries=250,
            num_tuples=200,
            warmup_tuples=40,
        ),
        default_variants=_window_sweep((25, 50, 100, 200)),
        paper_base=ExperimentConfig(
            name="fig7",
            num_nodes=1000,
            num_queries=20000,
            num_tuples=1000,
            warmup_tuples=200,
        ),
        paper_variants=_window_sweep((50, 100, 200, 400, 1000)),
        seeds=(42,),
    )
)

register(
    Scenario(
        name="fig9",
        description="Effect of id movement (Figure 9).",
        axis="id_movement",
        default_base=ExperimentConfig(
            name="fig9",
            num_nodes=100,
            num_queries=300,
            num_tuples=150,
            warmup_tuples=40,
        ),
        default_variants=(
            Variant(label="without", overrides={"id_movement": False}),
            Variant(label="with", overrides={"id_movement": True}),
        ),
        paper_base=ExperimentConfig(
            name="fig9",
            num_nodes=1000,
            num_queries=20000,
            num_tuples=1000,
            warmup_tuples=200,
        ),
        seeds=(42,),
    )
)
