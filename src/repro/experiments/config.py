"""Experiment configuration.

The paper's experiments run on 10³ nodes with 2·10⁴ continuous queries and up
to 2 560 incoming tuples.  A pure-Python simulation cannot complete that in
benchmark-friendly time, so every figure uses a *reduced default scale* that
preserves the qualitative shapes (who wins, monotonicity, distribution
patterns) and can be switched to the paper scale by setting the environment
variable ``REPRO_FULL_SCALE=1`` (or by passing explicit overrides to the
figure functions).  EXPERIMENTS.md records the scale used for the reported
numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.data.backends import BACKEND_NAMES, DEFAULT_BACKEND
from repro.errors import ExperimentError
from repro.net.runtime import DEFAULT_TRANSPORT, TRANSPORT_NAMES
from repro.obs.trace import OBSERVABILITY_MODES
from repro.sql.ast import WindowSpec

FULL_SCALE_ENV = "REPRO_FULL_SCALE"


def is_full_scale() -> bool:
    """Whether the paper-scale experiment sizes were requested."""
    return os.environ.get(FULL_SCALE_ENV, "").strip() not in ("", "0", "false", "no")


@dataclass(frozen=True)
class ChurnSpec:
    """Membership-churn schedule of one experiment.

    Rates are expressed per published (measured) tuple: ``join_every=20``
    triggers one node join after tuples 20, 40, 60, … of the tuple phase.
    The runner translates the schedule into kernel-scheduled membership
    events that fire ``op_delay`` simulated time units after the triggering
    publication — i.e. while the *next* publication's messages are in
    flight, which is what makes crashes actually destroy in-flight traffic.

    ``graceful`` controls whether scheduled leaves hand their state off
    (cooperative departure) or behave like crashes.  ``min_nodes`` /
    ``max_nodes`` bound the ring size: events that would cross a bound turn
    into no-ops.
    """

    join_every: int = 0
    leave_every: int = 0
    crash_every: int = 0
    start_after: int = 0
    op_delay: float = 0.5
    graceful: bool = True
    min_nodes: int = 2
    max_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("join_every", "leave_every", "crash_every", "start_after"):
            if getattr(self, name) < 0:
                raise ExperimentError(f"{name} must be non-negative")
        if self.op_delay < 0:
            raise ExperimentError("op_delay must be non-negative")
        if self.min_nodes < 1:
            raise ExperimentError("min_nodes must be at least one")
        if self.max_nodes is not None and self.max_nodes < self.min_nodes:
            raise ExperimentError("max_nodes must be >= min_nodes")

    @property
    def enabled(self) -> bool:
        """Whether this schedule produces any events at all."""
        return bool(self.join_every or self.leave_every or self.crash_every)

    def events_for(self, num_tuples: int) -> List[Tuple[int, str]]:
        """The deterministic ``(tuple index, op kind)`` schedule of a run.

        Event kinds due at the same index fire in ``join``, ``leave``,
        ``crash`` order so the schedule is reproducible.
        """
        events: List[Tuple[int, str]] = []
        for kind, every in (
            ("join", self.join_every),
            ("leave", self.leave_every),
            ("crash", self.crash_every),
        ):
            if not every:
                continue
            index = max(self.start_after, 0) + every
            while index <= num_tuples:
                events.append((index, kind))
                index += every
        order = {"join": 0, "leave": 1, "crash": 2}
        events.sort(key=lambda event: (event[0], order[event[1]]))
        return events


@dataclass(frozen=True)
class QueryChurnSpec:
    """Query-lifecycle churn schedule of one experiment.

    Rates are expressed per published (measured) tuple, mirroring
    :class:`ChurnSpec`: ``remove_every=10`` retracts one continuous query
    after tuples 10, 20, 30, … of the tuple phase.  ``resubmit=True``
    immediately re-submits an equivalent fresh query (same SQL, new handle
    and insertion time) so the active population stays constant — the
    "mixed query churn" workload; ``resubmit=False`` drains the population
    towards ``min_queries`` instead.  ``target`` picks the victim: the
    ``oldest`` active query (default — deterministic), the ``newest``, or
    a seeded ``random`` choice.
    """

    remove_every: int = 0
    resubmit: bool = True
    start_after: int = 0
    target: str = "oldest"
    min_queries: int = 0

    def __post_init__(self) -> None:
        for name in ("remove_every", "start_after", "min_queries"):
            if getattr(self, name) < 0:
                raise ExperimentError(f"{name} must be non-negative")
        if self.target not in ("oldest", "newest", "random"):
            raise ExperimentError(
                "target must be 'oldest', 'newest' or 'random', "
                f"got {self.target!r}"
            )

    @property
    def enabled(self) -> bool:
        """Whether this schedule removes any query at all."""
        return bool(self.remove_every)

    def events_for(self, num_tuples: int) -> List[int]:
        """The deterministic tuple indices after which one removal fires."""
        if not self.remove_every:
            return []
        events: List[int] = []
        index = max(self.start_after, 0) + self.remove_every
        while index <= num_tuples:
            events.append(index)
            index += self.remove_every
        return events


@dataclass
class ExperimentConfig:
    """Parameters of one experiment run."""

    name: str = "experiment"
    # Network ----------------------------------------------------------------
    num_nodes: int = 100
    #: Node runtime the engine executes on: ``sim`` (deterministic
    #: discrete-event kernel, reproducible traffic/placement numbers) or
    #: ``asyncio`` (concurrent actor tasks; answer bags identical, event
    #: interleavings not).  Scenario defaults stay on ``sim``.
    runtime: str = DEFAULT_TRANSPORT
    strategy: str = "rjoin"
    id_movement: bool = False
    #: Simulated time one routing hop takes and the extra per-message random
    #: delay in ``[0, delay_jitter]`` — the knobs of the ``latency`` scenario,
    #: separating algorithmic load from network asynchrony.
    hop_delay: float = 1.0
    delay_jitter: float = 0.0
    #: Membership churn schedule (None: the ring is static for the whole run).
    churn: Optional[ChurnSpec] = None
    #: Query-lifecycle churn schedule (None: queries are only ever added) —
    #: composes freely with node churn into the full elasticity story.
    query_churn: Optional[QueryChurnSpec] = None
    #: Whether query-handle registrations are replicated to the owner's ring
    #: successor so owner departures fail over instead of dropping answers
    #: (the axis of the ``owner-failover`` scenario).
    owner_failover: bool = True
    #: Whether canonically equal rewritten-query states collapse into one
    #: shared record with a subscriber list (the million-query matching
    #: optimisation) — disable to measure the per-query-private baseline.
    shared_query_state: bool = True
    #: Node-local tuple-store backend (``memory`` / ``sqlite`` /
    #: ``append-log``) — the axis of the ``store-backends`` scenario.
    store_backend: str = DEFAULT_BACKEND
    #: Append-log compaction knobs (tombstone floor and dead fraction),
    #: sweepable by the store-backends benchmark; only meaningful with
    #: ``store_backend="append-log"``.
    append_log_compact_min_dead: int = 64
    append_log_compact_fraction: float = 0.5
    # Workload ---------------------------------------------------------------
    num_queries: int = 500
    num_tuples: int = 100
    num_relations: int = 10
    attributes_per_relation: int = 10
    value_domain: int = 100
    zipf_theta: float = 0.9
    join_arity: int = 4
    window: Optional[WindowSpec] = None
    distinct: bool = False
    # Arrival pattern ---------------------------------------------------------
    #: ``"per-tuple"`` publishes (and drains) one tuple at a time, mirroring
    #: the paper's steady arrivals; ``"batch"`` publishes bursts of
    #: ``batch_size`` tuples through ``RJoinEngine.publish_batch`` (one drain
    #: per burst), modelling high-rate batched arrivals.
    publish_mode: str = "per-tuple"
    batch_size: int = 1
    # Adversarial value skew ---------------------------------------------------
    #: Fraction of tuples whose values are forced onto the hottest keys (see
    #: :class:`repro.workload.generator.WorkloadSpec`).
    hot_key_fraction: float = 0.0
    hot_value_count: int = 1
    # Warm-up -------------------------------------------------------------------
    #: Tuples published *before* the queries are submitted.  They train the
    #: rate-of-incoming-tuple observations (RIC for RJoin, the oracle for the
    #: Worst baseline) so that indexing decisions are informed, mirroring the
    #: paper's assumption that nodes "observe what has happened during the
    #: last time window".  Warm-up load is excluded from the reported metrics.
    warmup_tuples: int = 0
    # Instrumentation ----------------------------------------------------------
    checkpoints: List[int] = field(default_factory=list)
    capture_per_tuple: bool = False
    #: Observability mode of the engine (``off`` / ``on``); ``on`` records
    #: per-delivery spans and the latency/load histograms whose percentiles
    #: land in the summary (``answer_latency_p95`` and friends).
    observability: str = "off"
    #: With ``observability="on"``, stream spans to this JSONL file.
    trace_path: Optional[str] = None
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ExperimentError("num_nodes must be positive")
        if self.runtime not in TRANSPORT_NAMES:
            known = ", ".join(TRANSPORT_NAMES)
            raise ExperimentError(
                f"unknown runtime {self.runtime!r}; known runtimes: {known}"
            )
        if self.num_queries < 0 or self.num_tuples < 0:
            raise ExperimentError("workload sizes must be non-negative")
        if self.warmup_tuples < 0:
            raise ExperimentError("warmup_tuples must be non-negative")
        if self.join_arity < 2:
            raise ExperimentError("experiments need at least two-way joins")
        if self.publish_mode not in ("per-tuple", "batch"):
            raise ExperimentError(
                "publish_mode must be 'per-tuple' or 'batch', "
                f"got {self.publish_mode!r}"
            )
        if self.batch_size < 1:
            raise ExperimentError("batch_size must be at least one tuple")
        if self.observability not in OBSERVABILITY_MODES:
            known = ", ".join(OBSERVABILITY_MODES)
            raise ExperimentError(
                f"unknown observability mode {self.observability!r}; "
                f"known modes: {known}"
            )
        if not 0.0 <= self.hot_key_fraction <= 1.0:
            raise ExperimentError("hot_key_fraction must lie in [0, 1]")
        if self.hop_delay < 0 or self.delay_jitter < 0:
            raise ExperimentError("hop_delay and delay_jitter must be non-negative")
        if self.churn is not None and not isinstance(self.churn, ChurnSpec):
            raise ExperimentError("churn must be a ChurnSpec (or None)")
        if self.query_churn is not None and not isinstance(
            self.query_churn, QueryChurnSpec
        ):
            raise ExperimentError(
                "query_churn must be a QueryChurnSpec (or None)"
            )
        if self.store_backend not in BACKEND_NAMES:
            known = ", ".join(BACKEND_NAMES)
            raise ExperimentError(
                f"unknown store backend {self.store_backend!r}; known: {known}"
            )
        if self.append_log_compact_min_dead < 1:
            raise ExperimentError(
                "append_log_compact_min_dead must be at least 1"
            )
        if not 0.0 < self.append_log_compact_fraction <= 1.0:
            raise ExperimentError(
                "append_log_compact_fraction must lie in (0, 1]"
            )
        for checkpoint in self.checkpoints:
            if checkpoint <= 0 or checkpoint > self.num_tuples:
                raise ExperimentError(
                    f"checkpoint {checkpoint} outside (0, {self.num_tuples}]"
                )

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """A copy of the configuration with the given fields replaced."""
        return replace(self, **overrides)

    @classmethod
    def paper_scale(cls, **overrides) -> "ExperimentConfig":
        """The sizes used by the paper (10³ nodes, 2·10⁴ queries)."""
        config = cls(
            name="paper-scale",
            num_nodes=1000,
            num_queries=20000,
            num_tuples=1000,
        )
        return config.with_overrides(**overrides) if overrides else config

    @classmethod
    def default_scale(cls, **overrides) -> "ExperimentConfig":
        """The reduced scale used by the benchmark harness by default."""
        config = cls(
            name="default-scale",
            num_nodes=100,
            num_queries=400,
            num_tuples=100,
        )
        return config.with_overrides(**overrides) if overrides else config
