"""Figure 8 — cumulative load created with each new tuple per window size.

Regenerates the cumulative query-processing-load and storage-load curves,
one per sliding-window size, sampled after every published tuple.

Expected shape (paper): every curve is non-decreasing; larger windows
accumulate load faster, so the curves are ordered by window size, and small
windows keep the final cumulative load substantially lower.
"""

import pytest

from repro.experiments.figures import figure8


@pytest.mark.benchmark(group="figure8")
def test_figure8_cumulative_load(benchmark):
    result = benchmark.pedantic(figure8, rounds=1, iterations=1)
    print()
    print(result.to_text())

    sizes = result.x_values
    final_qpl = result.series["final_cumulative_qpl"]
    final_storage = result.series["final_cumulative_storage"]

    # Larger windows accumulate more load (compare the extremes).
    assert final_qpl[-1] > final_qpl[0]
    assert final_storage[-1] > final_storage[0]

    for size in sizes:
        qpl_curve = result.distributions[f"cumulative_qpl_W{size}"]
        storage_curve = result.distributions[f"cumulative_storage_W{size}"]
        # Cumulative curves are non-decreasing and have one point per tuple.
        assert qpl_curve == sorted(qpl_curve)
        assert storage_curve == sorted(storage_curve)
        assert len(qpl_curve) == len(storage_curve)
