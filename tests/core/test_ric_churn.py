"""Churn-aware RIC: eager candidate-table invalidation on departures.

Candidate-table entries pointing at a departed node used to be rejected only
*lazily* — by the ownership check in ``RJoinNode._send_query`` at the moment
a one-hop shortcut was attempted.  Membership events now invalidate those
entries eagerly, and every node counts the stale one-hop attempts that slip
through (``RJoinNode.stale_one_hop_attempts``) as the regression probe.
"""

from __future__ import annotations

import pytest

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.core.keys import attribute_key
from repro.core.protocol import QueryState
from repro.core.ric import CandidateTable, RicEntry
from repro.workload.generator import WorkloadGenerator, WorkloadSpec


def entry(key_text: str, address: str, observed_at: float = 0.0) -> RicEntry:
    return RicEntry(
        key_text=key_text, rate=1.0, address=address, observed_at=observed_at
    )


class TestCandidateTableInvalidation:
    def test_invalidate_address_removes_only_matching_entries(self):
        table = CandidateTable()
        table.update(entry("k1", "node-1"))
        table.update(entry("k2", "node-2"))
        table.update(entry("k3", "node-1"))
        assert table.invalidate_address("node-1") == 2
        assert len(table) == 1
        assert table.lookup("k2", now=0.0) is not None
        assert table.lookup("k1", now=0.0) is None
        assert table.invalidate_address("node-1") == 0


def build_busy_engine(num_nodes: int = 16, seed: int = 5):
    """An engine whose candidate tables are warm (RIC strategy, traffic run)."""
    spec = WorkloadSpec(
        num_relations=4,
        attributes_per_relation=3,
        value_domain=4,
        join_arity=3,
        seed=seed,
    )
    generator = WorkloadGenerator(spec)
    engine = RJoinEngine(RJoinConfig(num_nodes=num_nodes, strategy="rjoin", seed=seed))
    engine.register_catalog(generator.catalog)
    for query in generator.generate_queries(8):
        engine.submit(query)
    for generated in generator.generate_tuples(30):
        engine.publish(generated.relation, generated.values)
    return engine, generator


def total_stale_attempts(engine: RJoinEngine) -> int:
    return sum(node.stale_one_hop_attempts for node in engine.nodes.values())


def cached_addresses(engine: RJoinEngine) -> set:
    return {
        cached.address
        for node in engine.nodes.values()
        for cached in node.candidate_table._entries.values()
    }


class TestEagerInvalidationOnMembership:
    @pytest.mark.parametrize("departure", ["leave", "crash"])
    def test_departure_purges_candidate_tables(self, departure):
        engine, generator = build_busy_engine()
        assert cached_addresses(engine), "warm-up left no RIC state to test"
        victim = "node-4"
        if departure == "leave":
            engine.remove_node(victim, graceful=True)
        else:
            engine.crash_node(victim)
        assert victim not in cached_addresses(engine)

    @pytest.mark.parametrize("departure", ["leave", "crash"])
    def test_no_stale_one_hop_attempts_after_departures(self, departure):
        """Regression: traffic after a departure never hits a stale address."""
        engine, generator = build_busy_engine()
        for victim in ("node-2", "node-9"):
            if departure == "leave":
                engine.remove_node(victim, graceful=True)
            else:
                engine.crash_node(victim)
        for query in generator.generate_queries(6):
            engine.submit(query)
        for generated in generator.generate_tuples(40):
            engine.publish(generated.relation, generated.values)
        assert total_stale_attempts(engine) == 0
        assert engine.metrics_summary()["stale_one_hop_attempts"] == 0.0

    def test_counter_detects_surviving_stale_entry(self):
        """The probe itself works: a stale one-hop address is counted.

        Bypasses the eager invalidation by sending with an explicit
        ``known_address`` of a departed node — exactly the situation the
        lazy ownership check used to absorb silently.
        """
        engine, generator = build_busy_engine()
        victim = engine.crash_node("node-4")
        sender = engine.nodes["node-1"]
        query = next(iter(generator.generate_queries(1)))
        state = QueryState(
            query_id="probe#1",
            owner="node-1",
            query=query.validate(engine.catalog),
            insertion_time=engine.now,
            is_input=True,
        )
        relation = query.relations[0]
        key = attribute_key(relation, engine.catalog.get(relation).attributes[0])
        sender._send_query(state, is_input=True, key=key, known_address=victim)
        engine.run()
        assert sender.stale_one_hop_attempts == 1
        assert engine.metrics_summary()["stale_one_hop_attempts"] == 1.0
        # The engine-wide counter is monotone: attempts recorded by a node
        # that itself departs later must not vanish from the metric.
        engine.crash_node("node-1")
        assert engine.metrics_summary()["stale_one_hop_attempts"] == 1.0
