"""Priority-queue discrete-event simulation kernel.

Every interaction in the simulated network — a message delivery, a timer, a
garbage-collection sweep — is an *event*: a callback scheduled at a simulated
time.  The kernel pops events in time order (ties broken by insertion order,
which keeps runs fully deterministic for a fixed seed) and advances the
global clock.

The kernel is deliberately minimal: it knows nothing about Chord or RJoin.
The DHT messaging API (:mod:`repro.dht.api`) schedules message deliveries on
it, and the engine (:mod:`repro.core.engine`) advances it between tuple
publications.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError


@dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry: (time, sequence) ordering, payload not compared."""

    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    fired: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`SimulationKernel.schedule_at`, allows cancellation."""

    __slots__ = ("_event", "_kernel")

    def __init__(self, event: _ScheduledEvent, kernel: "SimulationKernel") -> None:
        self._event = event
        self._kernel = kernel

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        event = self._event
        if event.fired or event.cancelled:
            return
        event.cancelled = True
        self._kernel._live_events -= 1

    @property
    def time(self) -> float:
        """Simulated time at which the event is scheduled."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled


class SimulationKernel:
    """Deterministic discrete-event scheduler with a floating-point clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._heap: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._running = False
        self._live_events = 0  # heap entries that are neither cancelled nor fired

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time`` without processing events.

        Used by the engine to model wall-clock gaps between tuple
        publications.  Pending events scheduled before ``time`` are *not*
        skipped: they will be processed (at their own timestamps) by the next
        :meth:`run_until_idle` call; the clock simply never moves backwards.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot move the clock backwards from {self._now} to {time}"
            )
        self._now = time

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` time units."""
        if delta < 0:
            raise SimulationError("cannot advance the clock by a negative delta")
        self.advance_to(self._now + delta)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past ({time} < {self._now})"
            )
        event = _ScheduledEvent(
            time=time, sequence=next(self._sequence), callback=callback, args=args
        )
        heapq.heappush(self._heap, event)
        self._live_events += 1
        return EventHandle(event, self)

    def schedule_in(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self.schedule_at(self._now + delay, callback, *args)

    def cancel_where(
        self, predicate: Callable[[Callable[..., None], Tuple[Any, ...]], bool]
    ) -> int:
        """Cancel every pending event matching ``predicate(callback, args)``.

        Used to model abrupt node failures: a crash destroys messages that
        are still in flight towards the dead address, so their delivery
        events must never fire.  Returns the number of events cancelled.
        """
        cancelled = 0
        for event in self._heap:
            if event.cancelled or event.fired:
                continue
            if predicate(event.callback, event.args):
                event.cancelled = True
                self._live_events -= 1
                cancelled += 1
        return cancelled

    def extract_where(
        self, predicate: Callable[[Callable[..., None], Tuple[Any, ...]], bool]
    ) -> List[Tuple[Any, ...]]:
        """Cancel matching pending events and return their argument tuples.

        Like :meth:`cancel_where`, but hands the payloads back so the caller
        can reschedule them differently — the mechanism behind re-routing
        in-flight answers to a failed-over query owner.  Results are in
        scheduling order (time, then insertion sequence).
        """
        extracted: List[_ScheduledEvent] = []
        for event in self._heap:
            if event.cancelled or event.fired:
                continue
            if predicate(event.callback, event.args):
                event.cancelled = True
                self._live_events -= 1
                extracted.append(event)
        extracted.sort(key=lambda event: (event.time, event.sequence))
        return [event.args for event in extracted]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next pending event; return False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time > self._now:
                self._now = event.time
            self._events_processed += 1
            self._live_events -= 1
            event.fired = True
            event.callback(*event.args)
            return True
        return False

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Process events until the queue is empty.

        Returns the number of events processed.  ``max_events`` guards
        against runaway event cascades (useful in tests); exceeding it raises
        :class:`~repro.errors.SimulationError`.
        """
        if self._running:
            raise SimulationError("run_until_idle() is not re-entrant")
        self._running = True
        processed = 0
        try:
            while self.step():
                processed += 1
                if max_events is not None and processed > max_events:
                    raise SimulationError(
                        f"exceeded the maximum of {max_events} events"
                    )
        finally:
            self._running = False
        return processed

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Process events with timestamps up to ``time`` (inclusive)."""
        processed = 0
        while self._heap:
            upcoming = self._next_pending()
            if upcoming is None or upcoming.time > time:
                break
            self.step()
            processed += 1
            if max_events is not None and processed > max_events:
                raise SimulationError(f"exceeded the maximum of {max_events} events")
        self.advance_to(max(self._now, time))
        return processed

    def _next_pending(self) -> Optional[_ScheduledEvent]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of events waiting in the queue (excluding cancelled ones); O(1)."""
        return self._live_events

    @property
    def is_running(self) -> bool:
        """Whether an event-processing loop is currently executing."""
        return self._running

    @property
    def events_processed(self) -> int:
        """Total number of events processed since the kernel was created."""
        return self._events_processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationKernel(now={self._now:g}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )
