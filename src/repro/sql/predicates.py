"""Utilities over conjunctive where clauses.

Section 6 of the paper enumerates three families of indexing candidates for a
(rewritten) query ``q``:

(a) relation-attribute pairs appearing in a join condition of ``q``,
(b) relation-attribute-value triples appearing *explicitly* as selection
    conditions in ``q``,
(c) relation-attribute-value triples such that ``relation.attribute = value``
    is *logically implied* by the where clause of ``q``.

Family (c) requires computing the equality closure of the conjunction: if
``R.A = S.B`` and ``S.B = 5`` are both present, then ``R.A = 5`` is implied.
This module provides that closure, plus helpers used by query rewriting and
candidate enumeration.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Set, Tuple

from repro.data.schema import AttributeRef
from repro.sql.ast import JoinPredicate, Query, SelectionPredicate


class _UnionFind:
    """Minimal union-find over attribute references."""

    def __init__(self) -> None:
        self._parent: Dict[AttributeRef, AttributeRef] = {}

    def find(self, item: AttributeRef) -> AttributeRef:
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: AttributeRef, b: AttributeRef) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a

    def groups(self) -> List[Set[AttributeRef]]:
        by_root: Dict[AttributeRef, Set[AttributeRef]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return list(by_root.values())


def equality_closure(query: Query) -> List[Set[AttributeRef]]:
    """Return the equivalence classes of attributes induced by the join predicates."""
    uf = _UnionFind()
    for ref in query.attribute_refs():
        uf.find(ref)
    for jp in query.join_predicates:
        uf.union(jp.left, jp.right)
    return uf.groups()


def implied_selections(query: Query) -> List[SelectionPredicate]:
    """Selections implied (but not stated) by the where clause — family (c).

    For every equivalence class that contains an attribute constrained by an
    explicit selection, every *other* attribute of the class inherits the
    same constant.  Explicit selections themselves are excluded from the
    result (those are family (b)).
    """
    explicit: Dict[AttributeRef, Any] = {
        sp.attribute: sp.value for sp in query.selection_predicates
    }
    implied: List[SelectionPredicate] = []
    for group in equality_closure(query):
        values = {explicit[ref] for ref in group if ref in explicit}
        if len(values) != 1:
            # No constant, or contradictory constants (contradiction is
            # detected during rewriting, not here).
            continue
        (value,) = values
        for ref in sorted(group):
            if ref not in explicit:
                implied.append(SelectionPredicate(ref, value))
    return implied


def all_selections(query: Query) -> List[SelectionPredicate]:
    """Explicit plus implied selections, without duplicates."""
    result = list(query.selection_predicates)
    seen = {(sp.attribute, sp.value) for sp in result}
    for sp in implied_selections(query):
        if (sp.attribute, sp.value) not in seen:
            seen.add((sp.attribute, sp.value))
            result.append(sp)
    return result


def predicates_for_relation(
    query: Query, relation: str
) -> Tuple[List[JoinPredicate], List[SelectionPredicate]]:
    """Return the join and selection predicates of ``query`` that mention ``relation``."""
    joins = [jp for jp in query.join_predicates if jp.references(relation)]
    selections = [
        sp for sp in query.selection_predicates if sp.references(relation)
    ]
    return joins, selections


def is_contradictory(selections: Iterable[SelectionPredicate]) -> bool:
    """Whether two selections constrain the same attribute to different values."""
    seen: Dict[AttributeRef, Any] = {}
    for sp in selections:
        if sp.attribute in seen and seen[sp.attribute] != sp.value:
            return True
        seen[sp.attribute] = sp.value
    return False


def join_graph_edges(query: Query) -> List[Tuple[str, str]]:
    """Return the (undirected) relation-level edges of the join graph."""
    edges = []
    for jp in query.join_predicates:
        a, b = sorted((jp.left.relation, jp.right.relation))
        edges.append((a, b))
    return edges
