"""The transport-neutral node runtime contract.

Historically the discrete-event :class:`~repro.net.simulator.SimulationKernel`
*was* the architecture: the messaging API scheduled deliveries on it directly
and the engine drained it between publications.  This module extracts the
boundary the messaging layer actually needs into an explicit contract —
:class:`Transport` — so the deterministic kernel becomes one runtime among
several instead of the only one:

* ``sim`` (:class:`~repro.net.simulator.SimTransport`) — the discrete-event
  kernel, byte-identical to the historical behaviour.  Fully deterministic;
  the test/oracle harness.
* ``asyncio`` (:class:`~repro.net.runtime_asyncio.AsyncioTransport`) — a
  genuinely concurrent runtime where every registered address runs as an
  actor task with a bounded inbox queue and backpressure-aware sends.

A transport owns four responsibilities:

1. **delivery** — :meth:`Transport.post` accepts an in-flight
   :class:`~repro.net.messages.Envelope` and eventually hands it to the
   delivery callback installed with :meth:`Transport.bind` (the messaging
   layer's ``_deliver``, which looks up the destination handler and counts
   drops),
2. **in-flight surgery** — :meth:`Transport.cancel_inbound` /
   :meth:`Transport.extract_inbound` destroy or take over the undelivered
   messages addressed to one node (crashes and owner failover),
3. **timers** — :meth:`Transport.schedule_at` / :meth:`Transport.schedule_in`
   run a callback at a (logical) time and return an
   :class:`EventHandle`-shaped handle that supports cancellation,
4. **the clock and the drain loop** — :attr:`Transport.now`,
   :meth:`Transport.advance_to` and :meth:`Transport.drain`, which runs the
   network to quiescence (every posted message delivered or destroyed, every
   due timer fired).

:class:`EventHandle` (and the heap entry it wraps) lives here because both
runtimes use the same timer representation; :mod:`repro.net.simulator`
re-exports it for backward compatibility with a deprecation warning.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.net.messages import Envelope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.simulator import SimulationKernel

#: Signature of the delivery callback installed with :meth:`Transport.bind`.
DeliverCallback = Callable[[Envelope], None]

#: Registered runtime names accepted by :func:`make_transport` (and by
#: ``RJoinConfig.runtime`` / ``ExperimentConfig.runtime``).
TRANSPORT_NAMES: Tuple[str, ...] = ("sim", "asyncio")

#: The runtime used when no explicit choice is made.
DEFAULT_TRANSPORT = "sim"


@dataclass(order=True)
class _ScheduledEvent:
    """Timer-heap entry: (time, sequence) ordering, payload not compared."""

    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    fired: bool = field(compare=False, default=False)


class EventHandle:
    """Handle for a scheduled timer, allows cancellation.

    Returned by :meth:`Transport.schedule_at` / :meth:`Transport.schedule_in`
    on every runtime (and by ``SimulationKernel.schedule_at`` directly).  The
    ``owner`` is whichever scheduler maintains the live-event ledger — the
    simulation kernel or the asyncio transport.
    """

    __slots__ = ("_event", "_owner")

    def __init__(self, event: _ScheduledEvent, owner: "_TimerLedger") -> None:
        self._event = event
        self._owner = owner

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        event = self._event
        if event.fired or event.cancelled:
            return
        event.cancelled = True
        self._owner._live_events -= 1

    @property
    def time(self) -> float:
        """(Logical) time at which the event is scheduled."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled


class _TimerLedger:
    """Structural base for schedulers that own an :class:`EventHandle` ledger."""

    _live_events: int = 0


class Transport(ABC, _TimerLedger):
    """The node ↔ network boundary every runtime implements.

    The messaging layer (:class:`repro.dht.api.DHTMessagingService`)
    programs exclusively against this contract; the engine drives the drain
    loop and the clock through it.  Implementations must guarantee:

    * **at-most-once delivery** — every posted envelope reaches the bound
      delivery callback at most once; cancelled or extracted envelopes never
      do,
    * **loss-free drain** — :meth:`drain` returns only when every posted
      message has been delivered, cancelled or extracted, and no due timer
      remains,
    * **monotonic clock** — :attr:`now` never moves backwards; a delivered
      envelope's ``delivered_at`` never exceeds the clock observed by its
      handler.
    """

    #: Registry name of the runtime (``sim`` / ``asyncio``).
    name: str = "abstract"

    #: Whether spans opened on this runtime should carry wall-clock service
    #: times.  The observability layer reads this when the engine builds its
    #: tracer: logical-clock-only on deterministic runtimes (wall time would
    #: break byte-identical reruns), wall-clock-enabled on concurrent ones.
    wall_clock_spans: bool = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    @abstractmethod
    def bind(self, deliver: DeliverCallback) -> None:
        """Install the delivery callback every posted envelope is handed to."""

    @abstractmethod
    def register_address(self, address: str) -> None:
        """Declare a deliverable address (the asyncio runtime spawns its actor)."""

    @abstractmethod
    def unregister_address(self, address: str) -> None:
        """Forget an address; envelopes still posted to it are delivered to
        the bound callback, which counts them as dropped (no handler)."""

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def now(self) -> float:
        """Current logical time."""

    @abstractmethod
    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time`` without processing anything."""

    @abstractmethod
    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` time units."""

    # ------------------------------------------------------------------
    # message delivery
    # ------------------------------------------------------------------
    @abstractmethod
    def post(self, envelope: Envelope, delay: float) -> None:
        """Accept ``envelope`` for delivery ``delay`` logical time units from
        now (to ``envelope.destination``)."""

    @abstractmethod
    def cancel_inbound(self, address: str) -> int:
        """Destroy every undelivered envelope addressed to ``address``;
        returns the number destroyed (an abrupt crash loses them)."""

    @abstractmethod
    def extract_inbound(self, address: str) -> List[Envelope]:
        """Take every undelivered envelope addressed to ``address`` off the
        network and return them in posting order (owner failover re-routes
        them)."""

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    @abstractmethod
    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute logical ``time``."""

    @abstractmethod
    def schedule_in(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` logical time units."""

    # ------------------------------------------------------------------
    # drain / shutdown
    # ------------------------------------------------------------------
    @abstractmethod
    def drain(self, max_events: Optional[int] = None) -> int:
        """Run until quiescent; returns the number of events processed.

        ``max_events`` guards against runaway cascades: exceeding it raises
        :class:`~repro.errors.SimulationError`.  Not re-entrant.
        """

    @property
    @abstractmethod
    def is_draining(self) -> bool:
        """Whether a drain loop is currently executing."""

    @property
    @abstractmethod
    def pending_events(self) -> int:
        """Undelivered messages plus uncancelled pending timers."""

    @property
    @abstractmethod
    def events_processed(self) -> int:
        """Total deliveries and timer firings since construction."""

    @abstractmethod
    def shutdown(self) -> None:
        """Drain outstanding work, stop every actor and release resources.

        Idempotent; after shutdown the transport accepts no further posts.
        """

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def kernel(self) -> Optional["SimulationKernel"]:
        """The underlying simulation kernel, when this runtime has one.

        Only the ``sim`` transport exposes a kernel; concurrent runtimes
        return ``None``.  Callers needing deterministic event surgery should
        check for ``None`` (or ask the engine, which raises a descriptive
        error instead).
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(now={self.now:g}, "
            f"pending={self.pending_events})"
        )


def make_transport(name: str = DEFAULT_TRANSPORT) -> Transport:
    """Build a runtime transport by registry name (``sim`` / ``asyncio``).

    Implementations are imported lazily so that selecting the deterministic
    kernel never pays for the concurrent runtime's machinery (and vice
    versa).
    """
    if name == "sim":
        from repro.net.simulator import SimTransport

        return SimTransport()
    if name == "asyncio":
        from repro.net.runtime_asyncio import AsyncioTransport

        return AsyncioTransport()
    known = ", ".join(TRANSPORT_NAMES)
    raise ConfigurationError(f"unknown runtime {name!r}; known runtimes: {known}")


def ensure_not_reentrant(transport: Transport) -> None:
    """Raise when a drain is started while one is already executing."""
    if transport.is_draining:
        raise SimulationError("drain() is not re-entrant")
