"""Baseline (grandfathering) semantics: fingerprints, budgets, round trips."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    analyze,
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.base import Finding
from repro.errors import AnalysisError

from tests.analysis.conftest import FIXTURES


def make_finding(line: int = 10, message: str = "boom") -> Finding:
    return Finding(
        rule="determinism-purity", path="core/x.py", line=line, message=message
    )


class TestFingerprint:
    def test_stable_and_line_independent(self):
        assert fingerprint(make_finding(10)) == fingerprint(make_finding(99))

    def test_sensitive_to_rule_path_message(self):
        base = fingerprint(make_finding())
        other = Finding(
            rule="exception-discipline",
            path="core/x.py",
            line=10,
            message="boom",
        )
        assert fingerprint(other) != base
        assert fingerprint(make_finding(message="other")) != base


class TestApplyBaseline:
    def test_count_budget_caps_suppression(self):
        first, second, third = (make_finding(line) for line in (1, 2, 3))
        budget = {fingerprint(first): 2}
        active, suppressed = apply_baseline([first, second, third], budget)
        # Two grandfathered occurrences are silenced; the third stays active.
        assert [f.line for f in suppressed] == [1, 2]
        assert [f.line for f in active] == [3]
        assert all(f.suppressed_by == "baseline" for f in suppressed)

    def test_empty_baseline_suppresses_nothing(self):
        findings = [make_finding(1), make_finding(2)]
        active, suppressed = apply_baseline(findings, {})
        assert active == findings
        assert suppressed == []


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [make_finding(1), make_finding(2), make_finding(3, "other")]
        count = write_baseline(path, findings)
        assert count == 2  # two distinct fingerprints
        loaded = load_baseline(path)
        assert loaded[fingerprint(make_finding())] == 2
        assert loaded[fingerprint(make_finding(message="other"))] == 1
        # Entries carry a human-readable echo for review.
        document = json.loads(path.read_text())
        sample = next(iter(document["entries"].values()))
        assert {"count", "rule", "path", "message"} <= set(sample)

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_invalid_json_is_an_analysis_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(AnalysisError):
            load_baseline(path)

    def test_missing_entries_key_is_an_analysis_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 1}))
        with pytest.raises(AnalysisError):
            load_baseline(path)


class TestBaselineEndToEnd:
    def test_grandfathered_fixture_passes_under_its_baseline(self, tmp_path):
        root = FIXTURES / "determinism"
        rule = ["determinism-purity"]
        dirty = analyze(root, rule)
        assert not dirty.ok
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, dirty.active)

        clean = analyze(root, rule, baseline_path=baseline_path)
        assert clean.ok
        baselined = [
            f for f in clean.suppressed if f.suppressed_by == "baseline"
        ]
        assert len(baselined) == len(dirty.active)

    def test_allowlist_wins_before_baseline(self, tmp_path):
        # Allowlisted findings never consume baseline budget.
        root = FIXTURES / "determinism"
        rule = ["determinism-purity"]
        dirty = analyze(root, rule)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, dirty.active)
        clean = analyze(root, rule, baseline_path=baseline_path)
        allowlisted = [
            f for f in clean.suppressed if f.suppressed_by == "allowlist"
        ]
        assert len(allowlisted) == 2
