"""Million-query matching: probe throughput vs resident query count.

The tentpole measurement of the predicate-aware query index: a
:class:`~repro.core.node.QueryTable` is loaded with ``Q`` rewritten-query
records under one indexing key — each carrying a distinct discriminating
selection constant, the query-flood shape — and the tuple-arrival probe is
timed against the pre-index linear scan over the same table:

* **indexed_probe** — ``QueryTable.probe`` fetches only the records whose
  discriminator matches the arriving tuple's values (plus wildcards);
  throughput must stay flat as ``Q`` grows (sublinear matching),
* **linear_scan** — the pre-PR behaviour: touch every resident record and
  test its selection against the tuple, the per-arrival cost that made
  million-query populations infeasible.

Each row records per-arrival ``ops_per_sec`` for both paths, the speedup,
and the index hit ratio (candidates fetched / records resident — the
fraction of the table a probe actually touches).  A second suite measures
multi-query sharing end to end on a real engine: N duplicate queries are
batch-submitted with and without ``shared_query_state`` and the stored
records, answer fan-out and answer counts are compared.

Usage::

    PYTHONPATH=src python benchmarks/bench_query_matching.py [--smoke]
        [--probes N] [--output FILE]

``--smoke`` shrinks the sweep to a correctness pass (used by
``run_all.py`` / the ``bench_smoke`` marker).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.core.keys import IndexKey
from repro.core.node import QueryTable, StoredQueryRecord
from repro.core.protocol import QueryState
from repro.data.schema import Catalog
from repro.sql.ast import AttributeRef, Constant, Query, SelectionPredicate

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_query_matching.json"

DEFAULT_SIZES = {
    "query_counts": (1_000, 10_000, 100_000),
    "probes": 20_000,
    "linear_arrivals": 20,
    "sharing_copies": 100,
}
SMOKE_SIZES = {
    "query_counts": (200,),
    "probes": 500,
    "linear_arrivals": 5,
    "sharing_copies": 8,
}

#: The indexing key every benchmark record is stored under: rewritten
#: queries over S waiting for tuples with ``S.c = 10``.
KEY = IndexKey("S", "c", 10)


def _rewritten_query(constant: int) -> Query:
    """``SELECT <constant>, S.d FROM S WHERE S.c = 10 AND S.d = <constant>``.

    The shape a two-way join leaves behind after consuming its R tuple: one
    remaining relation, the join binding on the key attribute and a residual
    selection whose constant discriminates the record in the index.
    """
    d_ref = AttributeRef("S", "d")
    return Query(
        select_items=(Constant(constant), d_ref),
        relations=("S",),
        join_predicates=(),
        selection_predicates=(
            SelectionPredicate(AttributeRef("S", "c"), 10),
            SelectionPredicate(d_ref, constant),
        ),
    )


def _build_table(num_queries: int) -> QueryTable:
    table = QueryTable()
    for k in range(num_queries):
        state = QueryState(
            query_id=f"q{k}",
            owner="bench-node",
            query=_rewritten_query(k),
            insertion_time=0.0,
            is_input=False,
            consumed=1,
        )
        table.add(KEY.text, StoredQueryRecord(state=state, key=KEY, stored_at=0.0))
    return table


def _measure_matching(
    num_queries: int, probes: int, linear_arrivals: int
) -> Dict[str, object]:
    """Indexed-probe vs linear-scan throughput at one population size."""
    table = _build_table(num_queries)
    clocks: Dict[str, float] = {}

    # Indexed probes: arrivals cycle through the discriminating values, so
    # every probe fetches exactly the records it can rewrite.
    candidates_fetched = 0
    started = time.perf_counter()
    for i in range(probes):
        d_value = i % num_queries
        candidates, _ = table.probe(
            KEY.text, clocks, lambda attribute, d=d_value: 10 if attribute == "c" else d
        )
        candidates_fetched += len(candidates)
    indexed_seconds = time.perf_counter() - started
    indexed_rate = probes / indexed_seconds if indexed_seconds else 0.0

    # Linear scan: the pre-index arrival path touched every resident record
    # and tested its selections against the tuple's values.
    records = table.get(KEY.text) or []
    linear_matches = 0
    started = time.perf_counter()
    for i in range(linear_arrivals):
        values = {"c": 10, "d": i % num_queries}
        for record in records:
            satisfied = True
            for sp in record.state.query.selection_predicates:
                if values[sp.attribute.attribute] != sp.value:
                    satisfied = False
                    break
            if satisfied:
                linear_matches += 1
    linear_seconds = time.perf_counter() - started
    linear_rate = linear_arrivals / linear_seconds if linear_seconds else 0.0

    per_probe = candidates_fetched / probes if probes else 0.0
    return {
        "name": f"q{num_queries}",
        "resident_queries": num_queries,
        "probes": probes,
        "linear_arrivals": linear_arrivals,
        "candidates_per_probe": per_probe,
        "index_hit_ratio": per_probe / num_queries if num_queries else 0.0,
        "linear_matches": linear_matches,
        "seconds": {
            "indexed_probe": indexed_seconds,
            "linear_scan": linear_seconds,
        },
        "ops_per_sec": {
            "indexed_probe": indexed_rate,
            "linear_scan": linear_rate,
        },
        "indexed_speedup": (indexed_rate / linear_rate) if linear_rate else 0.0,
    }


def _measure_sharing(copies: int) -> Dict[str, object]:
    """Shared vs private state for ``copies`` duplicates of one query."""
    catalog = Catalog()
    catalog.add_relation("R", ["a", "b"])
    catalog.add_relation("S", ["c", "d"])
    sql = "SELECT R.a, S.d FROM R, S WHERE R.b = S.c"
    rows = [("R", (1, 10)), ("S", (10, 2)), ("R", (3, 10)), ("S", (10, 4))]

    def run(shared: bool) -> Dict[str, float]:
        engine = RJoinEngine(
            RJoinConfig(num_nodes=16, seed=9, shared_query_state=shared),
            catalog=catalog,
        )
        for _ in range(copies):
            engine.submit(sql, process=False)
        engine.run()
        for relation, values in rows:
            engine.publish(relation, values)
        return engine.metrics_summary()

    started = time.perf_counter()
    shared = run(True)
    private = run(False)
    elapsed = time.perf_counter() - started
    return {
        "name": f"sharing-x{copies}",
        "copies": copies,
        "seconds": elapsed,
        "answers": shared["answers"],
        "answers_private": private["answers"],
        "shared_state_fanout": shared["shared_state_fanout"],
        "current_storage_shared": shared["current_storage"],
        "current_storage_private": private["current_storage"],
        "storage_savings": (
            1.0 - shared["current_storage"] / private["current_storage"]
            if private["current_storage"]
            else 0.0
        ),
    }


def run_bench(smoke: bool = False, **overrides) -> Dict[str, object]:
    """The matching-throughput sweep plus the sharing comparison."""
    sizes = dict(SMOKE_SIZES if smoke else DEFAULT_SIZES)
    sizes.update({k: v for k, v in overrides.items() if v is not None})
    results: List[Dict[str, object]] = []
    for num_queries in sizes["query_counts"]:
        results.append(
            _measure_matching(
                num_queries, sizes["probes"], sizes["linear_arrivals"]
            )
        )
    sharing = _measure_sharing(sizes["sharing_copies"])
    sizes["query_counts"] = list(sizes["query_counts"])
    return {
        "smoke": smoke,
        "sizes": sizes,
        "results": results,
        "sharing": sharing,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes (correctness sweep only)",
    )
    parser.add_argument("--probes", type=int, default=None)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    report = run_bench(smoke=args.smoke, probes=args.probes)
    for row in report["results"]:
        rates = row["ops_per_sec"]
        print(
            f"match (Q={row['resident_queries']:7d}): "
            f"indexed {rates['indexed_probe']:12,.0f} probes/s, "
            f"linear {rates['linear_scan']:10,.1f} arrivals/s, "
            f"{row['indexed_speedup']:8.1f}x, "
            f"hit ratio {row['index_hit_ratio']:.2e}"
        )
    sharing = report["sharing"]
    print(
        f"sharing (x{sharing['copies']}): "
        f"storage {sharing['current_storage_shared']:.0f} shared vs "
        f"{sharing['current_storage_private']:.0f} private "
        f"({sharing['storage_savings']:.0%} saved), "
        f"fanout {sharing['shared_state_fanout']:.0f}"
    )
    if not args.smoke:
        args.output.write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
