"""Throughput of every tuple-store backend on the store hot paths.

Measures, per registered backend (``memory`` / ``sqlite`` / ``append-log``)
and in operations per second:

* ``add`` — insertion throughput (the sqlite backend amortises this through
  its batched write buffer, so the flush cost is included),
* ``prefix_match`` — attribute-level prefix lookups over a populated store,
* ``batch_match`` — the same lookups through the set-at-a-time
  ``tuples_for_prefixes`` API, whole probe batches per call,
* ``window_gc`` — ``remove_published_before`` ticks interleaved with fresh
  writes, the window-churn pressure pattern (this is what triggers
  compaction in the append-log backend),
* ``rehome`` — ``remove_key`` + replay into a fresh store of the same kind,
  the membership re-homing round trip.

Results go to ``benchmarks/BENCH_store_backends.json`` and are compared
against the committed baselines by ``benchmarks/check_regression.py`` in CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_store_backends.py [--smoke]
        [--tuples N] [--lookups N] [--gc-ticks N]
        [--compact-min-dead N] [--compact-fraction F]

The ``--compact-*`` flags sweep the append-log compaction thresholds
(they are ignored by the other backends).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.data.backends import (
    BACKEND_NAMES,
    SEPARATOR,
    StoreTuning,
    make_store,
)
from repro.data.schema import RelationSchema
from repro.data.tuples import Tuple

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_store_backends.json"

DEFAULT_SIZES = {"tuples": 50000, "lookups": 4000, "gc_ticks": 400}
SMOKE_SIZES = {"tuples": 400, "lookups": 40, "gc_ticks": 8}

RELATIONS = 8
ATTRIBUTES = 4
VALUES = 50


def _make_tuples(count: int) -> List[Tuple]:
    """A deterministic stream of tuples cycling through the key space."""
    schemas = [
        RelationSchema(f"R{index}", [f"a{a}" for a in range(ATTRIBUTES)])
        for index in range(RELATIONS)
    ]
    tuples = []
    for seq in range(count):
        schema = schemas[seq % RELATIONS]
        values = tuple((seq * 7 + offset) % VALUES for offset in range(ATTRIBUTES))
        tuples.append(
            Tuple.from_schema(
                schema, values, pub_time=float(seq), sequence=seq + 1
            )
        )
    return tuples


def _key_of(tup: Tuple, attribute_index: int = 0) -> str:
    attribute = f"a{attribute_index}"
    value = tup.values[attribute_index]
    return f"{tup.relation}{SEPARATOR}{attribute}{SEPARATOR}{value!r}"


def _prefixes() -> List[str]:
    return [
        f"R{relation}{SEPARATOR}a{attribute}{SEPARATOR}"
        for relation in range(RELATIONS)
        for attribute in range(ATTRIBUTES)
    ]


def _timed(operations: int, fn) -> Dict[str, float]:
    started = time.perf_counter()
    fn()
    seconds = time.perf_counter() - started
    return {
        "operations": operations,
        "seconds": round(seconds, 6),
        "rate": (operations / seconds) if seconds else 0.0,
    }


def _measure_backend(
    backend: str,
    sizes: Dict[str, int],
    tuning: Optional[StoreTuning] = None,
) -> Dict[str, object]:
    tuples = _make_tuples(sizes["tuples"])

    # add ------------------------------------------------------------------
    store = make_store(backend, tuning=tuning)

    def _add() -> None:
        for tup in tuples:
            store.add(_key_of(tup), tup, now=tup.pub_time)
        # The flush belongs to the write path: without it the sqlite rate
        # would only time buffer appends, not the actual INSERTs.
        store.flush()

    timing_add = _timed(len(tuples), _add)

    # prefix_match ---------------------------------------------------------
    prefixes = _prefixes()
    lookups = sizes["lookups"]

    def _lookup() -> None:
        for index in range(lookups):
            store.tuples_for_prefix(prefixes[index % len(prefixes)])

    timing_prefix = _timed(lookups, _lookup)

    # batch_match ----------------------------------------------------------
    # Same probe volume, but whole batches through the set-at-a-time API.
    batch_rounds = max(lookups // len(prefixes), 1)

    def _batch_lookup() -> None:
        for _ in range(batch_rounds):
            store.tuples_for_prefixes(prefixes)

    timing_batch = _timed(batch_rounds * len(prefixes), _batch_lookup)

    # window_gc ------------------------------------------------------------
    ticks = sizes["gc_ticks"]
    window = max(sizes["tuples"] // max(ticks, 1), 1)

    def _gc() -> None:
        for tick in range(1, ticks + 1):
            store.remove_published_before(float(tick * window))

    timing_gc = _timed(ticks, _gc)

    # rehome ---------------------------------------------------------------
    source = make_store(backend, tuning=tuning)
    rehome_tuples = tuples[: max(sizes["tuples"] // 4, 1)]
    for tup in rehome_tuples:
        source.add(_key_of(tup), tup, now=tup.pub_time)
    # Settle the source's write buffer so the rehome window times only the
    # extraction + replay round trip, not the source's own pending inserts.
    source.flush()
    target = make_store(backend, tuning=tuning)

    def _rehome() -> None:
        for key in list(source.keys()):
            for record in source.remove_key(key):
                target.add(record.key, record.tuple, record.stored_at)
        target.flush()

    timing_rehome = _timed(len(rehome_tuples), _rehome)

    result: Dict[str, object] = {
        "backend": backend,
        "ops_per_sec": {
            "add": round(timing_add["rate"], 2),
            "prefix_match": round(timing_prefix["rate"], 2),
            "batch_match": round(timing_batch["rate"], 2),
            "window_gc": round(timing_gc["rate"], 2),
            "rehome": round(timing_rehome["rate"], 2),
        },
        "seconds": {
            "add": timing_add["seconds"],
            "prefix_match": timing_prefix["seconds"],
            "batch_match": timing_batch["seconds"],
            "window_gc": timing_gc["seconds"],
            "rehome": timing_rehome["seconds"],
        },
        "residual_records": len(store),
    }
    compactions = getattr(store, "compactions", None)
    if compactions is not None:
        result["compactions"] = compactions
    for opened in (store, source, target):
        opened.close()
    return result


def run_bench(
    smoke: bool = False,
    tuning: Optional[StoreTuning] = None,
    **overrides,
) -> Dict[str, object]:
    """Measure every backend; returns the JSON-safe report."""
    sizes = dict(SMOKE_SIZES if smoke else DEFAULT_SIZES)
    sizes.update({k: v for k, v in overrides.items() if v is not None})
    results = [
        _measure_backend(backend, sizes, tuning=tuning)
        for backend in BACKEND_NAMES
    ]
    report: Dict[str, object] = {
        "smoke": smoke,
        "parameters": sizes,
        "results": results,
    }
    if tuning is not None:
        report["tuning"] = {
            "compact_min_dead": tuning.compact_min_dead,
            "compact_dead_fraction": tuning.compact_dead_fraction,
        }
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes (correctness sweep only)"
    )
    parser.add_argument("--tuples", type=int, default=None)
    parser.add_argument("--lookups", type=int, default=None)
    parser.add_argument("--gc-ticks", dest="gc_ticks", type=int, default=None)
    parser.add_argument(
        "--compact-min-dead", dest="compact_min_dead", type=int, default=None
    )
    parser.add_argument(
        "--compact-fraction", dest="compact_fraction", type=float, default=None
    )
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    tuning = None
    if args.compact_min_dead is not None or args.compact_fraction is not None:
        tuning = StoreTuning(
            compact_min_dead=args.compact_min_dead or 64,
            compact_dead_fraction=args.compact_fraction or 0.5,
        )
    report = run_bench(
        smoke=args.smoke,
        tuning=tuning,
        tuples=args.tuples,
        lookups=args.lookups,
        gc_ticks=args.gc_ticks,
    )
    for row in report["results"]:
        rates = row["ops_per_sec"]
        line = ", ".join(f"{name}={rate:,.0f}/s" for name, rate in rates.items())
        extra = (
            f" (compactions={row['compactions']})" if "compactions" in row else ""
        )
        print(f"{row['backend']:>10s}: {line}{extra}")
    if not args.smoke:
        args.output.write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
