"""Exempt concurrent runtime (fixture tree, never imported).

This file's path matches ``EXEMPT_FILES`` in the ``determinism-purity``
rule: every construct below would fire anywhere else under the scope, and
the test asserts none of them do — wall clock and scheduler nondeterminism
are legitimate in the concurrent runtime.
"""

import random
import time


def backpressure_deadline():
    return time.monotonic() + 0.25  # exempt: wall-clock timeout is the point


def wall_clock_stamp():
    return time.time()  # exempt: whole file is allowlisted


def jittered_retry_delay():
    return random.random()  # exempt: whole file is allowlisted


def racing_actor_order(addresses):
    ready = set(addresses)
    order = []
    for address in ready:  # exempt: scheduler order is nondeterministic anyway
        order.append(address)
    return order
