"""Tests for the per-node tuple store."""

import pytest

from repro.data.schema import RelationSchema
from repro.data.store import TupleStore
from repro.data.tuples import Tuple


@pytest.fixture
def schema():
    return RelationSchema("R", ["a", "b"])


def make_tuple(schema, values, seq, pub_time=0.0):
    return Tuple.from_schema(schema, values, pub_time=pub_time, sequence=seq)


class TestTupleStore:
    def test_add_and_lookup_by_key(self, schema):
        store = TupleStore()
        tup = make_tuple(schema, (1, 2), 1)
        store.add("R.a=1", tup, now=0.0)
        assert store.tuples_for_key("R.a=1") == [tup]
        assert store.tuples_for_key("other") == []

    def test_len_and_cumulative(self, schema):
        store = TupleStore()
        for seq in range(5):
            store.add("k", make_tuple(schema, (seq, seq), seq), now=float(seq))
        assert len(store) == 5
        assert store.cumulative_stored == 5
        store.clear()
        assert len(store) == 0
        assert store.cumulative_stored == 5  # cumulative survives clears

    def test_same_tuple_under_two_keys_costs_two_slots(self, schema):
        store = TupleStore()
        tup = make_tuple(schema, (1, 2), 1)
        store.add("k1", tup, now=0.0)
        store.add("k2", tup, now=0.0)
        assert len(store) == 2
        assert store.distinct_tuples() == 1

    def test_prefix_lookup_deduplicates(self, schema):
        store = TupleStore()
        tup = make_tuple(schema, (1, 2), 1)
        store.add("R\x1fa\x1f1", tup, now=0.0)
        store.add("R\x1fa\x1f2", make_tuple(schema, (2, 2), 2), now=0.0)
        store.add("S\x1fa\x1f1", make_tuple(schema, (3, 3), 3), now=0.0)
        result = store.tuples_for_prefix("R\x1fa\x1f")
        assert len(result) == 2

    def test_remove_older_than(self, schema):
        store = TupleStore()
        store.add("k", make_tuple(schema, (1, 1), 1), now=0.0)
        store.add("k", make_tuple(schema, (2, 2), 2), now=5.0)
        removed = store.remove_older_than("k", cutoff=3.0)
        assert removed == 1
        assert len(store.tuples_for_key("k")) == 1

    def test_remove_older_than_missing_key(self, schema):
        store = TupleStore()
        assert store.remove_older_than("nope", 1.0) == 0

    def test_remove_published_before(self, schema):
        store = TupleStore()
        store.add("k", make_tuple(schema, (1, 1), 1, pub_time=1.0), now=0.0)
        store.add("k", make_tuple(schema, (2, 2), 2, pub_time=9.0), now=0.0)
        assert store.remove_published_before(5.0) == 1
        assert store.has_key("k")

    def test_keys_and_iteration(self, schema):
        store = TupleStore()
        store.add("k1", make_tuple(schema, (1, 1), 1), now=0.0)
        store.add("k2", make_tuple(schema, (2, 2), 2), now=0.0)
        assert set(store.keys()) == {"k1", "k2"}
        assert len(list(store)) == 2

    def test_records_expose_metadata(self, schema):
        store = TupleStore()
        store.add("k", make_tuple(schema, (1, 1), 7), now=3.5)
        record = store.records_for_key("k")[0]
        assert record.stored_at == 3.5
        assert record.identity == ("R", 7)
        assert record.key == "k"
