"""Tests for RIC bookkeeping: rate tracking, candidate table, piggy-backing."""

from repro.core.ric import CandidateTable, RateTracker, RicEntry, merge_ric_info


class TestRateTracker:
    def test_cumulative_counting(self):
        tracker = RateTracker(window=None)
        for t in range(5):
            tracker.record("k", now=float(t))
        assert tracker.rate("k", now=100.0) == 5.0
        assert tracker.total("k") == 5
        assert tracker.rate("unknown", now=0.0) == 0.0

    def test_windowed_counting(self):
        tracker = RateTracker(window=10.0)
        tracker.record("k", now=0.0)
        tracker.record("k", now=5.0)
        tracker.record("k", now=12.0)
        assert tracker.rate("k", now=12.0) == 2.0   # 5.0 and 12.0 remain
        assert tracker.rate("k", now=30.0) == 0.0
        assert tracker.total("k") == 3

    def test_tracked_keys(self):
        tracker = RateTracker()
        tracker.record("a", 0.0)
        tracker.record("b", 0.0)
        assert sorted(tracker.tracked_keys()) == ["a", "b"]

    def test_max_keys_bounds_memory(self):
        """A million-distinct-key flood never holds more than ``max_keys``."""
        tracker = RateTracker(window=10.0, max_keys=8)
        for i in range(1000):
            tracker.record(f"k{i}", now=float(i))
            assert len(tracker) <= 8
        assert len(tracker) == 8
        assert tracker.evicted_keys == 992
        # Only the most recently recorded keys survive, in LRU order.
        assert tracker.tracked_keys() == [f"k{i}" for i in range(992, 1000)]

    def test_eviction_is_least_recently_recorded(self):
        tracker = RateTracker(max_keys=2)
        tracker.record("a", 0.0)
        tracker.record("b", 1.0)
        tracker.record("a", 2.0)   # refreshes "a": "b" is now the LRU key
        tracker.record("c", 3.0)   # evicts "b"
        assert sorted(tracker.tracked_keys()) == ["a", "c"]
        assert tracker.total("a") == 2
        assert tracker.evicted_keys == 1

    def test_evicted_key_reports_zero_then_recovers(self):
        tracker = RateTracker(window=100.0, max_keys=1)
        tracker.record("a", 0.0)
        tracker.record("b", 1.0)   # evicts "a" with its arrival history
        assert tracker.rate("a", now=1.0) == 0.0
        assert tracker.total("a") == 0
        # Arrivals for an evicted key start a fresh count.
        tracker.record("a", 2.0)
        assert tracker.total("a") == 1
        assert tracker.rate("a", now=2.0) == 1.0

    def test_unbounded_by_default(self):
        tracker = RateTracker()
        for i in range(100):
            tracker.record(f"k{i}", 0.0)
        assert len(tracker) == 100
        assert tracker.evicted_keys == 0


class TestRicEntry:
    def test_freshness(self):
        entry = RicEntry(key_text="k", rate=1.0, address="n", observed_at=10.0)
        assert entry.is_fresh(now=15.0, freshness=5.0)
        assert not entry.is_fresh(now=16.0, freshness=5.0)
        assert entry.is_fresh(now=1e9, freshness=None)


class TestCandidateTable:
    def entry(self, key="k", rate=1.0, address="n", observed_at=0.0):
        return RicEntry(
            key_text=key, rate=rate, address=address, observed_at=observed_at
        )

    def test_update_keeps_most_recent(self):
        table = CandidateTable()
        table.update(self.entry(rate=1.0, observed_at=1.0))
        table.update(self.entry(rate=9.0, observed_at=5.0))
        table.update(self.entry(rate=3.0, observed_at=2.0))  # older, ignored
        assert table.lookup("k", now=10.0).rate == 9.0

    def test_lookup_respects_freshness(self):
        table = CandidateTable(freshness=5.0)
        table.update(self.entry(observed_at=0.0))
        assert table.lookup("k", now=4.0) is not None
        assert table.lookup("k", now=6.0) is None
        assert table.hits == 1
        assert table.misses == 1

    def test_address_survives_staleness(self):
        table = CandidateTable(freshness=1.0)
        table.update(self.entry(address="node-9", observed_at=0.0))
        assert table.lookup("k", now=100.0) is None
        assert table.address_of("k") == "node-9"
        assert table.address_of("unknown") is None

    def test_update_many_and_len(self):
        table = CandidateTable()
        table.update_many([self.entry(key="a"), self.entry(key="b")])
        assert len(table) == 2


class TestMergeRicInfo:
    def test_most_recent_entry_wins(self):
        older = RicEntry("k", 1.0, "n1", observed_at=1.0)
        newer = RicEntry("k", 2.0, "n2", observed_at=5.0)
        merged = merge_ric_info({"k": older}, [newer])
        assert merged["k"] is newer
        merged_back = merge_ric_info({"k": newer}, [older])
        assert merged_back["k"] is newer

    def test_disjoint_keys_union(self):
        a = RicEntry("a", 1.0, "n", 0.0)
        b = RicEntry("b", 1.0, "n", 0.0)
        merged = merge_ric_info({"a": a}, [b])
        assert set(merged) == {"a", "b"}
