"""Tests for QPL/SL load accounting."""

from repro.metrics.collectors import LoadTracker


class TestLoadTracker:
    def test_qpl_definition(self):
        tracker = LoadTracker()
        tracker.record_tuple_received("a")
        tracker.record_tuple_received("a")
        tracker.record_query_received("a")
        tracker.record_input_query_received("a")  # not part of QPL
        assert tracker.node("a").query_processing_load == 3
        assert tracker.total_query_processing_load == 3

    def test_storage_definition(self):
        tracker = LoadTracker()
        tracker.record_query_stored("a")
        tracker.record_tuple_stored("a")
        tracker.record_tuple_stored("a")
        assert tracker.node("a").storage_load == 3
        assert tracker.node("a").current_storage == 3

    def test_drops_reduce_current_but_not_cumulative(self):
        tracker = LoadTracker()
        tracker.record_query_stored("a")
        tracker.record_tuple_stored("a")
        tracker.record_query_dropped("a")
        tracker.record_tuple_dropped("a")
        assert tracker.node("a").storage_load == 2
        assert tracker.node("a").current_storage == 0
        assert tracker.total_current_storage == 0

    def test_ranked_distributions(self):
        tracker = LoadTracker()
        for _ in range(5):
            tracker.record_tuple_received("busy")
        tracker.record_tuple_received("idle")
        assert tracker.ranked_query_processing_load() == [5, 1]
        tracker.record_tuple_stored("busy")
        assert tracker.ranked_storage_load() == [1, 0]

    def test_participation(self):
        tracker = LoadTracker()
        tracker.record_tuple_received("a")
        tracker.record_input_query_received("b")  # no QPL
        assert tracker.participating_nodes() == 1

    def test_averages(self):
        tracker = LoadTracker()
        for _ in range(10):
            tracker.record_query_received("a")
        assert tracker.qpl_per_node(5) == 2.0
        assert tracker.qpl_per_node(0) == 0.0
        tracker.record_tuple_stored("a")
        assert tracker.storage_per_node(1) == 1.0

    def test_answers_counted(self):
        tracker = LoadTracker()
        tracker.record_answer("a")
        tracker.record_answer("b")
        assert tracker.total_answers == 2

    def test_snapshot_and_reset(self):
        tracker = LoadTracker()
        tracker.record_tuple_received("a")
        tracker.record_tuple_stored("a")
        assert tracker.snapshot() == (1, 1)
        tracker.reset()
        assert tracker.snapshot() == (0, 0)
