"""Sliding-window validity and garbage collection (Section 5).

A sliding-window join of window size ``W`` only combines tuples that are
"close" to each other: a tuple inserted at time ``t1`` can be combined only
with tuples that arrive between ``t1`` and ``t1 + W``.  RJoin enforces this
with purely local checks on the rewritten queries: every rewritten query
remembers the window *clock* values (publication time for time-based
windows, the global publication sequence number for tuple-based windows) of
the tuples consumed so far; a candidate tuple may extend the combination only
if the resulting clock span still fits in the window.

This module implements the order-independent form of the paper's rules (see
DESIGN.md): a combination ``τ1 … τk`` is valid iff
``max(clock) − min(clock) + 1 ≤ W``.  The ``+ 1`` follows the paper's
``|start(q1) − pubT(τ)| + 1 ≤ window(q1)`` formula.  Because future tuples
only ever have larger clocks, a stored rewritten query whose oldest consumed
tuple has fallen out of the window can never be satisfied again and is
garbage collected — this is the state-reduction mechanism evaluated in
Figures 7 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple as TupleT

from repro.data.tuples import Tuple
from repro.sql.ast import WindowSpec


@dataclass(frozen=True)
class WindowState:
    """Clock span of the tuples consumed so far by a rewritten query."""

    min_clock: float
    max_clock: float

    @property
    def span(self) -> float:
        """Clock span of the consumed tuples, using the paper's +1 convention."""
        return self.max_clock - self.min_clock + 1

    def extended_with(self, clock: float) -> "WindowState":
        """The state after also consuming a tuple with the given clock."""
        return WindowState(
            min_clock=min(self.min_clock, clock),
            max_clock=max(self.max_clock, clock),
        )


def initial_state(window: Optional[WindowSpec], tup: Tuple) -> Optional[WindowState]:
    """Window state after the *first* tuple of a combination is consumed.

    Mirrors the paper's first rule: when a tuple τ triggers an input query,
    the generated rewritten query starts its window at ``pubT(τ)``.
    Returns None for windowless queries.
    """
    if window is None:
        return None
    clock = window.clock_of(tup)
    return WindowState(min_clock=clock, max_clock=clock)


def admits(
    window: Optional[WindowSpec],
    state: Optional[WindowState],
    tup: Tuple,
) -> bool:
    """Whether ``tup`` may join the combination described by ``state``."""
    if window is None:
        return True
    if state is None:
        # No tuple consumed yet (input query): the first tuple always fits.
        return True
    clock = window.clock_of(tup)
    new_state = state.extended_with(clock)
    return new_state.span <= window.size


def extend(
    window: Optional[WindowSpec],
    state: Optional[WindowState],
    tup: Tuple,
) -> Optional[WindowState]:
    """Window state after consuming ``tup`` (assumes :func:`admits` was checked)."""
    if window is None:
        return None
    if state is None:
        return initial_state(window, tup)
    return state.extended_with(window.clock_of(tup))


def expired(
    window: Optional[WindowSpec],
    state: Optional[WindowState],
    current_clock: float,
) -> bool:
    """Whether a stored rewritten query can never be satisfied again.

    ``current_clock`` is the clock of the most recent event observed by the
    node (the incoming tuple's publication time or sequence number): every
    future tuple will have a clock of at least ``current_clock``, so once the
    span from the oldest consumed tuple to "now" exceeds the window, the
    stored query is garbage.
    """
    if window is None or state is None:
        return False
    return (current_clock - state.min_clock + 1) > window.size


def tuple_expired(
    window: Optional[WindowSpec], tup: Tuple, current_clock: float
) -> bool:
    """Whether a stored tuple has aged out of every possible window combination."""
    if window is None:
        return False
    return (current_clock - window.clock_of(tup) + 1) > window.size


def combination_valid(window: Optional[WindowSpec], clocks: TupleT[float, ...]) -> bool:
    """Order-independent validity of a full combination (used by the reference engine)."""
    if window is None or not clocks:
        return True
    return (max(clocks) - min(clocks) + 1) <= window.size
