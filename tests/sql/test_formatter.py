"""Tests for SQL formatting and round-tripping."""

import pytest

from repro.data.schema import AttributeRef
from repro.sql.ast import Constant, Query, SelectionPredicate
from repro.sql.formatter import format_query
from repro.sql.parser import parse_query


CASES = [
    "SELECT R.a FROM R",
    "SELECT R.a, S.d FROM R, S WHERE R.b = S.c",
    "SELECT DISTINCT R.a FROM R, S WHERE R.b = S.c",
    "SELECT R.a FROM R, S WHERE R.b = S.c AND S.d = 7",
    "SELECT R.a FROM R, S WHERE R.b = S.c WINDOW 50 TUPLES",
    "SELECT R.a, S.d, T.f FROM R, S, T WHERE R.b = S.c AND S.d = T.e",
]


@pytest.mark.parametrize("text", CASES)
def test_round_trip(text):
    """parse(format(parse(text))) is structurally identical to parse(text)."""
    query = parse_query(text)
    rendered = format_query(query)
    assert parse_query(rendered) == query


def test_string_literals_are_quoted_and_escaped():
    query = parse_query("SELECT R.a FROM R WHERE R.b = 'o\\'clock'")
    rendered = format_query(query)
    assert "\\'" in rendered
    assert parse_query(rendered) == query


def test_complete_query_rendering():
    query = Query(select_items=(Constant(6), Constant(9)), relations=())
    rendered = format_query(query)
    assert rendered == "SELECT 6, 9"


def test_rewritten_query_rendering_matches_paper_style():
    query = Query(
        select_items=(Constant(6), AttributeRef("M", "A")),
        relations=("J", "M"),
        join_predicates=(),
        selection_predicates=(SelectionPredicate(AttributeRef("J", "B"), 6),),
    )
    rendered = format_query(query)
    assert rendered == "SELECT 6, M.A FROM J, M WHERE J.B = 6"


def test_window_rendering():
    query = parse_query("SELECT R.a FROM R WINDOW 10 TIME")
    assert "WINDOW 10 TIME" in format_query(query)
