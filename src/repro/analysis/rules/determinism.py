"""Rule ``determinism-purity`` — no nondeterminism inside the simulated core.

The deterministic :class:`~repro.net.simulator.SimulationKernel` is the
project's oracle harness (ROADMAP item 1 keeps it as the reference even
after real concurrency lands): two runs with the same seed must take the
same decisions in the same order.  That property dies the moment simulated
code reads the wall clock, draws from an unseeded RNG, or iterates an
unordered ``set`` where the order feeds observable behaviour.  This rule
bans those constructs inside ``core/``, ``net/`` and ``dht/``:

* calls into wall-clock / entropy APIs (``time.time``, ``datetime.now``,
  ``os.urandom``, ``uuid.uuid4``, ``secrets.*`` …),
* module-level :mod:`random` functions (they share interpreter-global
  state) and ``random.Random()`` constructed without a seed,
* ``for``-loops and comprehensions iterating over a ``set`` — a literal
  set display / ``set()`` call / set comprehension in iterable position,
  or a name the enclosing scope assigned one to — without a
  ``sorted(...)`` wrapper; string hash randomisation makes that order
  differ between interpreter runs.

Kernel-clock plumbing and seeded-RNG helpers that must touch these APIs
declare it with ``# repro: allow[determinism-purity]`` or the
:func:`repro.lint.lint_allow` decorator.

The concurrent ``asyncio`` runtime (:data:`EXEMPT_FILES`) is exempt as a
whole: wall-clock waits (backpressure timeouts) and scheduler-dependent
interleavings are the *point* of that runtime — determinism is exactly the
property it trades away, and it is never the oracle harness.  The ``sim``
transport and everything else under the scope stays gated.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Union

from repro.analysis.base import Finding, Rule, SourceFile
from repro.analysis.project import Project

#: Directories the purity invariant covers.
SCOPE = ("core/", "net/", "dht/")

#: Files inside the scope that are exempt as a whole: the concurrent
#: runtimes, where wall-clock timeouts and nondeterministic interleavings
#: are legitimate by design.  Deterministic transports must NOT be added
#: here — they are the oracle harness the rule exists to protect.
EXEMPT_FILES = ("net/runtime_asyncio.py",)

#: ``module -> banned attributes`` (``*`` bans every attribute).
_BANNED_MODULE_CALLS: Dict[str, Set[str]] = {
    "time": {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    },
    "os": {"urandom", "getrandom"},
    "uuid": {"uuid1", "uuid4"},
    "secrets": {"*"},
}

#: ``datetime``-module constructors that read the wall clock.
_BANNED_DATETIME_ATTRS = {"now", "utcnow", "today"}

#: Attributes of :mod:`random` that are classes, not global-state functions.
_RANDOM_CLASS_NAMES = {"Random", "SystemRandom"}

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _called_name(func: ast.expr) -> str:
    """Dotted name of a call target (best effort, '' when not a name)."""
    parts = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_set_expression(node: ast.expr) -> bool:
    """Whether ``node`` evaluates to a freshly built unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _called_name(node.func) in {"set", "frozenset"}
    return False


def _is_set_annotation(node: ast.expr) -> bool:
    """Whether an annotation names a set type (``Set[...]``, ``set`` …)."""
    target = node.value if isinstance(node, ast.Subscript) else node
    if isinstance(target, ast.Name):
        return target.id in {"Set", "set", "FrozenSet", "frozenset", "MutableSet"}
    if isinstance(target, ast.Attribute):
        return target.attr in {"Set", "FrozenSet", "MutableSet"}
    return False


def _scope_nodes(scope_body: List[ast.stmt]) -> Iterator[ast.AST]:
    """Walk ``scope_body`` without descending into nested function scopes.

    Class bodies *are* descended into: a loop in a class body executes in
    the enclosing scope's order semantics and nested functions get their
    own scope pass.  Function definitions appearing directly in the scope
    body are excluded up front for the same reason — each one is the root
    of its own pass.
    """
    stack: List[ast.AST] = [
        node
        for node in scope_body
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)


class DeterminismRule(Rule):
    """Ban wall-clock, entropy and unordered-set ordering in the core."""

    name = "determinism-purity"
    description = (
        "no wall-clock reads, unseeded/global RNG or unordered-set "
        "iteration inside core/, net/, dht/"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for sf in project.in_dirs(*SCOPE):
            if sf.rel in EXEMPT_FILES:
                continue
            yield from self._check_file(sf)

    # ------------------------------------------------------------------
    def _check_file(self, sf: SourceFile) -> Iterator[Finding]:
        # Names bound to banned callables by ``from X import Y`` imports.
        from_imports: Dict[str, str] = {}
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(sf, node, from_imports)

        # One set-iteration pass per lexical scope: the module body plus
        # every (possibly nested) function body.
        yield from self._check_scope(sf, sf.tree.body)
        for node in ast.walk(sf.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(sf, node.body)

    def _check_scope(
        self, sf: SourceFile, scope_body: List[ast.stmt]
    ) -> Iterator[Finding]:
        """Set-iteration checks within one lexical scope.

        Besides literal set expressions in iterable position, names the
        scope assigns a set to (``x = set()``, ``x: Set[str] = ...``) are
        tracked so that a later ``for item in x`` is caught — the shape
        real violations take.
        """
        set_names: Set[str] = set()
        for node in _scope_nodes(scope_body):
            if isinstance(node, ast.Assign) and _is_set_expression(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        set_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _is_set_annotation(node.annotation) or (
                    node.value is not None and _is_set_expression(node.value)
                ):
                    set_names.add(node.target.id)
        for node in _scope_nodes(scope_body):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(sf, node.iter, node, set_names)
            elif isinstance(
                node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)
            ):
                for generator in node.generators:
                    yield from self._check_iteration(
                        sf, generator.iter, node, set_names
                    )

    def _check_call(
        self, sf: SourceFile, node: ast.Call, from_imports: Dict[str, str]
    ) -> Iterator[Finding]:
        dotted = _called_name(node.func)
        if not dotted:
            return
        head, _, rest = dotted.partition(".")
        resolved = from_imports.get(head)
        if resolved and not rest:
            # ``from time import time`` style: resolve to the module path.
            head, _, rest = resolved.partition(".")
        if head in _BANNED_MODULE_CALLS:
            banned = _BANNED_MODULE_CALLS[head]
            attr = rest.split(".")[0] if rest else ""
            if "*" in banned or attr in banned:
                yield self.finding(
                    sf,
                    node,
                    f"call to {dotted}() is nondeterministic inside the "
                    "simulated core; route through the kernel clock or a "
                    "seeded RNG (allowlist if this *is* that plumbing)",
                )
            return
        if head == "datetime" and rest:
            attr = rest.split(".")[-1]
            if attr in _BANNED_DATETIME_ATTRS:
                yield self.finding(
                    sf,
                    node,
                    f"call to {dotted}() reads the wall clock; simulated "
                    "code must use the kernel clock",
                )
            return
        if head == "random":
            attr = rest.split(".")[0] if rest else ""
            if attr and attr not in _RANDOM_CLASS_NAMES:
                yield self.finding(
                    sf,
                    node,
                    f"module-level random.{attr}() uses interpreter-global "
                    "RNG state; draw from an explicitly seeded "
                    "random.Random instance",
                )
            elif attr == "Random" and not node.args and not node.keywords:
                yield self.finding(
                    sf,
                    node,
                    "random.Random() without a seed is nondeterministic; "
                    "pass an explicit seed",
                )
            elif attr == "SystemRandom":
                yield self.finding(
                    sf,
                    node,
                    "random.SystemRandom draws OS entropy and can never be "
                    "seeded; use random.Random(seed)",
                )

    def _check_iteration(
        self,
        sf: SourceFile,
        iterable: ast.expr,
        anchor: ast.AST,
        set_names: Set[str],
    ) -> Iterator[Finding]:
        is_set = _is_set_expression(iterable) or (
            isinstance(iterable, ast.Name) and iterable.id in set_names
        )
        if is_set:
            yield self.finding(
                sf,
                anchor,
                "iteration over an unordered set: the order feeds "
                "downstream behaviour and varies across interpreter runs "
                "(string hash randomisation); wrap the iterable in "
                "sorted(...)",
            )
