"""Cross-runtime equivalence: the ``asyncio`` actor runtime vs the oracle.

The concurrent runtime trades delivery-order determinism for real
concurrency; RJoin's answer bags are provably order-independent (paper
Theorems 1–2, with ``allow_attribute_level_rewrites=False``), so the same
workload must produce the *same bag of answers* on the ``asyncio`` runtime
as on the deterministic ``sim`` runtime and as the centralised oracle —
across every indexing strategy, every store backend, and under membership
churn including owner failover.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.core.reference import ReferenceEngine
from repro.data.backends import BACKEND_NAMES
from repro.errors import EngineError, SimulationError
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

pytestmark = pytest.mark.hard_timeout(300)

STRATEGIES = ("rjoin", "random", "worst", "first")


def run_concurrent(
    spec: WorkloadSpec,
    num_queries: int,
    num_tuples: int,
    config: RJoinConfig,
):
    """Run the same workload through the asyncio engine and the oracle."""
    assert config.runtime == "asyncio"
    generator = WorkloadGenerator(spec)
    engine = RJoinEngine(config)
    engine.register_catalog(generator.catalog)
    reference = ReferenceEngine(generator.catalog)
    handles = []
    for query in generator.generate_queries(num_queries):
        handle = engine.submit(query)
        reference.submit(
            query, query_id=handle.query_id, insertion_time=handle.insertion_time
        )
        handles.append(handle)
    for generated in generator.generate_tuples(num_tuples):
        tup = engine.publish(generated.relation, generated.values)
        reference.publish_tuple(tup)
    return engine, reference, handles


def as_bag(values) -> List[str]:
    return sorted(repr(v) for v in values)


def assert_bags_match(handles, reference) -> None:
    produced = 0
    for handle in handles:
        expected = as_bag(reference.answers(handle.query_id))
        assert as_bag(handle.values()) == expected
        produced += len(expected)
    assert produced > 0, "workload produced no answers"


class TestStrategyBackendMatrix:
    """4 strategies × 3 backends, each run concurrently, each oracle-exact."""

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_answer_bags_match_oracle(self, strategy, backend):
        spec = WorkloadSpec(
            num_relations=4,
            attributes_per_relation=3,
            value_domain=4,
            join_arity=3,
            seed=1201,
        )
        config = RJoinConfig(
            num_nodes=16,
            seed=12,
            runtime="asyncio",
            strategy=strategy,
            store_backend=backend,
        )
        engine, reference, handles = run_concurrent(
            spec, num_queries=6, num_tuples=30, config=config
        )
        try:
            assert_bags_match(handles, reference)
        finally:
            engine.close()


class TestSimAsyncioEquivalence:
    """The two runtimes, fed the identical workload, agree bag-for-bag."""

    def run_on(self, runtime: str, queries, tuples, **overrides):
        config = RJoinConfig(num_nodes=16, seed=13, runtime=runtime, **overrides)
        engine = RJoinEngine(config)
        engine.register_catalog(self.generator.catalog)
        handles = [engine.submit(query) for query in queries]
        for generated in tuples:
            engine.publish(generated.relation, generated.values)
        return engine, handles

    def test_same_workload_same_bags(self):
        spec = WorkloadSpec(
            num_relations=4,
            attributes_per_relation=3,
            value_domain=3,
            join_arity=3,
            seed=1301,
        )
        self.generator = WorkloadGenerator(spec)
        queries = self.generator.generate_queries(6)
        tuples = self.generator.generate_tuples(30)
        sim_engine, sim_handles = self.run_on("sim", queries, tuples)
        conc_engine, conc_handles = self.run_on("asyncio", queries, tuples)
        try:
            for sim_handle, conc_handle in zip(sim_handles, conc_handles):
                assert as_bag(sim_handle.values()) == as_bag(conc_handle.values())
            assert sum(h.count for h in sim_handles) > 0
        finally:
            sim_engine.close()
            conc_engine.close()

    def test_scheduled_churn_same_bags_and_counters(self):
        # Same scheduled join + graceful leave on both runtimes: same seed
        # picks the same ring positions and victims, graceful hand-offs lose
        # nothing, so bags AND churn counters must agree exactly.
        spec = WorkloadSpec(
            num_relations=4,
            attributes_per_relation=3,
            value_domain=3,
            join_arity=3,
            seed=1401,
        )
        self.generator = WorkloadGenerator(spec)
        queries = self.generator.generate_queries(6)
        tuples = self.generator.generate_tuples(40)
        engines = {}
        for runtime in ("sim", "asyncio"):
            config = RJoinConfig(num_nodes=16, seed=14, runtime=runtime)
            engine = RJoinEngine(config)
            engine.register_catalog(self.generator.catalog)
            handles = [engine.submit(query) for query in queries]
            engine.schedule_membership_op("join", delay=0.5)
            engine.schedule_membership_op("leave", delay=1.5, graceful=True)
            for generated in tuples:
                engine.publish(generated.relation, generated.values)
            engines[runtime] = (engine, handles)
        sim_engine, sim_handles = engines["sim"]
        conc_engine, conc_handles = engines["asyncio"]
        try:
            assert sim_engine.churn.joins == conc_engine.churn.joins == 1
            assert sim_engine.churn.leaves == conc_engine.churn.leaves == 1
            assert len(sim_engine.nodes) == len(conc_engine.nodes)
            for sim_handle, conc_handle in zip(sim_handles, conc_handles):
                assert as_bag(sim_handle.values()) == as_bag(conc_handle.values())
        finally:
            sim_engine.close()
            conc_engine.close()


class TestConcurrentFailover:
    def test_owner_crash_loses_no_post_crash_answers(self):
        # The single-identifier-arc construction from the lifecycle suite:
        # the victim owns queries but no key-range state, so crashing it
        # exercises owner failover without state loss the oracle cannot
        # model — post-crash bags must stay oracle-exact on asyncio too.
        spec = WorkloadSpec(
            num_relations=4,
            attributes_per_relation=3,
            value_domain=3,
            join_arity=3,
            seed=1501,
        )
        generator = WorkloadGenerator(spec)
        engine = RJoinEngine(
            RJoinConfig(num_nodes=24, seed=15, runtime="asyncio")
        )
        engine.register_catalog(generator.catalog)
        reference = ReferenceEngine(generator.catalog)
        anchor = engine.ring.nodes[0]
        victim = engine.add_node(
            node_id=(anchor.node_id + 1) % (2 ** engine.space.bits)
        )
        handles = []
        for query in generator.generate_queries(6):
            handle = engine.submit(query, owner=victim)
            reference.submit(
                query,
                query_id=handle.query_id,
                insertion_time=handle.insertion_time,
            )
            handles.append(handle)
        for generated in generator.generate_tuples(20):
            tup = engine.publish(generated.relation, generated.values)
            reference.publish_tuple(tup)
        owned = engine.lifecycle.queries_owned_by(victim)
        assert owned
        engine.crash_node(victim)
        assert engine.churn.failover_reregistrations >= len(owned)
        for generated in generator.generate_tuples(30):
            tup = engine.publish(generated.relation, generated.values)
            reference.publish_tuple(tup)
        try:
            assert_bags_match(handles, reference)
        finally:
            engine.close()


class TestEngineRuntimeSurface:
    def test_runtime_property_reports_the_transport(self, small_catalog):
        with RJoinEngine(
            RJoinConfig(num_nodes=8, seed=1, runtime="asyncio"),
            catalog=small_catalog,
        ) as engine:
            assert engine.runtime == "asyncio"
        engine = RJoinEngine(RJoinConfig(num_nodes=8, seed=1), catalog=small_catalog)
        assert engine.runtime == "sim"
        engine.close()

    def test_kernel_access_raises_off_sim(self, small_catalog):
        with RJoinEngine(
            RJoinConfig(num_nodes=8, seed=1, runtime="asyncio"),
            catalog=small_catalog,
        ) as engine:
            with pytest.raises(EngineError, match="no simulation kernel"):
                engine.kernel
        engine = RJoinEngine(RJoinConfig(num_nodes=8, seed=1), catalog=small_catalog)
        assert engine.kernel is engine.transport.kernel
        engine.close()

    def test_close_is_idempotent_and_final(self, small_catalog):
        engine = RJoinEngine(
            RJoinConfig(num_nodes=8, seed=2, runtime="asyncio"),
            catalog=small_catalog,
        )
        engine.submit("SELECT R.a, S.d FROM R, S WHERE R.b = S.c")
        engine.publish("R", (1, 10))
        engine.publish("S", (10, 2))
        engine.close()
        engine.close()
        with pytest.raises(SimulationError, match="shut down"):
            engine.publish("R", (2, 20))

    def test_unknown_runtime_is_rejected_at_config_time(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown runtime"):
            RJoinConfig(num_nodes=8, runtime="threads")
