"""Chord overlay: nodes, finger tables, lookup paths, join/leave/move.

The simulation keeps a global view of the ring (all experiments in the paper
run on a stable network), but routing is performed exactly as Chord would
with correct finger tables: a lookup from node ``x`` for identifier ``id``
greedily forwards the request to the finger that most closely precedes
``id``, reaching ``Successor(id)`` in ``O(log N)`` hops with high
probability.  The hop sequence returned by :meth:`ChordRing.route_path` is
what the traffic accounting of the experiments charges.

Node joins, voluntary leaves and identifier movement (used by the
load-balancing experiment of Figure 9) are supported; after a membership
change the cached finger tables are invalidated, which models Chord reaching
stability again before the next message is routed.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.dht.hashing import IdentifierSpace
from repro.dht.ring import RingMap
from repro.errors import (
    ConfigurationError,
    DuplicateNodeError,
    EmptyRingError,
    UnknownNodeError,
)


class ChordNode:
    """A single Chord node: an identifier plus a network address."""

    __slots__ = ("node_id", "address")

    def __init__(self, node_id: int, address: str) -> None:
        self.node_id = node_id
        self.address = address

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChordNode(id={self.node_id}, address={self.address!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChordNode):
            return NotImplemented
        return self.address == other.address and self.node_id == other.node_id

    def __hash__(self) -> int:
        return hash((self.address, self.node_id))


class ChordRing:
    """The global view of a Chord network used by the simulation."""

    def __init__(self, space: Optional[IdentifierSpace] = None) -> None:
        self.space = space or IdentifierSpace()
        self._ring: RingMap[ChordNode] = RingMap(self.space)
        self._by_address: Dict[str, ChordNode] = {}
        self._finger_cache: Dict[str, List[ChordNode]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create_network(
        cls,
        num_nodes: int,
        space: Optional[IdentifierSpace] = None,
        seed: Optional[int] = None,
        address_format: str = "node-{index}",
        hashed_placement: bool = False,
    ) -> "ChordRing":
        """Create a ring of ``num_nodes`` nodes.

        Node identifiers are drawn uniformly at random (default) or by
        hashing the node address (``hashed_placement=True``), both of which
        are standard Chord deployments.
        """
        if num_nodes <= 0:
            raise ConfigurationError("a network needs at least one node")
        ring = cls(space)
        rng = random.Random(seed)
        for index in range(num_nodes):
            address = address_format.format(index=index)
            if hashed_placement:
                node_id = ring.space.hash_key(address)
                # Extremely unlikely collisions: re-draw deterministically.
                while node_id in ring._ring:
                    node_id = ring.space.normalize(node_id + 1)
            else:
                node_id = ring.random_free_identifier(rng)
            ring.add_node(address, node_id)
        return ring

    def random_free_identifier(self, rng: random.Random) -> int:
        """Draw a uniform identifier not currently occupied by any node.

        This is the placement rule of :meth:`create_network`, exposed so that
        nodes joining a live ring land the same way the founding nodes did.
        """
        node_id = self.space.random_identifier(rng)
        while node_id in self._ring:
            node_id = self.space.normalize(node_id + 1)
        return node_id

    def add_node(self, address: str, node_id: Optional[int] = None) -> ChordNode:
        """A node joins the ring (its identifier is hashed from the address by default)."""
        if address in self._by_address:
            raise DuplicateNodeError(f"a node with address {address!r} already exists")
        if node_id is None:
            node_id = self.space.hash_key(address)
        node_id = self.space.normalize(node_id)
        node = ChordNode(node_id, address)
        self._ring.insert(node_id, node)
        self._by_address[address] = node
        self._invalidate_fingers()
        return node

    def remove_node(self, address: str) -> ChordNode:
        """A node leaves (or fails); its key range is absorbed by its successor."""
        node = self.node_by_address(address)
        self._ring.remove(node.node_id)
        del self._by_address[address]
        self._invalidate_fingers()
        return node

    def move_node(self, address: str, new_id: int) -> Tuple[int, int]:
        """Relocate a node on the identifier circle (id movement, Figure 9).

        Returns ``(old_id, new_id)``.  The caller is responsible for
        re-homing application state whose ownership changed.
        """
        node = self.node_by_address(address)
        old_id = node.node_id
        new_id = self.space.normalize(new_id)
        if new_id == old_id:
            return old_id, new_id
        self._ring.move(old_id, new_id)
        node.node_id = new_id
        self._invalidate_fingers()
        return old_id, new_id

    def _invalidate_fingers(self) -> None:
        self._finger_cache.clear()

    # ------------------------------------------------------------------
    # membership queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    @property
    def nodes(self) -> List[ChordNode]:
        """All nodes ordered by identifier."""
        return self._ring.values()

    @property
    def addresses(self) -> List[str]:
        """All node addresses ordered by identifier."""
        return [node.address for node in self._ring.values()]

    def node_by_address(self, address: str) -> ChordNode:
        """Return the node with the given address or raise."""
        try:
            return self._by_address[address]
        except KeyError:
            raise UnknownNodeError(f"no node with address {address!r}") from None

    def has_address(self, address: str) -> bool:
        """Whether a node with ``address`` participates in the ring."""
        return address in self._by_address

    # ------------------------------------------------------------------
    # ownership / lookup
    # ------------------------------------------------------------------
    def successor(self, identifier: int) -> ChordNode:
        """``Successor(identifier)``: the node responsible for the identifier."""
        _, node = self._ring.successor(identifier)
        return node

    def predecessor_of(self, node: ChordNode) -> ChordNode:
        """The node immediately preceding ``node`` on the circle."""
        _, pred = self._ring.predecessor(node.node_id)
        return pred

    def successor_of(self, node: ChordNode) -> ChordNode:
        """The node immediately following ``node`` on the circle."""
        _, succ = self._ring.successor(self.space.normalize(node.node_id + 1))
        return succ

    def owner_of_key(self, key: str) -> ChordNode:
        """The node responsible for a string key (``Successor(Hash(key))``)."""
        return self.successor(self.space.hash_key(key))

    def arc_length_of(self, node: ChordNode) -> int:
        """Number of identifiers owned by ``node``."""
        return self._ring.arc_length(node.node_id)

    # ------------------------------------------------------------------
    # finger tables and routing
    # ------------------------------------------------------------------
    def finger_table(self, node: ChordNode) -> List[ChordNode]:
        """The finger table of ``node``: ``finger[i] = Successor(n + 2^i)``."""
        cached = self._finger_cache.get(node.address)
        if cached is not None:
            return cached
        fingers = [
            self.successor(self.space.power_step(node.node_id, i))
            for i in range(self.space.bits)
        ]
        self._finger_cache[node.address] = fingers
        return fingers

    def route_path(self, start: ChordNode, identifier: int) -> List[ChordNode]:
        """The node sequence a Chord lookup from ``start`` for ``identifier`` visits.

        The returned list starts at ``start`` and ends at
        ``Successor(identifier)``.  Each intermediate step follows the finger
        that most closely precedes the identifier (greedy Chord routing with
        perfect finger tables); the number of transmissions for the lookup is
        ``len(path) - 1``.
        """
        if len(self._ring) == 0:
            raise EmptyRingError("cannot route on an empty ring")
        identifier = self.space.normalize(identifier)
        owner = self.successor(identifier)
        path = [start]
        current = start
        # Upper bound on steps: the identifier-space bit width (each greedy
        # step at least halves the remaining clockwise distance).
        for _ in range(self.space.bits + 1):
            if current.address == owner.address:
                return path
            next_hop = self._closest_preceding_hop(current, identifier)
            path.append(next_hop)
            current = next_hop
        raise ConfigurationError(
            "routing did not converge; the ring is in an inconsistent state"
        )

    def _closest_preceding_hop(self, current: ChordNode, identifier: int) -> ChordNode:
        """The next hop of greedy Chord routing from ``current`` towards ``identifier``."""
        remaining = self.space.distance(current.node_id, identifier)
        if remaining == 0:
            return current
        # The largest useful finger is 2^(bit_length(remaining) - 1): larger
        # fingers overshoot the target and would be skipped anyway.
        top_exponent = min(self.space.bits, remaining.bit_length()) - 1
        for exponent in range(top_exponent, -1, -1):
            step = 1 << exponent
            if step > remaining:
                continue
            candidate = self.successor(self.space.power_step(current.node_id, exponent))
            progress = self.space.distance(current.node_id, candidate.node_id)
            if 0 < progress <= remaining:
                return candidate
        # No finger falls inside (current, identifier]: the immediate
        # successor of ``current`` owns the identifier.
        return self.successor_of(current)

    def lookup(self, start_address: str, key: str) -> Tuple[ChordNode, int]:
        """Resolve ``key`` starting from ``start_address``; return (owner, hops)."""
        start = self.node_by_address(start_address)
        path = self.route_path(start, self.space.hash_key(key))
        return path[-1], len(path) - 1

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def estimate_max_lookup_hops(self) -> int:
        """A crude upper bound on lookup hops for the current network size.

        Used to derive the ALTT expiry ``Δ`` (Section 4): each node can
        estimate the number of nodes in the network and compute an
        overestimate of the time a lookup can take.
        """
        n = max(len(self._ring), 2)
        return max(2 * n.bit_length(), 4)

    def load_map(self, load_of: Callable[[ChordNode], float]) -> Dict[str, float]:
        """Evaluate ``load_of`` for every node, keyed by address."""
        return {node.address: load_of(node) for node in self.nodes}
