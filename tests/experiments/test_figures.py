"""Smoke tests for the figure harness (tiny overrides, qualitative assertions)."""


from repro.experiments.figures import (
    figure2,
    figure3,
    figure7,
    figure9,
)


class TestFigure2:
    def test_strategy_ordering_holds(self):
        fig = figure2(num_nodes=24, num_queries=40, checkpoints=[20, 40])
        last = -1
        worst = fig.series["worst_qpl_per_node"][last]
        random_ = fig.series["random_qpl_per_node"][last]
        rjoin = fig.series["rjoin_qpl_per_node"][last]
        assert worst >= random_ >= rjoin
        assert (
            fig.series["worst_storage_per_node"][last]
            >= fig.series["rjoin_storage_per_node"][last]
        )
        # RIC traffic is only a part of RJoin's total traffic.
        assert (
            fig.series["rjoin_ric_messages_per_node"][last]
            <= fig.series["rjoin_messages_per_node"][last]
        )
        text = fig.to_text()
        assert "Figure 2" in text and "worst_qpl_per_node" in text


class TestFigure3:
    def test_load_grows_with_tuples(self):
        fig = figure3(num_nodes=24, num_queries=40, tuple_counts=[10, 30])
        qpl_small = sum(fig.distributions["qpl_ranked_10"])
        qpl_large = sum(fig.distributions["qpl_ranked_30"])
        assert qpl_large >= qpl_small
        assert (
            fig.series["participating_nodes"][1]
            >= fig.series["participating_nodes"][0]
        )


class TestFigure7:
    def test_larger_windows_cost_more(self):
        fig = figure7(
            num_nodes=24, num_queries=40, num_tuples=60, window_sizes=[10, 40]
        )
        qpl = fig.series["qpl_per_node"]
        storage = fig.series["total_current_storage"]
        assert qpl[1] >= qpl[0]
        assert storage[1] >= storage[0]


class TestFigure9:
    def test_id_movement_does_not_increase_peak_load(self):
        fig = figure9(num_nodes=24, num_queries=60, num_tuples=60)
        max_without, max_with = fig.series["max_storage"]
        assert max_with <= max_without
        participating_without, participating_with = fig.series["participating_nodes"]
        assert participating_with >= participating_without
