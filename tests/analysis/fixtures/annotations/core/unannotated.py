"""Fixture functions with incomplete signatures (strict-typing gate)."""


def no_return_annotation(value: int):  # VIOLATION: missing return annotation
    return value * 2


class Holder:
    def __init__(self, value):  # VIOLATION: missing value + return
        self.value = value

    def get(self) -> int:
        return self.value


def tolerated(value):  # repro: allow[annotation-completeness]
    return value
