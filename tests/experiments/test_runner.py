"""Tests for the experiment runner (on deliberately tiny workloads)."""


from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_engine, build_workload, run_experiment
from repro.sql.ast import WindowSpec


TINY = dict(num_nodes=16, num_queries=12, num_tuples=20, seed=3)


class TestBuilders:
    def test_build_engine_respects_config(self):
        config = ExperimentConfig(strategy="random", id_movement=True, **TINY)
        engine = build_engine(config)
        assert len(engine.ring) == 16
        assert engine.strategy.name == "random"
        assert engine.balancer is not None

    def test_build_workload_respects_config(self):
        config = ExperimentConfig(join_arity=3, zipf_theta=0.5, **TINY)
        generator = build_workload(config)
        assert generator.spec.join_arity == 3
        assert generator.spec.zipf_theta == 0.5
        assert len(generator.catalog) == config.num_relations


class TestRunExperiment:
    def test_summary_and_distributions(self):
        result = run_experiment(ExperimentConfig(**TINY))
        assert result.summary["submitted_queries"] == 12
        assert result.summary["published_tuples"] == 20
        assert result.messages_total > 0
        assert result.messages_per_node > 0
        assert len(result.ranked_qpl) <= 16
        assert result.ranked_qpl == sorted(result.ranked_qpl, reverse=True)
        assert result.ranked_storage == sorted(result.ranked_storage, reverse=True)

    def test_checkpoints_are_recorded(self):
        config = ExperimentConfig(checkpoints=[10, 20], **TINY)
        result = run_experiment(config)
        assert set(result.checkpoints) == {10, 20}
        assert (
            result.checkpoints[20]["total_messages"]
            >= result.checkpoints[10]["total_messages"]
        )
        assert result.checkpoint_delta(20, "messages_per_node") >= 0.0

    def test_per_tuple_capture(self):
        config = ExperimentConfig(capture_per_tuple=True, **TINY)
        result = run_experiment(config)
        assert len(result.cumulative_qpl) == 20
        assert result.cumulative_qpl == sorted(result.cumulative_qpl)
        assert len(result.cumulative_storage) == 20

    def test_warmup_excluded_from_tuple_phase(self):
        config = ExperimentConfig(warmup_tuples=10, **TINY)
        result = run_experiment(config)
        assert result.warmup_baseline["published_tuples"] == 10
        assert (
            result.baseline["total_messages"]
            >= result.warmup_baseline["total_messages"]
        )
        assert result.messages_tuple_phase <= result.messages_total
        assert result.qpl_per_node >= 0.0

    def test_windowed_experiment_runs(self):
        config = ExperimentConfig(
            window=WindowSpec(size=10, mode="tuples"), **TINY
        )
        result = run_experiment(config)
        assert result.summary["current_storage"] <= result.summary["total_storage"]

    def test_strategies_affect_load(self):
        rjoin = run_experiment(
            ExperimentConfig(strategy="rjoin", warmup_tuples=10, **TINY)
        )
        worst = run_experiment(
            ExperimentConfig(strategy="worst", warmup_tuples=10, **TINY)
        )
        # With informed decisions the worst strategy must not beat RJoin.
        assert worst.summary["total_qpl"] >= rjoin.summary["total_qpl"]
