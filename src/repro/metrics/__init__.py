"""Load metrics and reporting.

The experimental section measures three quantities per node (Section 8):

* **network traffic** — messages sent or routed (see
  :class:`repro.net.stats.TrafficStats`),
* **query processing load (QPL)** — rewritten queries received to search for
  locally stored tuples plus tuples received to search for locally stored
  queries,
* **storage load (SL)** — rewritten queries plus tuples stored locally.

:class:`~repro.metrics.collectors.LoadTracker` maintains QPL/SL per node;
:mod:`repro.metrics.report` provides the ranked-node distributions and
text-table rendering used by the benchmark harness.
"""

from repro.metrics.collectors import (
    ChurnStats,
    LoadTracker,
    MembershipEvent,
    NodeLoad,
)
from repro.metrics.report import (
    format_table,
    group_ranked,
    participation_count,
    ranked_distribution,
)

__all__ = [
    "ChurnStats",
    "LoadTracker",
    "MembershipEvent",
    "NodeLoad",
    "format_table",
    "group_ranked",
    "participation_count",
    "ranked_distribution",
]
