"""Per-node RJoin protocol logic (Procedures 1–3 plus Sections 4–7 extensions).

Every DHT node of the simulated network hosts one :class:`RJoinNode` — the
application-layer state and the handlers for every protocol message:

* publishing a tuple (Procedure 1): the tuple is sent, for each of its
  attributes, to the attribute-level key and to the value-level key,
* receiving a tuple (Procedure 2): locally stored queries indexed under the
  arrival key are triggered, rewritten and re-indexed (or answered); tuples
  arriving at the value level are stored locally, tuples arriving at the
  attribute level are remembered in the ALTT for Δ time units,
* receiving an input query: it is stored at the attribute level and matched
  against the ALTT (the Section 4 fix for message delays),
* receiving a rewritten query (Procedure 3): it is stored and matched against
  the locally stored tuples,
* RIC requests/replies (Section 6) and the candidate-table/piggy-backing
  optimisations (Section 7),
* sliding-window garbage collection (Section 5) and DISTINCT projection
  tracking (Section 4).
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple as TupleT,
)

from repro.core.altt import AttributeLevelTupleTable
from repro.core.dedup import ProjectionTracker
from repro.core.keys import ATTRIBUTE_LEVEL, IndexKey, tuple_index_keys
from repro.core.protocol import (
    AnswerMessage,
    EvalMessage,
    IndexQueryMessage,
    NewTupleMessage,
    QueryState,
    RetractQueryMessage,
    RicReplyMessage,
    RicRequestMessage,
)
from repro.core.rewriting import rewrite_query
from repro.core.ric import CandidateTable, RateTracker, RicEntry
from repro.core.strategy import (
    IndexingStrategy,
    input_query_candidates,
    rewritten_query_candidates,
)
from repro.core.windows import admits, expired, extend
from repro.core.config import RJoinConfig
from repro.data.backends import (
    DEFAULT_BACKEND,
    PREFIX_PROBE,
    StoreBackend,
    StoreTuning,
    make_store,
)
from repro.data.schema import Catalog, RelationSchema
from repro.data.store import StoredTuple
from repro.data.tuples import Tuple
from repro.dht.api import DHTMessagingService
from repro.dht.hashing import IdentifierSpace
from repro.errors import EngineError
from repro.metrics.collectors import LoadTracker
from repro.net.messages import Envelope
from repro.sql.ast import WindowSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.lifecycle import HandleRegistration


@dataclass
class NodeContext:
    """Engine-provided services shared by every :class:`RJoinNode`."""

    api: DHTMessagingService
    space: IdentifierSpace
    config: RJoinConfig
    strategy: IndexingStrategy
    loads: LoadTracker
    catalog: Catalog
    rng: random.Random
    clock: Callable[[], float]
    sequence_clock: Callable[[], int]
    rate_oracle: Callable[[str], float]
    collect_answer: Callable[[AnswerMessage, float], None]
    altt_delta: Optional[float] = None
    #: Tuple-store backend every node of the engine builds its local store
    #: from (see :func:`repro.data.backends.make_store`).
    store_backend: str = DEFAULT_BACKEND
    #: Backend tuning knobs (compaction thresholds) forwarded to the store
    #: factory; ``None`` keeps each backend's defaults.
    store_tuning: Optional[StoreTuning] = None
    # Query lifecycle services (retraction + owner failover) ---------------
    #: ``(query_id, fallback) -> current owner address``: producers resolve
    #: the live owner at answer-emission time so failover re-registrations
    #: take effect without rewriting every stored query state.
    resolve_owner: Optional[Callable[[str, str], str]] = None
    #: Whether a query id has been retracted; state arriving for a retracted
    #: query is orphaned and must be dropped on sight.
    is_retracted: Optional[Callable[[str], bool]] = None
    #: Sink for the orphaned-state probe (dropped post-retraction records).
    record_orphaned: Optional[Callable[[int], None]] = None
    #: Sink for per-node retraction purges (records deleted per query).
    record_retracted: Optional[Callable[[int], None]] = None


@dataclass
class StoredQueryRecord:
    """A (rewritten or input) query stored at a node, with local bookkeeping."""

    state: QueryState
    key: IndexKey
    stored_at: float
    tracker: Optional[ProjectionTracker] = None


class QueryTable:
    """Key-addressed stored-query records with O(1) size and heap-driven GC.

    Both node-local query tables (input and rewritten) use this structure.
    Besides the plain ``key text -> records`` mapping it maintains an
    incremental size counter (the storage-load accounting used to re-count
    every list on each access) and, per window mode, a min-heap of expiry
    deadlines so a garbage-collection tick only touches records that have
    actually expired.
    """

    __slots__ = ("_by_key", "_size", "_expiry", "_tiebreak")

    def __init__(self) -> None:
        self._by_key: Dict[str, List[StoredQueryRecord]] = {}
        self._size = 0
        # mode -> (deadline, tiebreak, key text, record) min-heap.  Entries
        # are never removed eagerly; stale ones (records dropped through the
        # trigger path or rehomed) are skipped by an identity check.
        self._expiry: Dict[str, List] = {"time": [], "tuples": []}
        self._tiebreak = itertools.count()

    def add(self, key_text: str, record: StoredQueryRecord) -> None:
        """Store ``record`` under ``key_text``."""
        self._by_key.setdefault(key_text, []).append(record)
        self._size += 1
        window = record.state.query.window
        state = record.state.window_state
        if window is not None and state is not None:
            # expired(window, state, clock) <=> clock > deadline.
            deadline = state.min_clock + window.size - 1
            heapq.heappush(
                self._expiry[window.mode],
                (deadline, next(self._tiebreak), key_text, record),
            )

    def get(self, key_text: str) -> Optional[List[StoredQueryRecord]]:
        """The records stored under ``key_text`` (None when there are none)."""
        return self._by_key.get(key_text)

    def replace(self, key_text: str, records: List[StoredQueryRecord]) -> None:
        """Swap the record list of ``key_text`` (dropping the key when empty)."""
        previous = self._by_key.get(key_text)
        self._size += len(records) - (len(previous) if previous else 0)
        if records:
            self._by_key[key_text] = records
        else:
            self._by_key.pop(key_text, None)

    def pop_key(self, key_text: str) -> List[StoredQueryRecord]:
        """Remove and return every record stored under ``key_text``."""
        records = self._by_key.pop(key_text, [])
        self._size -= len(records)
        return records

    def keys(self) -> Iterable[str]:
        """The key texts currently holding records."""
        return self._by_key.keys()

    def items(self) -> Iterable[TupleT[str, List[StoredQueryRecord]]]:
        """Iterate over ``(key text, records)`` pairs."""
        return self._by_key.items()

    def __iter__(self) -> Iterable[str]:
        return iter(self._by_key)

    def __len__(self) -> int:
        """Number of stored records across all keys; O(1)."""
        return self._size

    def remove_query(self, query_id: str) -> List[StoredQueryRecord]:
        """Remove (and return) every record belonging to ``query_id``.

        The retraction path of the query lifecycle subsystem.  Stale expiry
        heap entries for the removed records pop harmlessly later — the
        identity check of :meth:`gc_expired` skips records that are no
        longer stored.
        """
        removed: List[StoredQueryRecord] = []
        for key_text in list(self._by_key):
            records = self._by_key[key_text]
            kept = [
                record for record in records
                if record.state.query_id != query_id
            ]
            if len(kept) == len(records):
                continue
            removed.extend(
                record for record in records
                if record.state.query_id == query_id
            )
            self.replace(key_text, kept)
        return removed

    def gc_expired(self, clocks: Mapping[str, float]) -> int:
        """Drop records whose window deadline passed; returns the drop count.

        ``clocks`` maps a window mode to its current clock value.  Deadlines
        are fixed at insertion time (window states are immutable), so a
        record is expired exactly when its deadline is below the clock.
        """
        dropped = 0
        for mode, clock in clocks.items():
            heap = self._expiry[mode]
            while heap and heap[0][0] < clock:
                _, _, key_text, record = heapq.heappop(heap)
                records = self._by_key.get(key_text)
                if not records:
                    continue
                for index, existing in enumerate(records):
                    if existing is record:
                        del records[index]
                        dropped += 1
                        self._size -= 1
                        if not records:
                            del self._by_key[key_text]
                        break
        return dropped


@dataclass
class _PendingIndexOp:
    """An indexing decision waiting for RIC information to come back."""

    state: QueryState
    is_input: bool
    candidates: List[IndexKey]
    known: Dict[str, RicEntry]


@dataclass
class RehomedItem:
    """A stored item that must move to another node after id movement."""

    kind: str     # "input" | "rewritten" | "tuple" | "altt" | "registration"
    key_text: str
    payload: object


class RJoinNode:
    """The application-layer state and handlers of one DHT node."""

    def __init__(self, address: str, ctx: NodeContext) -> None:
        self.address = address
        self.ctx = ctx
        # Stored state ----------------------------------------------------
        self.input_queries = QueryTable()
        self.rewritten_queries = QueryTable()
        self.tuple_store: StoreBackend = make_store(
            ctx.store_backend, tuning=ctx.store_tuning
        )
        self.altt = AttributeLevelTupleTable(delta=ctx.altt_delta)
        # RIC state ---------------------------------------------------------
        self.rates = RateTracker(window=ctx.config.ric_window)
        self.candidate_table = CandidateTable(freshness=ctx.config.ric_freshness)
        self._pending_ric: Dict[str, _PendingIndexOp] = {}
        self._ric_counter = 0
        # Query lifecycle state -----------------------------------------------
        #: Replicated handle registrations this node holds for queries whose
        #: owner's ring successor it currently is (owner failover).
        self.registrations: Dict[str, "HandleRegistration"] = {}
        # Local counters ------------------------------------------------------
        self.answers_sent = 0
        #: Times a cached one-hop address turned out to have left the ring by
        #: the time a query was sent (Section 6 shortcut gone stale).  Eager
        #: candidate-table invalidation on membership events keeps this at
        #: zero; the counter is the regression probe for that behaviour.
        self.stale_one_hop_attempts = 0

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle_envelope(self, envelope: Envelope) -> None:
        """Entry point registered with the messaging service."""
        message = envelope.message
        if isinstance(message, NewTupleMessage):
            self._on_new_tuple(message)
        elif isinstance(message, EvalMessage):
            self._on_eval(message)
        elif isinstance(message, IndexQueryMessage):
            self._on_index_query(message)
        elif isinstance(message, RicRequestMessage):
            self._on_ric_request(message)
        elif isinstance(message, RicReplyMessage):
            self._on_ric_reply(message)
        elif isinstance(message, AnswerMessage):
            self._on_answer(message)
        elif isinstance(message, RetractQueryMessage):
            self._on_retract_query(message)
        # Unknown messages are silently ignored (forward compatibility).

    # ------------------------------------------------------------------
    # Procedure 1: publishing a tuple
    # ------------------------------------------------------------------
    def publish_tuple(self, tup: Tuple) -> int:
        """Index ``tup`` in the network: twice per attribute (attribute + value level).

        Returns the number of messages handed to ``multiSend``.
        """
        return self.publish_tuples((tup,))

    def publish_tuples(self, tuples: Sequence[Tuple]) -> int:
        """Index a whole batch of tuples with a single ``multiSend``.

        The batch path hashes every indexing key once and lets the messaging
        service coalesce the per-message traffic accounting; it is the fast
        path behind :meth:`repro.core.engine.RJoinEngine.publish_batch`.
        """
        catalog = self.ctx.catalog
        hash_key = self.ctx.space.hash_key
        messages: List[NewTupleMessage] = []
        identifiers: List[int] = []
        for tup in tuples:
            schema = catalog.get(tup.relation)
            for key in tuple_index_keys(tup, schema):
                messages.append(
                    NewTupleMessage(tuple=tup, key=key, publisher=self.address)
                )
                identifiers.append(hash_key(key.text))
        self.ctx.api.multi_send(self.address, messages, identifiers)
        return len(messages)

    # ------------------------------------------------------------------
    # query submission (invoked on the owner node by the engine)
    # ------------------------------------------------------------------
    def submit_query(self, state: QueryState) -> None:
        """Start indexing an input query submitted by this node."""
        self._index_query(state, is_input=True)

    # ------------------------------------------------------------------
    # Procedure 2: receiving a tuple
    # ------------------------------------------------------------------
    def _on_new_tuple(self, msg: NewTupleMessage) -> None:
        now = self.ctx.clock()
        key = msg.key
        tup = msg.tuple
        self.ctx.loads.record_tuple_received(self.address)
        self.rates.record(key.text, now)

        if key.level == ATTRIBUTE_LEVEL:
            self._trigger_stored_queries(self.input_queries, key.text, tup)
            if self.ctx.config.allow_attribute_level_rewrites:
                self._trigger_stored_queries(self.rewritten_queries, key.text, tup)
            # Remember the tuple for input queries that are still in flight
            # (Section 4); entries expire after Δ.
            self.altt.add(key.text, tup, now)
            self.altt.expire(now)
        else:
            self._trigger_stored_queries(self.rewritten_queries, key.text, tup)
            self.tuple_store.add(key.text, tup, now)
            self.ctx.loads.record_tuple_stored(self.address)

    def _trigger_stored_queries(
        self,
        table: QueryTable,
        key_text: str,
        tup: Tuple,
    ) -> None:
        """Trigger, rewrite and re-index the queries stored under ``key_text``."""
        records = table.get(key_text)
        if not records:
            return
        schema = self.ctx.catalog.get(tup.relation)
        # The survivor list is only materialised lazily, on the first expiry:
        # the common case (nothing aged out) must not allocate and rebuild a
        # fresh list on every tuple arrival.
        survivors: Optional[List[StoredQueryRecord]] = None
        for index, record in enumerate(records):
            window = record.state.query.window
            # Sliding-window garbage collection: a rewritten query whose
            # oldest consumed tuple has aged out of the window can never be
            # satisfied again (Section 5).
            if not record.state.is_input and window is not None:
                if expired(window, record.state.window_state, window.clock_of(tup)):
                    self.ctx.loads.record_query_dropped(self.address)
                    if survivors is None:
                        survivors = list(records[:index])
                    continue
            if survivors is not None:
                survivors.append(record)
            self._try_trigger(record, tup, schema)
        if survivors is not None:
            table.replace(key_text, survivors)

    def _try_trigger(
        self, record: StoredQueryRecord, tup: Tuple, schema: RelationSchema
    ) -> None:
        """Apply the trigger conditions and, if satisfied, rewrite and re-index."""
        state = record.state
        if tup.pub_time < state.insertion_time:
            return  # only tuples published at or after the query's submission
        window = state.query.window
        if not admits(window, state.window_state, tup):
            return
        if tup.relation not in state.query.relations:
            return
        if state.distinct and record.tracker is not None:
            if not record.tracker.admit_and_record(state.query, tup, schema):
                return
        result = rewrite_query(state.query, tup, schema)
        if result.dead:
            return
        assert result.query is not None
        new_window_state = extend(window, state.window_state, tup)
        new_state = state.derive(result.query, new_window_state)
        if result.complete:
            self._emit_answer(new_state)
        else:
            self._index_query(new_state, is_input=False)

    @staticmethod
    def _make_tracker(state: QueryState) -> Optional[ProjectionTracker]:
        """Projection tracking applies to DISTINCT queries without windows.

        For windowless DISTINCT queries the paper's local rule is safe: a
        suppressed tuple can only ever reproduce answer values that the
        previously seen projection already produces.  With sliding windows
        the rule could suppress a tuple whose earlier twin expired before
        completing a combination, losing answers; those queries rely on the
        owner-side deduplication of :class:`~repro.core.answers.QueryHandle`
        instead (see DESIGN.md).
        """
        if state.distinct and state.query.window is None:
            return ProjectionTracker()
        return None

    def _emit_answer(self, state: QueryState) -> None:
        """Ship an answer directly to the node that submitted the input query.

        The destination is resolved through the lifecycle layer at emission
        time: after an owner failover the stored query states still carry
        the departed owner's address, but answers must reach the surviving
        registrant.
        """
        now = self.ctx.clock()
        answer = AnswerMessage(
            query_id=state.query_id,
            values=state.query.answer_values(),
            produced_at=now,
            producer=self.address,
        )
        self.answers_sent += 1
        self.ctx.loads.record_answer(self.address)
        owner = state.owner
        if self.ctx.resolve_owner is not None:
            owner = self.ctx.resolve_owner(state.query_id, owner)
        self.ctx.api.send_direct(self.address, answer, owner)

    # ------------------------------------------------------------------
    # receiving an input query
    # ------------------------------------------------------------------
    def _on_index_query(self, msg: IndexQueryMessage) -> None:
        now = self.ctx.clock()
        self.ctx.loads.record_input_query_received(self.address)
        state, key = msg.state, msg.key
        if self._drop_if_retracted(state):
            return
        self._adopt_ric_info(state)
        record = StoredQueryRecord(
            state=state,
            key=key,
            stored_at=now,
            tracker=self._make_tracker(state),
        )
        self.input_queries.add(key.text, record)
        # Section 4, rule 2: search the ALTT for tuples that raced past the query.
        schema_cache: Dict[str, object] = {}
        for tup in self.altt.find(
            key.text, now, published_at_or_after=state.insertion_time
        ):
            schema = schema_cache.get(tup.relation)
            if schema is None:
                schema = self.ctx.catalog.get(tup.relation)
                schema_cache[tup.relation] = schema
            self._try_trigger(record, tup, schema)

    # ------------------------------------------------------------------
    # Procedure 3: receiving a rewritten query
    # ------------------------------------------------------------------
    def _on_eval(self, msg: EvalMessage) -> None:
        now = self.ctx.clock()
        self.ctx.loads.record_query_received(self.address)
        state, key = msg.state, msg.key
        if self._drop_if_retracted(state):
            return
        self._adopt_ric_info(state)

        record = StoredQueryRecord(
            state=state,
            key=key,
            stored_at=now,
            tracker=self._make_tracker(state),
        )
        # A query whose window can no longer admit *future* tuples is not
        # stored, but it must still be matched against the tuples already
        # stored here: those were published in the past and may well complete
        # a combination that fits the window.
        window = state.query.window
        window_open_for_future = window is None or not expired(
            window, state.window_state, self._window_clock(window)
        )
        if window_open_for_future:
            self.rewritten_queries.add(key.text, record)
            self.ctx.loads.record_query_stored(self.address)

        # Match against tuples already stored locally (published after the
        # input query was submitted but delivered here before this query).
        # The store hands the tuples out already ordered by
        # ``(pub_time, sequence)``, so no re-sort is needed here.
        for tup in self._stored_tuples_for(key):
            schema = self.ctx.catalog.get(tup.relation)
            self._try_trigger(record, tup, schema)

    def _stored_tuples_for(self, key: IndexKey) -> List[Tuple]:
        """Locally stored tuples matching a query indexed under ``key``.

        Results are in publication order (``(pub_time, sequence)``).
        """
        if key.is_value_level:
            return self.tuple_store.tuples_for_key(key.text)
        # Attribute-level rewritten query: scan every value-level copy of the
        # relation-attribute pair plus the ALTT, deduplicating publications.
        # Routed through the set-at-a-time API so disk backends serve it from
        # their batch/memo path.
        now = self.ctx.clock()
        (tuples,) = self.tuple_store.match_batch(
            ((PREFIX_PROBE, key.attribute_prefix),)
        )
        seen = {tup.identity for tup in tuples}
        extras: List[Tuple] = []
        for tup in self.altt.find(key.text, now):
            if tup.identity not in seen:
                seen.add(tup.identity)
                extras.append(tup)
        if not extras:
            return tuples
        extras.sort(key=lambda t: (t.pub_time, t.sequence))
        return list(
            heapq.merge(tuples, extras, key=lambda t: (t.pub_time, t.sequence))
        )

    # ------------------------------------------------------------------
    # indexing pipeline (Sections 3, 6 and 7)
    # ------------------------------------------------------------------
    def _adopt_ric_info(self, state: QueryState) -> None:
        """Adopt the RIC information piggy-backed on an arriving query.

        Entries reported by nodes that have since left the ring are purged
        *before* they reach the candidate table — otherwise an in-flight
        query would re-pollute tables that the membership event already
        invalidated eagerly, and the stale address would surface later as a
        failed one-hop attempt.
        """
        ring = self.ctx.api.ring
        stale = [
            key_text
            for key_text, cached in state.ric_info.items()
            if not ring.has_address(cached.address)
        ]
        for key_text in stale:
            del state.ric_info[key_text]
        self.candidate_table.update_many(state.ric_info.values())

    def _index_query(self, state: QueryState, is_input: bool) -> None:
        """Decide where to index ``state`` and send it there."""
        config = self.ctx.config
        if is_input:
            candidates = input_query_candidates(state.query)
        else:
            candidates = rewritten_query_candidates(
                state.query,
                allow_attribute_level=config.allow_attribute_level_rewrites,
            )
        if not candidates:
            # Nothing to wait for (degenerate query): nothing to index.
            return
        strategy = self.ctx.strategy
        now = self.ctx.clock()

        if strategy.requires_ric:
            known: Dict[str, RicEntry] = {}
            unknown: List[IndexKey] = []
            for key in candidates:
                entry = state.ric_info.get(key.text)
                if entry is None or not entry.is_fresh(now, config.ric_freshness):
                    entry = self.candidate_table.lookup(key.text, now)
                if entry is not None:
                    known[key.text] = entry
                else:
                    unknown.append(key)
            if unknown:
                self._start_ric_chain(state, is_input, candidates, known, unknown)
                return
            self._finish_indexing(state, is_input, candidates, known)
            return

        rates: Dict[str, float] = {}
        if strategy.uses_oracle:
            rates = {key.text: self.ctx.rate_oracle(key.text) for key in candidates}
        choice = strategy.choose(candidates, rates, self.ctx.rng)
        self._send_query(state, is_input, choice, known_address=None)

    def _start_ric_chain(
        self,
        state: QueryState,
        is_input: bool,
        candidates: List[IndexKey],
        known: Dict[str, RicEntry],
        unknown: List[IndexKey],
    ) -> None:
        """Ask the candidate nodes we know nothing about for RIC information."""
        self._ric_counter += 1
        request_id = f"{self.address}/ric-{self._ric_counter}"
        self._pending_ric[request_id] = _PendingIndexOp(
            state=state, is_input=is_input, candidates=candidates, known=dict(known)
        )
        first, rest = unknown[0], tuple(unknown[1:])
        request = RicRequestMessage(
            request_id=request_id,
            origin=self.address,
            target_key=first,
            pending=rest,
            collected=(),
        )
        self.ctx.api.send(
            self.address,
            request,
            self.ctx.space.hash_key(first.text),
            is_ric=True,
        )

    def _on_ric_request(self, msg: RicRequestMessage) -> None:
        """Report the local arrival rate and forward the chain (Section 6)."""
        now = self.ctx.clock()
        entry = RicEntry(
            key_text=msg.target_key.text,
            rate=self.rates.rate(msg.target_key.text, now),
            address=self.address,
            observed_at=now,
        )
        collected = msg.collected + (entry,)
        if msg.pending:
            next_key, rest = msg.pending[0], msg.pending[1:]
            forwarded = RicRequestMessage(
                request_id=msg.request_id,
                origin=msg.origin,
                target_key=next_key,
                pending=rest,
                collected=collected,
            )
            self.ctx.api.send(
                self.address,
                forwarded,
                self.ctx.space.hash_key(next_key.text),
                is_ric=True,
            )
        else:
            reply = RicReplyMessage(request_id=msg.request_id, collected=collected)
            self.ctx.api.send_direct(self.address, reply, msg.origin, is_ric=True)

    def _on_ric_reply(self, msg: RicReplyMessage) -> None:
        """Complete a pending indexing decision with the freshly gathered rates."""
        op = self._pending_ric.pop(msg.request_id, None)
        if op is None:
            return
        if self._drop_if_retracted(op.state):
            return
        # A reporter can crash while its reply is in flight; its entries are
        # dead on arrival and must not re-enter the candidate table.
        ring = self.ctx.api.ring
        collected = [
            entry for entry in msg.collected if ring.has_address(entry.address)
        ]
        self.candidate_table.update_many(collected)
        entries = {
            key_text: entry
            for key_text, entry in op.known.items()
            if ring.has_address(entry.address)
        }
        for entry in collected:
            entries[entry.key_text] = entry
        self._finish_indexing(op.state, op.is_input, op.candidates, entries)

    def _finish_indexing(
        self,
        state: QueryState,
        is_input: bool,
        candidates: List[IndexKey],
        entries: Dict[str, RicEntry],
    ) -> None:
        """Choose the candidate with the gathered rates and ship the query."""
        rates = {key_text: entry.rate for key_text, entry in entries.items()}
        choice = self.ctx.strategy.choose(candidates, rates, self.ctx.rng)
        # Piggy-back what we know so the next node can reuse it (Section 7).
        state.ric_info.update(entries)
        chosen_entry = entries.get(choice.text)
        known_address = chosen_entry.address if chosen_entry is not None else None
        self._send_query(state, is_input, choice, known_address)

    def _send_query(
        self,
        state: QueryState,
        is_input: bool,
        key: IndexKey,
        known_address: Optional[str],
    ) -> None:
        """Transmit the (input or rewritten) query to its chosen node."""
        if is_input:
            message = IndexQueryMessage(state=state, key=key)
        else:
            message = EvalMessage(state=state, key=key)
        ring = self.ctx.api.ring
        # The one-hop shortcut of Section 6 only applies while the cached
        # candidate address is still responsible for the key; after a node
        # leaves or moves (id movement), fall back to a regular DHT lookup.
        if known_address is not None and not ring.has_address(known_address):
            # The cached candidate departed: membership events should have
            # invalidated this entry eagerly, so count the stale attempt.
            self.stale_one_hop_attempts += 1
            known_address = None
        if (
            known_address is not None
            and ring.owner_of_key(key.text).address == known_address
        ):
            self.ctx.api.send_direct(self.address, message, known_address)
        else:
            self.ctx.api.send(
                self.address, message, self.ctx.space.hash_key(key.text)
            )

    # ------------------------------------------------------------------
    # answers
    # ------------------------------------------------------------------
    def _on_answer(self, msg: AnswerMessage) -> None:
        """An answer for a query submitted by this node arrived."""
        self.ctx.collect_answer(msg, self.ctx.clock())

    # ------------------------------------------------------------------
    # query lifecycle: retraction and vacuum
    # ------------------------------------------------------------------
    def _drop_if_retracted(self, state: QueryState) -> bool:
        """Drop state of an already-retracted query (orphan guard).

        Retraction drains the network first, so in ordinary runs nothing is
        in flight when a query is removed; this guard catches the exotic
        interleavings (kernel-scheduled membership ops firing mid-drain)
        where a straggler could otherwise re-install purged state.  Every
        hit feeds the ``orphaned_state_records`` probe.
        """
        is_retracted = self.ctx.is_retracted
        if is_retracted is None or not is_retracted(state.query_id):
            return False
        if self.ctx.record_orphaned is not None:
            self.ctx.record_orphaned(1)
        return True

    def _on_retract_query(self, msg: RetractQueryMessage) -> None:
        """Delete every piece of local state belonging to a retracted query."""
        self.retract_query(msg.query_id)

    def retract_query(self, query_id: str) -> int:
        """Purge ``query_id``'s state from this node; returns the purge count.

        Covers the three per-query state kinds a node can hold: the stored
        input-query record, every rewritten query derived from it, and RIC
        round trips still pending on its behalf.  Purged rewritten queries
        leave the storage-load accounting like window-expired ones do, so
        ``current_storage`` keeps matching the live state.
        """
        input_records = self.input_queries.remove_query(query_id)
        rewritten_records = self.rewritten_queries.remove_query(query_id)
        if rewritten_records:
            self.ctx.loads.record_query_dropped(
                self.address, len(rewritten_records)
            )
        stale_ops = [
            request_id
            for request_id, op in self._pending_ric.items()
            if op.state.query_id == query_id
        ]
        for request_id in stale_ops:
            del self._pending_ric[request_id]
        purged = len(input_records) + len(rewritten_records) + len(stale_ops)
        if purged and self.ctx.record_retracted is not None:
            self.ctx.record_retracted(purged)
        return purged

    def vacuum(self, published_before: float) -> int:
        """Reclaim state that exists only to serve continuous queries.

        Called by the engine when the last active query has been removed:
        any *future* query's insertion time will be at or after ``now``,
        and the trigger condition ``pubT(t) >= insT(q)`` makes every tuple
        published strictly before that unreachable — stored value-level
        copies and ALTT entries alike.  The candidate-table RIC cache is
        cleared with them (it only informs indexing decisions of queries).
        Returns the number of reclaimed records.
        """
        tuples_dropped = self.tuple_store.remove_expired(
            published_before=published_before
        )
        if tuples_dropped:
            self.ctx.loads.record_tuple_dropped(self.address, tuples_dropped)
        altt_dropped = self.altt.remove_published_before(published_before)
        cache_dropped = len(self.candidate_table)
        self.candidate_table.clear()
        return tuples_dropped + altt_dropped + cache_dropped

    # ------------------------------------------------------------------
    # sliding-window / storage garbage collection
    # ------------------------------------------------------------------
    def _window_clock(self, window: WindowSpec) -> float:
        """The current value of a window's clock (time or tuple sequence)."""
        if window.mode == "time":
            return self.ctx.clock()
        return float(self.ctx.sequence_clock())

    def gc_expired_state(self) -> TupleT[int, int]:
        """Drop window-expired rewritten queries and (optionally) stored tuples.

        Returns ``(queries dropped, tuples dropped)``.  Stored tuples are only
        collected when the engine configured ``tuple_gc_window`` (i.e. every
        query of the run shares the same window, so an aged-out tuple can
        never contribute to any answer again).
        """
        queries_dropped = self.rewritten_queries.gc_expired(
            {
                "time": self.ctx.clock(),
                "tuples": float(self.ctx.sequence_clock()),
            }
        )
        if queries_dropped:
            self.ctx.loads.record_query_dropped(self.address, queries_dropped)

        tuples_dropped = 0
        gc_window = self.ctx.config.tuple_gc_window
        if gc_window is not None:
            # tuple_expired(window, tup, clock) <=> clock_of(tup) < cutoff.
            cutoff = self._window_clock(gc_window) - gc_window.size + 1
            if gc_window.mode == "time":
                tuples_dropped = self.tuple_store.remove_expired(
                    published_before=cutoff
                )
            else:
                tuples_dropped = self.tuple_store.remove_expired(
                    sequenced_before=int(cutoff)
                )
            if tuples_dropped:
                self.ctx.loads.record_tuple_dropped(self.address, tuples_dropped)
        return queries_dropped, tuples_dropped

    # ------------------------------------------------------------------
    # membership support (id movement, node join/leave — Figure 9 and churn)
    # ------------------------------------------------------------------
    def extract_misplaced(
        self,
        owner_of: Callable[[str], str],
        registration_home: Optional[Callable[[str], Optional[str]]] = None,
    ) -> List[RehomedItem]:
        """Remove and return stored items whose key is now owned by another node.

        Covers every node-local state kind: stored queries (input and
        rewritten), value-level tuples, ALTT entries and — when the caller
        provides the lifecycle layer's ``registration_home`` — replicated
        handle registrations whose proper home (the ring successor of the
        query's owner) is no longer this node.
        """
        items = self._extract(lambda key_text: owner_of(key_text) != self.address)
        if registration_home is not None:
            for query_id in list(self.registrations):
                if registration_home(query_id) != self.address:
                    items.append(
                        RehomedItem(
                            kind="registration",
                            key_text=query_id,
                            payload=self.registrations.pop(query_id),
                        )
                    )
        return items

    def extract_all(self) -> List[RehomedItem]:
        """Remove and return *every* stored item (graceful departure hand-off)."""
        items = self._extract(lambda key_text: True)
        for query_id in list(self.registrations):
            items.append(
                RehomedItem(
                    kind="registration",
                    key_text=query_id,
                    payload=self.registrations.pop(query_id),
                )
            )
        return items

    def _extract(self, should_move: Callable[[str], bool]) -> List[RehomedItem]:
        items: List[RehomedItem] = []

        def _extract_table(table: QueryTable, kind: str) -> None:
            for key_text in list(table.keys()):
                if not should_move(key_text):
                    continue
                for record in table.pop_key(key_text):
                    items.append(
                        RehomedItem(kind=kind, key_text=key_text, payload=record)
                    )

        _extract_table(self.input_queries, "input")
        _extract_table(self.rewritten_queries, "rewritten")

        for key_text in list(self.tuple_store.keys()):
            if not should_move(key_text):
                continue
            for record in self.tuple_store.remove_key(key_text):
                items.append(
                    RehomedItem(kind="tuple", key_text=key_text, payload=record)
                )

        for key_text in self.altt.keys():
            if not should_move(key_text):
                continue
            for entry in self.altt.pop_key(key_text):
                items.append(
                    RehomedItem(kind="altt", key_text=key_text, payload=entry)
                )
        return items

    def forget_address(self, address: str) -> int:
        """Eagerly drop every piece of RIC state naming a departed node.

        Called once per membership departure (graceful leave or crash).
        Covers the candidate table, the RIC caches piggy-backed on stored
        query states (which would otherwise re-pollute the candidate table
        on the next trigger) and pending RIC round trips.  Returns the
        number of invalidated entries.
        """
        dropped = self.candidate_table.invalidate_address(address)

        def _purge(info: Dict[str, RicEntry]) -> int:
            stale = [
                key_text
                for key_text, cached in info.items()
                if cached.address == address
            ]
            for key_text in stale:
                del info[key_text]
            return len(stale)

        for table in (self.input_queries, self.rewritten_queries):
            for _, records in table.items():
                for record in records:
                    dropped += _purge(record.state.ric_info)
        for op in self._pending_ric.values():
            dropped += _purge(op.known)
        return dropped

    def accept_rehomed(self, item: RehomedItem) -> None:
        """Adopt an item handed over by another node after a membership change."""
        if item.kind == "input":
            self.input_queries.add(item.key_text, item.payload)
        elif item.kind == "rewritten":
            self.rewritten_queries.add(item.key_text, item.payload)
        elif item.kind == "tuple":
            record = item.payload
            assert isinstance(record, StoredTuple)
            self.tuple_store.add(item.key_text, record.tuple, record.stored_at)
        elif item.kind == "altt":
            tup, received_at = item.payload
            self.altt.add(item.key_text, tup, received_at)
        elif item.kind == "registration":
            self.registrations[item.key_text] = item.payload
        else:
            raise EngineError(
                f"cannot re-home item of unknown kind {item.kind!r} for key "
                f"{item.key_text!r}; expected one of 'input', 'rewritten', "
                "'tuple', 'altt' or 'registration'"
            )

    def accept_rehomed_batch(self, items: List[RehomedItem]) -> None:
        """Adopt a whole consignment of re-homed items in one pass.

        Tuple records — the bulk of any re-homing under churn — go through
        the store's batch ingestion API so disk backends land them in one
        write transaction; every other kind falls back to the per-item path.
        """
        entries: List[TupleT[str, Tuple, float]] = []
        for item in items:
            if item.kind == "tuple":
                record = item.payload
                assert isinstance(record, StoredTuple)
                entries.append((item.key_text, record.tuple, record.stored_at))
            else:
                self.accept_rehomed(item)
        if entries:
            self.tuple_store.add_batch(entries)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def stored_input_queries(self) -> int:
        """Number of input queries currently stored at this node; O(1)."""
        return len(self.input_queries)

    @property
    def stored_rewritten_queries(self) -> int:
        """Number of rewritten queries currently stored at this node; O(1)."""
        return len(self.rewritten_queries)

    @property
    def stored_tuples(self) -> int:
        """Number of value-level tuples currently stored at this node; O(1)."""
        return len(self.tuple_store)

    @property
    def current_storage_items(self) -> int:
        """Rewritten queries plus tuples currently stored (the SL state)."""
        count = self.stored_rewritten_queries + self.stored_tuples
        if self.ctx.config.count_altt_in_storage:
            count += len(self.altt)
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RJoinNode({self.address}, input={self.stored_input_queries}, "
            f"rewritten={self.stored_rewritten_queries}, tuples={self.stored_tuples})"
        )
