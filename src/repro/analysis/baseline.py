"""Baseline (grandfathering) mechanism of the analysis suite.

A baseline is a committed JSON file recording pre-existing findings by
*fingerprint*: a stable hash of ``(rule, path, message)`` — deliberately
excluding the line number, so unrelated edits that shift code around do not
churn the file.  Identical findings in one file share a fingerprint; the
baseline stores a count per fingerprint and suppresses at most that many
occurrences, so *adding* another instance of a baselined violation still
fails the check.

The shipped tree carries an empty baseline: every invariant holds.  The
mechanism exists so a future rule can land in one PR (baselining its
pre-existing debt) and the debt can be burned down separately.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from repro.analysis.base import Finding
from repro.errors import AnalysisError

BASELINE_FORMAT_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding, independent of its line number."""
    payload = f"{finding.rule}\x1f{finding.path}\x1f{finding.message}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def load_baseline(path: Path) -> Dict[str, int]:
    """Read a baseline file: ``fingerprint -> allowed occurrence count``.

    A missing file is an empty baseline (nothing grandfathered).
    """
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"baseline {str(path)!r} is not valid JSON: {exc}")
    if not isinstance(data, dict) or "entries" not in data:
        raise AnalysisError(
            f"baseline {str(path)!r} has no 'entries' object"
        )
    entries = data["entries"]
    if not isinstance(entries, dict):
        raise AnalysisError(f"baseline {str(path)!r} entries must be an object")
    result: Dict[str, int] = {}
    for key, value in entries.items():
        count = value.get("count", 1) if isinstance(value, dict) else value
        result[str(key)] = int(count)
    return result


def write_baseline(path: Path, findings: List[Finding]) -> int:
    """Write a baseline grandfathering ``findings``; returns the entry count.

    Entries keep a human-readable echo of the finding next to the count so
    reviewers can audit what exactly is being grandfathered.
    """
    counts: Counter[str] = Counter(fingerprint(f) for f in findings)
    samples: Dict[str, Finding] = {}
    for finding in findings:
        samples.setdefault(fingerprint(finding), finding)
    entries = {
        print_key: {
            "count": counts[print_key],
            "rule": samples[print_key].rule,
            "path": samples[print_key].path,
            "message": samples[print_key].message,
        }
        for print_key in sorted(counts)
    }
    document = {"version": BASELINE_FORMAT_VERSION, "entries": entries}
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return len(entries)


def apply_baseline(
    findings: List[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into ``(active, suppressed)`` under ``baseline``.

    Suppression is counted: a fingerprint baselined ``n`` times silences at
    most ``n`` occurrences (in source order); the ``n+1``-th stays active.
    """
    budget = dict(baseline)
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        key = fingerprint(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed.append(finding.suppressed("baseline"))
        else:
            active.append(finding)
    return active, suppressed
