"""The deterministic ``sim`` runtime: discrete-event kernel + transport.

Every interaction in the simulated network — a message delivery, a timer, a
garbage-collection sweep — is an *event*: a callback scheduled at a simulated
time.  The kernel pops events in time order (ties broken by insertion order,
which keeps runs fully deterministic for a fixed seed) and advances the
global clock.

The kernel is deliberately minimal: it knows nothing about Chord or RJoin.
:class:`SimTransport` adapts it to the transport-neutral
:class:`~repro.net.runtime.Transport` contract the DHT messaging API
(:mod:`repro.dht.api`) programs against; the engine
(:mod:`repro.core.engine`) drains it between tuple publications.  This is
the test/oracle harness: two runs with the same seed take the same decisions
in the same order.

.. deprecated::
    ``EventHandle`` moved to :mod:`repro.net.runtime` during the transport
    extraction; importing it from this module still works but warns.
"""

from __future__ import annotations

import heapq
import itertools
import warnings
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.net import runtime as _runtime
from repro.net.messages import Envelope
from repro.net.runtime import DeliverCallback, Transport, _ScheduledEvent

#: Names that moved to :mod:`repro.net.runtime`; accessing them here warns.
_MOVED_TO_RUNTIME = ("EventHandle",)


def __getattr__(name: str) -> Any:
    """Deprecation shims for names that moved to :mod:`repro.net.runtime`."""
    if name in _MOVED_TO_RUNTIME:
        warnings.warn(
            f"repro.net.simulator.{name} moved to repro.net.runtime.{name}; "
            "update the import (the alias will be removed in a future "
            "release)",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_runtime, name)
    # PEP 562 requires AttributeError here: hasattr()/getattr() probing
    # depends on it, so the exception-discipline rule does not apply.
    raise AttributeError(  # repro: allow[exception-discipline]
        f"module {__name__!r} has no attribute {name!r}"
    )


class SimulationKernel(_runtime._TimerLedger):
    """Deterministic discrete-event scheduler with a floating-point clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._heap: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._running = False
        self._live_events = 0  # heap entries that are neither cancelled nor fired

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time`` without processing events.

        Used by the engine to model wall-clock gaps between tuple
        publications.  Pending events scheduled before ``time`` are *not*
        skipped: they will be processed (at their own timestamps) by the next
        :meth:`run_until_idle` call; the clock simply never moves backwards.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot move the clock backwards from {self._now} to {time}"
            )
        self._now = time

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` time units."""
        if delta < 0:
            raise SimulationError("cannot advance the clock by a negative delta")
        self.advance_to(self._now + delta)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> _runtime.EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past ({time} < {self._now})"
            )
        event = _ScheduledEvent(
            time=time, sequence=next(self._sequence), callback=callback, args=args
        )
        heapq.heappush(self._heap, event)
        self._live_events += 1
        return _runtime.EventHandle(event, self)

    def schedule_in(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> _runtime.EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self.schedule_at(self._now + delay, callback, *args)

    def cancel_where(
        self, predicate: Callable[[Callable[..., None], Tuple[Any, ...]], bool]
    ) -> int:
        """Cancel every pending event matching ``predicate(callback, args)``.

        Used to model abrupt node failures: a crash destroys messages that
        are still in flight towards the dead address, so their delivery
        events must never fire.  Returns the number of events cancelled.
        """
        cancelled = 0
        for event in self._heap:
            if event.cancelled or event.fired:
                continue
            if predicate(event.callback, event.args):
                event.cancelled = True
                self._live_events -= 1
                cancelled += 1
        return cancelled

    def extract_where(
        self, predicate: Callable[[Callable[..., None], Tuple[Any, ...]], bool]
    ) -> List[Tuple[Any, ...]]:
        """Cancel matching pending events and return their argument tuples.

        Like :meth:`cancel_where`, but hands the payloads back so the caller
        can reschedule them differently — the mechanism behind re-routing
        in-flight answers to a failed-over query owner.  Results are in
        scheduling order (time, then insertion sequence).
        """
        extracted: List[_ScheduledEvent] = []
        for event in self._heap:
            if event.cancelled or event.fired:
                continue
            if predicate(event.callback, event.args):
                event.cancelled = True
                self._live_events -= 1
                extracted.append(event)
        extracted.sort(key=lambda event: (event.time, event.sequence))
        return [event.args for event in extracted]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next pending event; return False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time > self._now:
                self._now = event.time
            self._events_processed += 1
            self._live_events -= 1
            event.fired = True
            event.callback(*event.args)
            return True
        return False

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Process events until the queue is empty.

        Returns the number of events processed.  ``max_events`` guards
        against runaway event cascades (useful in tests); exceeding it raises
        :class:`~repro.errors.SimulationError`.
        """
        if self._running:
            raise SimulationError("run_until_idle() is not re-entrant")
        self._running = True
        processed = 0
        try:
            while self.step():
                processed += 1
                if max_events is not None and processed > max_events:
                    raise SimulationError(
                        f"exceeded the maximum of {max_events} events"
                    )
        finally:
            self._running = False
        return processed

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Process events with timestamps up to ``time`` (inclusive)."""
        processed = 0
        while self._heap:
            upcoming = self._next_pending()
            if upcoming is None or upcoming.time > time:
                break
            self.step()
            processed += 1
            if max_events is not None and processed > max_events:
                raise SimulationError(f"exceeded the maximum of {max_events} events")
        self.advance_to(max(self._now, time))
        return processed

    def _next_pending(self) -> Optional[_ScheduledEvent]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of events waiting in the queue (excluding cancelled ones); O(1)."""
        return self._live_events

    @property
    def is_running(self) -> bool:
        """Whether an event-processing loop is currently executing."""
        return self._running

    @property
    def events_processed(self) -> int:
        """Total number of events processed since the kernel was created."""
        return self._events_processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationKernel(now={self._now:g}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )


class SimTransport(Transport):
    """The discrete-event kernel behind the :class:`Transport` contract.

    Pure adaptation, no behaviour of its own: deliveries become kernel
    events scheduled ``delay`` time units out and fire in (time, insertion)
    order, exactly as the messaging API historically scheduled them — runs
    are byte-identical to the pre-transport engine.  In-flight surgery maps
    onto the kernel's predicate-based event cancellation/extraction.
    """

    name = "sim"

    #: Spans stay logical-clock-only here: wall time in a trace would make
    #: two reruns of the same seed produce different trace files.
    wall_clock_spans = False

    def __init__(self, kernel: Optional[SimulationKernel] = None) -> None:
        self._kernel = kernel if kernel is not None else SimulationKernel()
        self._deliver: Optional[DeliverCallback] = None
        self._closed = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind(self, deliver: DeliverCallback) -> None:
        """Install the delivery callback posted envelopes are handed to."""
        self._deliver = deliver

    def register_address(self, address: str) -> None:
        """No per-address state: the kernel routes by envelope destination."""

    def unregister_address(self, address: str) -> None:
        """No per-address state to tear down."""

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._kernel.now

    def advance_to(self, time: float) -> None:
        """Move the simulated clock forward to ``time``."""
        self._kernel.advance_to(time)

    def advance_by(self, delta: float) -> None:
        """Move the simulated clock forward by ``delta`` time units."""
        self._kernel.advance_by(delta)

    # ------------------------------------------------------------------
    # message delivery
    # ------------------------------------------------------------------
    def post(self, envelope: Envelope, delay: float) -> None:
        """Schedule the envelope's delivery event on the kernel."""
        if self._closed:
            raise SimulationError("transport is shut down; post() refused")
        if self._deliver is None:
            raise SimulationError(
                "no delivery callback bound; call bind() before post()"
            )
        self._kernel.schedule_in(delay, self._deliver, envelope)

    def cancel_inbound(self, address: str) -> int:
        """Cancel the delivery events of messages addressed to ``address``."""
        # Bound-method comparison must use ``==``: every attribute access on
        # the messaging service creates a fresh bound-method object, so a
        # rebinding caller would defeat an ``is`` check.
        deliver = self._deliver
        return self._kernel.cancel_where(
            lambda callback, args: callback == deliver
            and bool(args)
            and args[0].destination == address
        )

    def extract_inbound(self, address: str) -> List[Envelope]:
        """Take the undelivered messages addressed to ``address`` off the kernel."""
        deliver = self._deliver
        pending = self._kernel.extract_where(
            lambda callback, args: callback == deliver
            and bool(args)
            and args[0].destination == address
        )
        return [args[0] for args in pending]

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> _runtime.EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        return self._kernel.schedule_at(time, callback, *args)

    def schedule_in(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> _runtime.EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` simulated time units."""
        return self._kernel.schedule_in(delay, callback, *args)

    # ------------------------------------------------------------------
    # drain / shutdown
    # ------------------------------------------------------------------
    def drain(self, max_events: Optional[int] = None) -> int:
        """Process events until the kernel queue is empty."""
        return self._kernel.run_until_idle(max_events=max_events)

    @property
    def is_draining(self) -> bool:
        """Whether the kernel's event loop is currently executing."""
        return self._kernel.is_running

    @property
    def pending_events(self) -> int:
        """Events waiting on the kernel (messages and timers)."""
        return self._kernel.pending_events

    @property
    def events_processed(self) -> int:
        """Total events the kernel has processed."""
        return self._kernel.events_processed

    def shutdown(self) -> None:
        """Drain remaining events and refuse further posts.  Idempotent.

        The kernel holds no external resources, so shutdown only needs to
        honour the contract: outstanding work completes, then the transport
        goes inert.
        """
        if self._closed:
            return
        if not self._kernel.is_running and self._kernel.pending_events:
            self._kernel.run_until_idle()
        self._closed = True

    @property
    def is_closed(self) -> bool:
        """Whether :meth:`shutdown` has completed."""
        return self._closed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def kernel(self) -> SimulationKernel:
        """The underlying deterministic kernel (sim runtime only)."""
        return self._kernel
