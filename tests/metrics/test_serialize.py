"""Tests for the JSON result schema."""

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.serialize import (
    RESULT_SCHEMA_VERSION,
    aggregate_metrics,
    config_from_dict,
    config_to_dict,
    mean_stddev,
    result_from_dict,
    result_to_dict,
    window_from_dict,
    window_to_dict,
)
from repro.sql.ast import WindowSpec

TINY = dict(num_nodes=16, num_queries=10, num_tuples=8, warmup_tuples=0, seed=3)


class TestConfigRoundTrip:
    def test_plain_config(self):
        config = ExperimentConfig(**TINY)
        data = config_to_dict(config)
        json.dumps(data)
        assert config_from_dict(data) == config

    def test_config_with_window_and_checkpoints(self):
        config = ExperimentConfig(
            window=WindowSpec(size=12, mode="tuples"),
            checkpoints=[4, 8],
            publish_mode="batch",
            batch_size=4,
            hot_key_fraction=0.5,
            **TINY,
        )
        data = config_to_dict(config)
        json.dumps(data)
        restored = config_from_dict(data)
        assert restored.window == config.window
        assert restored.checkpoints == [4, 8]
        assert restored.publish_mode == "batch"
        assert restored.hot_key_fraction == 0.5

    def test_window_helpers(self):
        assert window_to_dict(None) is None
        assert window_from_dict(None) is None
        window = WindowSpec(size=5, mode="tuples")
        assert window_from_dict(window_to_dict(window)) == window


class TestResultRoundTrip:
    def test_serialized_result_is_json_safe_and_restores(self):
        config = ExperimentConfig(
            checkpoints=[4, 8], capture_per_tuple=True, **TINY
        )
        result = run_experiment(config)
        data = result_to_dict(result)
        assert data["schema_version"] == RESULT_SCHEMA_VERSION
        text = json.dumps(data)
        restored = result_from_dict(json.loads(text))
        assert restored.summary == result.summary
        assert restored.checkpoints == result.checkpoints
        assert restored.ranked_qpl == result.ranked_qpl
        assert restored.cumulative_qpl == result.cumulative_qpl
        assert restored.config == result.config
        # Derived quantities survive the round trip.
        assert restored.messages_per_node == result.messages_per_node
        assert restored.qpl_per_node == result.qpl_per_node

    def test_derived_block_matches_properties(self):
        result = run_experiment(ExperimentConfig(**TINY))
        derived = result_to_dict(result)["derived"]
        assert derived["messages_per_node"] == result.messages_per_node
        assert derived["max_qpl"] == float(result.max_qpl)


class TestAggregation:
    def test_mean_stddev(self):
        stats = mean_stddev([2.0, 4.0, 6.0])
        assert stats["mean"] == pytest.approx(4.0)
        assert stats["stddev"] == pytest.approx(1.632993, rel=1e-5)
        assert stats["min"] == 2.0 and stats["max"] == 6.0
        assert stats["count"] == 3

    def test_mean_stddev_empty(self):
        assert mean_stddev([])["count"] == 0

    def test_aggregate_metrics_uses_shared_keys_only(self):
        aggregated = aggregate_metrics(
            [{"a": 1.0, "b": 2.0}, {"a": 3.0, "c": 4.0}]
        )
        assert set(aggregated) == {"a"}
        assert aggregated["a"]["mean"] == pytest.approx(2.0)

    def test_aggregate_metrics_empty(self):
        assert aggregate_metrics([]) == {}
