"""Fixture schema declaration with one stale entry."""

SUMMARY_SCHEMA = (
    "joins",
    # VIOLATION: declared but metrics_summary never emits it.
    "stale_key",
    # Percentile keys of the declared answer_latency histogram: these are
    # legitimately absent from the metrics_summary dict literal (the real
    # engine folds them in via **histogram_percentiles) and must NOT be
    # reported as stale schema entries.
    "answer_latency_p50",
    "answer_latency_p95",
    "answer_latency_p99",
    # VIOLATION: phantom percentile key — no such histogram is declared.
    "phantom_hist_p95",
)
