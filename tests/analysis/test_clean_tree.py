"""The shipped tree passes its own analyzer — the PR acceptance gate.

This is the tier-1 enforcement of the invariant CI also checks: every rule
in ``repro.analysis`` runs over ``src/repro`` itself and must come back
clean.  A change that reintroduces a bare builtin raise, drops a dispatch
arm, drifts the metrics schema or ships an unannotated core function fails
here before it ever reaches CI.
"""

from __future__ import annotations

from repro.analysis import ALL_RULES, analyze, default_package_root


def test_shipped_tree_is_clean():
    report = analyze(default_package_root())
    rendered = "\n".join(f.render() for f in report.active)
    assert report.ok, f"repro-lint findings on the shipped tree:\n{rendered}"


def test_every_rule_actually_ran():
    report = analyze(default_package_root())
    assert report.rules_run == [rule.name for rule in ALL_RULES]
    assert len(report.rules_run) >= 5
    # Sanity: the analyzer saw the real tree, not an empty directory.
    assert report.files_analyzed >= 50
