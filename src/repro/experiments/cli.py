"""Command-line entry point for the scenario grid.

::

    python -m repro.experiments list
    python -m repro.experiments run --scenario skew-sweep --workers 4
    python -m repro.experiments report --scenario skew-sweep
    python -m repro.experiments report --diff results-main/skew-sweep results-pr/skew-sweep

``run`` executes a scenario's variant × strategy × seed grid (in parallel
when ``--workers > 1``), streaming one JSON checkpoint per cell under the
output directory so that re-running resumes instead of recomputing.
``report`` renders the aggregated mean/stddev statistics of a finished grid;
``report --diff A B`` compares two grid result directories cell-by-cell
(regression diffs between branches, scales or machines — result files of
older schema versions load fine, so diffs can span schema bumps).

Lifecycle scenarios (``query-churn``, ``owner-failover``) are best viewed
with their own counters, e.g.::

    python -m repro.experiments report --scenario query-churn \
        --metrics queries_removed,records_vacuumed,answers
    python -m repro.experiments report --scenario owner-failover \
        --metrics failover_reregistrations,answers_rerouted,answers
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.errors import ExperimentError, ReproError
from repro.experiments.parallel import diff_grids, load_aggregate, run_grid
from repro.experiments.scenarios import SCENARIOS, get_scenario
from repro.metrics.report import format_table

DEFAULT_OUTPUT_DIR = "results"
#: Metrics shown by ``report`` unless ``--metrics`` says otherwise; names are
#: looked up first among the derived per-figure quantities, then in the raw
#: metrics summary.
DEFAULT_REPORT_METRICS = (
    "qpl_per_node",
    "storage_per_node",
    "messages_per_node_per_tuple",
    "answers",
)


def _parse_override(text: str) -> object:
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_set_options(pairs: Sequence[str]) -> Dict[str, object]:
    overrides: Dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ExperimentError(
                f"--set expects key=value, got {pair!r}"
            )
        key, _, value = pair.partition("=")
        overrides[key.strip()] = _parse_override(value.strip())
    return overrides


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run and report scenario-driven experiment grids.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list registered scenarios")
    list_cmd.add_argument(
        "--verbose", action="store_true", help="include variants and seeds"
    )

    run_cmd = sub.add_parser("run", help="run one scenario's grid")
    run_cmd.add_argument(
        "scenario_pos", nargs="?", metavar="SCENARIO", default=None,
        help="registered scenario name (positional form of --scenario)",
    )
    run_cmd.add_argument("--scenario", default=None, help="registered scenario name")
    run_cmd.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (<=1 runs serially; default 1)",
    )
    run_cmd.add_argument(
        "--seeds", default=None,
        help="comma-separated seeds overriding the scenario's defaults",
    )
    run_cmd.add_argument(
        "--strategies", default=None,
        help="comma-separated strategies overriding the scenario's defaults",
    )
    run_cmd.add_argument(
        "--output", default=DEFAULT_OUTPUT_DIR,
        help=f"output directory (default: {DEFAULT_OUTPUT_DIR}/)",
    )
    run_cmd.add_argument(
        "--no-resume", action="store_true",
        help="recompute every cell even when a checkpoint exists",
    )
    run_cmd.add_argument(
        "--full-scale", action="store_true",
        help="use the paper-scale configuration (same as REPRO_FULL_SCALE=1)",
    )
    run_cmd.add_argument(
        "--set", dest="set_options", action="append", default=[],
        metavar="KEY=VALUE",
        help="override a base-config field (repeatable), e.g. --set num_nodes=40",
    )

    report_cmd = sub.add_parser(
        "report",
        help="print a finished grid's aggregates, or diff two result dirs",
    )
    report_cmd.add_argument("--scenario", default=None)
    report_cmd.add_argument("--output", default=DEFAULT_OUTPUT_DIR)
    report_cmd.add_argument(
        "--diff", nargs=2, metavar=("DIR_A", "DIR_B"), default=None,
        help="compare two grid result directories cell-by-cell "
        "(e.g. results-main/skew-sweep results-pr/skew-sweep)",
    )
    report_cmd.add_argument(
        "--metrics", default=None,
        help="comma-separated metric names (default: "
        + ",".join(DEFAULT_REPORT_METRICS)
        + ")",
    )
    return parser


def _cmd_list(args: argparse.Namespace, out) -> int:
    rows = []
    for name in sorted(SCENARIOS):
        scenario = SCENARIOS[name]
        rows.append(
            [
                name,
                scenario.axis,
                len(scenario.variants(full_scale=False)),
                "/".join(scenario.strategies),
                ",".join(str(seed) for seed in scenario.seeds),
            ]
        )
    print(
        format_table(
            "Registered scenarios",
            ["scenario", "axis", "variants", "strategies", "seeds"],
            rows,
        ),
        file=out,
    )
    if args.verbose:
        for name in sorted(SCENARIOS):
            scenario = SCENARIOS[name]
            print(f"\n{name}: {scenario.description}", file=out)
            for variant in scenario.variants(full_scale=False):
                print(f"  - {variant.label}", file=out)
    return 0


def _cmd_run(args: argparse.Namespace, out) -> int:
    scenario_name = args.scenario or args.scenario_pos
    if scenario_name is None:
        raise ExperimentError(
            "run needs a scenario name (positional or --scenario); "
            "see `python -m repro.experiments list`"
        )
    seeds = (
        [int(seed) for seed in args.seeds.split(",")] if args.seeds else None
    )
    strategies = args.strategies.split(",") if args.strategies else None
    overrides = _parse_set_options(args.set_options)
    scenario = get_scenario(scenario_name)

    def _progress(outcome) -> None:
        state = "cached" if outcome.cached else "done"
        print(f"[{state}] {outcome.cell.cell_id}", file=out)

    report = run_grid(
        scenario,
        output_dir=args.output,
        workers=args.workers,
        seeds=seeds,
        strategies=strategies,
        overrides=overrides or None,
        resume=not args.no_resume,
        full_scale=True if args.full_scale else None,
        progress=_progress,
    )
    print(
        f"\n{report.scenario}: {len(report.outcomes)} cells "
        f"({report.computed} computed, {report.cached} cached) "
        f"in {report.elapsed_seconds:.2f}s with workers={args.workers}",
        file=out,
    )
    print(f"results: {report.output_dir}", file=out)
    return 0


def _format_value(value) -> str:
    return "-" if value is None else f"{value:.2f}"


def _cmd_report_diff(args: argparse.Namespace, out) -> int:
    metrics = (
        args.metrics.split(",") if args.metrics else list(DEFAULT_REPORT_METRICS)
    )
    dir_a, dir_b = args.diff
    diff = diff_grids(dir_a, dir_b, metrics)
    columns = ["cell"]
    for metric in metrics:
        columns.extend([f"{metric} A", f"{metric} B", "Δ"])
    rows: List[List[object]] = []
    for entry in diff["cells"]:
        row: List[object] = [entry["cell_id"]]
        for metric in metrics:
            pair = entry["metrics"][metric]
            row.extend(
                [
                    _format_value(pair["a"]),
                    _format_value(pair["b"]),
                    _format_value(pair["delta"]),
                ]
            )
        rows.append(row)
    title = f"diff: {dir_a} vs {dir_b} ({len(rows)} shared cells)"
    print(format_table(title, columns, rows), file=out)
    for label, missing in (("A", diff["only_in_b"]), ("B", diff["only_in_a"])):
        if missing:
            print(f"\ncells missing from {label}:", file=out)
            for cell_id in missing:
                print(f"  - {cell_id}", file=out)
    return 0


def _cmd_report(args: argparse.Namespace, out) -> int:
    if args.diff is not None:
        return _cmd_report_diff(args, out)
    if args.scenario is None:
        raise ExperimentError(
            "report needs either --scenario (aggregate view) or "
            "--diff DIR_A DIR_B (cell-by-cell comparison)"
        )
    aggregate = load_aggregate(args.output, args.scenario)
    metrics = (
        args.metrics.split(",") if args.metrics else list(DEFAULT_REPORT_METRICS)
    )
    columns = ["variant", "strategy", "seeds"] + [
        f"{metric} (mean±sd)" for metric in metrics
    ]
    rows: List[List[object]] = []
    for group in aggregate.get("groups", []):
        row: List[object] = [
            group["variant"],
            group["strategy"],
            len(group.get("seeds", [])),
        ]
        for metric in metrics:
            stats = group.get("derived", {}).get(metric) or group.get(
                "summary", {}
            ).get(metric)
            if stats is None:
                row.append("-")
            else:
                row.append(f"{stats['mean']:.2f}±{stats['stddev']:.2f}")
        rows.append(row)
    title = (
        f"{aggregate['scenario']} (axis: {aggregate.get('axis', '?')}, "
        f"{aggregate.get('cells', 0)} cells)"
    )
    print(format_table(title, columns, rows), file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args, out)
        if args.command == "run":
            return _cmd_run(args, out)
        if args.command == "report":
            return _cmd_report(args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=out)
        return 2
    raise ExperimentError(f"unhandled command {args.command!r}")
