"""RJoin — continuous multi-way equi-joins over Distributed Hash Tables.

A faithful, fully simulated reproduction of *Continuous Multi-Way Joins over
Distributed Hash Tables* (Idreos, Liarou, Koubarakis — EDBT 2008): the RJoin
algorithm, the Chord substrate it runs on, the sliding-window / DISTINCT /
RIC extensions, the baselines it is compared against, and the complete
experiment harness of the paper's Section 8.

Typical usage::

    from repro import RJoinConfig, RJoinEngine, WindowSpec

    engine = RJoinEngine(RJoinConfig(num_nodes=32, seed=1))
    engine.register_relation("R", ["a", "b"])
    engine.register_relation("S", ["c", "d"])

    handle = engine.submit("SELECT R.a, S.d FROM R, S WHERE R.b = S.c")
    engine.publish("R", (1, 10))
    engine.publish("S", (10, 99))
    print(handle.values())           # [(1, 99)]

See ``examples/`` for richer scenarios and ``benchmarks/`` for the harness
that regenerates every figure of the paper.
"""

from repro.core.answers import Answer, QueryHandle
from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.core.reference import ReferenceEngine
from repro.core.strategy import available_strategies, make_strategy
from repro.data.schema import AttributeRef, Catalog, RelationSchema
from repro.data.tuples import Tuple
from repro.errors import ReproError
from repro.sql.ast import (
    Constant,
    JoinPredicate,
    Query,
    SelectionPredicate,
    WindowSpec,
)
from repro.sql.parser import parse_query
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "Answer",
    "AttributeRef",
    "Catalog",
    "Constant",
    "JoinPredicate",
    "Query",
    "QueryHandle",
    "ReferenceEngine",
    "RelationSchema",
    "ReproError",
    "RJoinConfig",
    "RJoinEngine",
    "SelectionPredicate",
    "Tuple",
    "WindowSpec",
    "WorkloadGenerator",
    "WorkloadSpec",
    "available_strategies",
    "make_strategy",
    "parse_query",
    "__version__",
]
