#!/usr/bin/env python3
"""Distributed network monitoring with sliding-window joins.

The paper motivates continuous multi-way joins with wide-area monitoring
applications: many vantage points publish event streams into a DHT and
operators register long-standing correlation queries.  This example models a
small intrusion-detection scenario:

* ``alerts(src, kind)``        — IDS alerts raised by edge sensors,
* ``flows(src, dst, bytes)``   — suspicious flow records,
* ``logins(dst, user)``        — authentication events on internal hosts.

The continuous query correlates, within a sliding window of 40 published
events, an alert with a flow from the same source and a login on the flow's
destination host — a classic multi-stage attack signature.  The sliding
window keeps the distributed state bounded (Section 5 of the paper); the
example prints how much state is garbage collected.

Run with::

    python examples/network_monitoring.py
"""

from __future__ import annotations

import random

from repro import RJoinConfig, RJoinEngine, WindowSpec


WINDOW = WindowSpec(size=40, mode="tuples")


def build_engine() -> RJoinEngine:
    engine = RJoinEngine(
        RJoinConfig(num_nodes=48, seed=11, tuple_gc_window=WINDOW, gc_every_tuples=20)
    )
    engine.register_relation("alerts", ["src", "kind"])
    engine.register_relation("flows", ["src", "dst", "bytes"])
    engine.register_relation("logins", ["dst", "user"])
    return engine


def main() -> None:
    engine = build_engine()

    attack_query = engine.submit(
        "SELECT alerts.src, flows.dst, logins.user "
        "FROM alerts, flows, logins "
        "WHERE alerts.src = flows.src AND flows.dst = logins.dst "
        "WINDOW 40 TUPLES"
    )
    exfil_query = engine.submit(
        "SELECT flows.src, flows.bytes FROM alerts, flows "
        "WHERE alerts.src = flows.src AND alerts.kind = 'portscan' "
        "WINDOW 40 TUPLES"
    )
    print("registered monitoring queries:")
    print(f"  attack chain : {attack_query.query}")
    print(f"  exfiltration : {exfil_query.query}\n")

    rng = random.Random(99)
    hosts = [f"10.0.0.{i}" for i in range(1, 9)]
    users = ["root", "alice", "bob", "backup"]
    kinds = ["portscan", "bruteforce", "malware"]

    # Background noise plus two injected attack chains.
    injected = [
        ("alerts", ("10.0.0.3", "portscan")),
        ("flows", ("10.0.0.3", "10.0.0.7", 8_000_000)),
        ("logins", ("10.0.0.7", "root")),
        ("alerts", ("10.0.0.5", "bruteforce")),
        ("flows", ("10.0.0.5", "10.0.0.2", 120_000)),
        ("logins", ("10.0.0.2", "backup")),
    ]
    events = []
    for relation, values in injected:
        # Interleave each attack step with background noise.
        events.append((relation, values))
        for _ in range(6):
            choice = rng.choice(("alerts", "flows", "logins"))
            if choice == "alerts":
                events.append(("alerts", (rng.choice(hosts), rng.choice(kinds))))
            elif choice == "flows":
                src, dst = rng.choice(hosts), rng.choice(hosts)
                events.append(("flows", (src, dst, rng.randint(1_000, 50_000))))
            else:
                events.append(("logins", (rng.choice(hosts), rng.choice(users))))

    for relation, values in events:
        engine.publish(relation, values)

    print(f"published {engine.published_tuples} events\n")
    print("attack chains detected (alert -> flow -> login within the window):")
    for values in attack_query.values():
        print(f"  source {values[0]} reached {values[1]} as user {values[2]!r}")

    print("\nflows following a portscan alert:")
    for src, size in exfil_query.values():
        print(f"  {src} transferred {size} bytes")

    summary = engine.metrics_summary()
    print("\nstate kept bounded by the sliding window:")
    print(f"  cumulative storage load : {summary['total_storage']:g}")
    print(f"  current storage load    : {summary['current_storage']:g}")
    print(f"  query processing load   : {summary['total_qpl']:g}")
    print(f"  messages per node       : {summary['messages_per_node']:.1f}")


if __name__ == "__main__":
    main()
