"""Shared helpers for the static-analysis test suite."""

from __future__ import annotations

from pathlib import Path

#: Root of the seeded-violation fixture trees (see fixtures/README.md).
FIXTURES = Path(__file__).parent / "fixtures"
