"""Figure 6 — effect of query complexity (4-, 6- and 8-way joins).

Regenerates the per-tuple traffic cost and the ranked-node QPL / storage
distributions for increasing join arity.

Expected shape (paper): more complex queries (longer join paths) need more
network traffic, more query-processing load and more storage, while the extra
load keeps being shared among the nodes in a similar pattern.
"""

import pytest

from repro.experiments.figures import figure6


@pytest.mark.benchmark(group="figure6")
def test_figure6_join_arity(benchmark):
    result = benchmark.pedantic(figure6, rounds=1, iterations=1)
    print()
    print(result.to_text())

    arities = [f"{a}way" for a in result.x_values]
    qpl_totals = [sum(result.distributions[f"qpl_ranked_{a}"]) for a in arities]
    storage_totals = [sum(result.distributions[f"storage_ranked_{a}"]) for a in arities]

    # Longer join paths cost more processing and storage.
    assert qpl_totals[-1] >= qpl_totals[0]
    assert storage_totals[-1] >= storage_totals[0]
    assert result.series["qpl_per_node"][-1] >= result.series["qpl_per_node"][0]
    # Load keeps being spread over many nodes even for 8-way joins.
    eight_way = result.distributions[f"qpl_ranked_{arities[-1]}"]
    assert sum(1 for load in eight_way if load > 0) > len(eight_way) * 0.3
