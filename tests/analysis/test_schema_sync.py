"""Runtime twin of the ``metrics-registry`` lint rule.

The static rule pins the *source* of ``RJoinEngine.metrics_summary``
against the declared :data:`~repro.metrics.serialize.SUMMARY_SCHEMA`;
this test pins the *runtime* dictionary an actual engine produces, closing
the loop on schema v5 (see ``metrics/serialize.py``).
"""

from __future__ import annotations

import subprocess
import sys

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.data.schema import Catalog
from repro.metrics.serialize import RESULT_SCHEMA_VERSION, SUMMARY_SCHEMA


def test_schema_declares_no_duplicates():
    assert len(SUMMARY_SCHEMA) == len(set(SUMMARY_SCHEMA))


def test_runtime_summary_matches_declared_schema():
    catalog = Catalog()
    catalog.add_relation("R", ["a", "b"])
    catalog.add_relation("S", ["c", "d"])
    engine = RJoinEngine(RJoinConfig(num_nodes=8, seed=11), catalog=catalog)
    engine.publish("R", {"a": "1", "b": "2"})
    summary = engine.metrics_summary()
    assert set(summary) == set(SUMMARY_SCHEMA)


def test_serialize_imports_first_in_a_fresh_interpreter():
    # Regression: serialize -> experiments -> parallel used to be a cycle
    # that crashed whenever metrics.serialize was the *first* repro import.
    proc = subprocess.run(
        [sys.executable, "-c", "import repro.metrics.serialize"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr


def test_schema_version_is_bumped_for_the_declared_schema():
    # The declared key set landed with schema v5; loading older files stays
    # supported, but writers must stamp the current version.
    assert RESULT_SCHEMA_VERSION >= 5
