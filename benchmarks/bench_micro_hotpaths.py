"""Hot-path microbenchmarks: store / match / GC / publish throughput.

The figure benchmarks (``bench_fig*.py``) measure whole experiments; this
module times the node-local primitives they spend their time in, so that
perf-oriented PRs have a recorded trajectory:

* ``store_add`` — tuple insertion throughput of :class:`TupleStore`,
* ``prefix_match`` — attribute-level lookups (``tuples_for_prefix``),
* ``store_gc`` — window garbage collection (``remove_published_before``),
* ``altt_expire`` — ALTT Δ-expiry sweeps,
* ``publish`` — end-to-end engine publication (batched when available),
* ``kernel_pending`` — ``SimulationKernel.pending_events`` polling.

Results are written to ``BENCH_hotpaths.json`` next to this file (override
with ``--output``).  The script intentionally degrades gracefully on older
revisions (it falls back to ``publish_many`` when ``publish_batch`` does not
exist), so the same file can be run before and after a change to produce
comparable numbers.

Usage::

    PYTHONPATH=src python benchmarks/bench_micro_hotpaths.py [--smoke] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Callable, Dict, List

from repro.core.altt import AttributeLevelTupleTable
from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.data.schema import Catalog, RelationSchema
from repro.data.store import TupleStore
from repro.data.tuples import Tuple
from repro.net.simulator import SimulationKernel

_SEP = "\x1f"

DEFAULT_PARAMS: Dict[str, int] = {
    "add_tuples": 50_000,
    "prefix_relations": 40,
    "prefix_values": 250,
    "prefix_lookups": 40,
    "gc_tuples": 40_000,
    "gc_ticks": 400,
    "altt_tuples": 40_000,
    "altt_ticks": 400,
    "publish_nodes": 32,
    "publish_tuples": 400,
    "kernel_events": 20_000,
    "kernel_polls": 2_000,
}

SMOKE_PARAMS: Dict[str, int] = {
    "add_tuples": 2_000,
    "prefix_relations": 8,
    "prefix_values": 25,
    "prefix_lookups": 8,
    "gc_tuples": 2_000,
    "gc_ticks": 20,
    "altt_tuples": 2_000,
    "altt_ticks": 20,
    "publish_nodes": 16,
    "publish_tuples": 40,
    "kernel_events": 1_000,
    "kernel_polls": 100,
}


# ops/sec measured with DEFAULT_PARAMS on the seed implementation (before
# PR 1's indexed store / heap expiry / batched publish), kept so future runs
# can report the cumulative speedup without digging through git history.
PRE_PR1_BASELINE_OPS_PER_SEC: Dict[str, float] = {
    "store_add": 366887.0,
    "prefix_match": 977.0,
    "store_gc": 364.0,
    "altt_expire": 642.0,
    "publish": 4627.0,
    "kernel_pending": 1641.0,
}


def _schema() -> RelationSchema:
    return RelationSchema("R", ["a", "b"])


def _make_tuple(schema: RelationSchema, seq: int, pub_time: float) -> Tuple:
    return Tuple.from_schema(
        schema, (seq % 97, seq % 31), pub_time=pub_time, sequence=seq
    )


def _timed(label: str, operations: int, fn: Callable[[], object]) -> Dict[str, float]:
    start = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - start
    return {
        "benchmark": label,
        "operations": operations,
        "seconds": round(elapsed, 6),
        "ops_per_sec": round(operations / elapsed, 2) if elapsed > 0 else float("inf"),
    }


# ---------------------------------------------------------------------------
# individual benchmarks
# ---------------------------------------------------------------------------
def bench_store_add(params: Dict[str, int]) -> Dict[str, float]:
    schema = _schema()
    n = params["add_tuples"]
    tuples = [_make_tuple(schema, seq, float(seq)) for seq in range(n)]
    store = TupleStore()

    def run() -> None:
        for seq, tup in enumerate(tuples):
            key = f"R{_SEP}a{_SEP}{seq % 512!r}"
            store.add(key, tup, now=float(seq))

    return _timed("store_add", n, run)


def bench_prefix_match(params: Dict[str, int]) -> Dict[str, float]:
    schema = _schema()
    relations = params["prefix_relations"]
    values = params["prefix_values"]
    lookups = params["prefix_lookups"]
    store = TupleStore()
    seq = 0
    for rel in range(relations):
        for value in range(values):
            seq += 1
            key = f"rel{rel}{_SEP}a{_SEP}{value!r}"
            store.add(key, _make_tuple(schema, seq, float(seq)), now=float(seq))
    prefixes = [f"rel{rel}{_SEP}a{_SEP}" for rel in range(relations)]

    def run() -> None:
        for _ in range(lookups):
            for prefix in prefixes:
                store.tuples_for_prefix(prefix)

    return _timed("prefix_match", lookups * relations, run)


def bench_store_gc(params: Dict[str, int]) -> Dict[str, float]:
    schema = _schema()
    n = params["gc_tuples"]
    ticks = params["gc_ticks"]
    store = TupleStore()
    for seq in range(n):
        key = f"R{_SEP}a{_SEP}{seq % 1024!r}"
        store.add(key, _make_tuple(schema, seq, float(seq)), now=float(seq))
    step = n / ticks

    def run() -> None:
        removed = 0
        for tick in range(1, ticks + 1):
            removed += store.remove_published_before(tick * step)
        assert removed == n, f"expected {n} removals, got {removed}"

    return _timed("store_gc", ticks, run)


def bench_altt_expire(params: Dict[str, int]) -> Dict[str, float]:
    schema = _schema()
    n = params["altt_tuples"]
    ticks = params["altt_ticks"]
    table = AttributeLevelTupleTable(delta=1.0)
    for seq in range(n):
        key = f"R{_SEP}a{seq % 1024}"
        table.add(key, _make_tuple(schema, seq, float(seq)), now=float(seq))
    step = n / ticks

    def run() -> None:
        removed = 0
        for tick in range(1, ticks + 1):
            removed += table.expire(now=tick * step + 1.0)
        assert removed == n, f"expected {n} expiries, got {removed}"

    return _timed("altt_expire", ticks, run)


def bench_publish(params: Dict[str, int]) -> Dict[str, float]:
    catalog = Catalog()
    catalog.add_relation("R", ["a", "b"])
    catalog.add_relation("S", ["c", "d"])
    engine = RJoinEngine(
        RJoinConfig(num_nodes=params["publish_nodes"], seed=11), catalog=catalog
    )
    n = params["publish_tuples"]
    rows = [
        ("R" if i % 2 == 0 else "S", (i % 13, i % 7)) for i in range(n)
    ]

    if hasattr(engine, "publish_batch"):
        def run() -> None:
            engine.publish_batch(rows)
    else:
        def run() -> None:
            engine.publish_many(rows, process_each=False)

    result = _timed("publish", n, run)
    result["batched"] = hasattr(engine, "publish_batch")
    return result


def bench_kernel_pending(params: Dict[str, int]) -> Dict[str, float]:
    kernel = SimulationKernel()
    events = params["kernel_events"]
    polls = params["kernel_polls"]
    for i in range(events):
        kernel.schedule_at(float(i), lambda: None)

    def run() -> None:
        for _ in range(polls):
            kernel.pending_events

    return _timed("kernel_pending", polls, run)


BENCHMARKS: List[Callable[[Dict[str, int]], Dict[str, float]]] = [
    bench_store_add,
    bench_prefix_match,
    bench_store_gc,
    bench_altt_expire,
    bench_publish,
    bench_kernel_pending,
]


def run_all(smoke: bool = False) -> Dict[str, object]:
    """Run every microbenchmark; returns the report dictionary."""
    params = SMOKE_PARAMS if smoke else DEFAULT_PARAMS
    results = [bench(dict(params)) for bench in BENCHMARKS]
    report = {
        "suite": "bench_micro_hotpaths",
        "smoke": smoke,
        "parameters": params,
        "results": {entry["benchmark"]: entry for entry in results},
    }
    if not smoke:
        # Comparable sizes: annotate each benchmark with its speedup over
        # the recorded seed-implementation baseline.
        report["baseline_ops_per_sec"] = PRE_PR1_BASELINE_OPS_PER_SEC
        for name, entry in report["results"].items():
            baseline = PRE_PR1_BASELINE_OPS_PER_SEC.get(name)
            if baseline:
                entry["speedup_vs_pre_pr1"] = round(
                    entry["ops_per_sec"] / baseline, 2
                )
    return report


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes (correctness sweep only)"
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).parent / "BENCH_hotpaths.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_all(smoke=args.smoke)
    for name, entry in report["results"].items():
        speedup = entry.get("speedup_vs_pre_pr1")
        suffix = f", {speedup:.1f}x vs pre-PR1" if speedup else ""
        print(
            f"{name:>16}: {entry['operations']:>8} ops in {entry['seconds']:.4f}s "
            f"({entry['ops_per_sec']:.0f} ops/s{suffix})"
        )
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
