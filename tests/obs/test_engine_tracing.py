"""End-to-end tracing through the engine: the ISSUE acceptance criteria.

A query-flood run with ``observability="on"`` must produce a trace that
*replays*: every span's parent resolves inside its trace, the hop counts
reconstruct exactly the message volume ``TrafficStats`` counted at the
transport, and the folded percentiles in ``metrics_summary`` are identical
across sim reruns.  Observability must never change behaviour: the answer
bag matches the off-mode run bit for bit.
"""

from __future__ import annotations

import pytest

from repro.core.config import RJoinConfig
from repro.core.engine import RJoinEngine
from repro.errors import ConfigurationError, EngineError
from repro.obs.trace import load_spans
from repro.workload.generator import WorkloadGenerator, WorkloadSpec

PERCENTILE_SUFFIXES = ("_p50", "_p95", "_p99")


def run_flood(observability="on", num_queries=8, num_tuples=30, **overrides):
    """A query-flood run; returns (engine, answer bag, summary)."""
    spec = WorkloadSpec(
        num_relations=4,
        attributes_per_relation=3,
        value_domain=4,
        join_arity=3,
        seed=901,
    )
    generator = WorkloadGenerator(spec)
    params = dict(num_nodes=12, seed=90, observability=observability)
    params.update(overrides)
    engine = RJoinEngine(RJoinConfig(**params))
    engine.register_catalog(generator.catalog)
    handles = [engine.submit(q) for q in generator.generate_queries(num_queries)]
    for generated in generator.generate_tuples(num_tuples):
        engine.publish(generated.relation, generated.values)
    bag = sorted(repr(value) for handle in handles for value in handle.values())
    return engine, bag, engine.metrics_summary()


def percentiles(summary):
    """The 15 folded histogram percentile entries of one metrics summary."""
    keys = [key for key in summary if key.endswith(PERCENTILE_SUFFIXES)]
    return {key: summary[key] for key in keys}


class TestTraceReplay:
    def test_hop_counts_reconstruct_traffic_stats(self):
        engine, _, _ = run_flood()
        spans = engine.obs.spans
        assert spans, "observability=on recorded no spans"
        # Every routed message opened exactly one span carrying its hop
        # count, so the spans replay the transport-level traffic total.
        assert sum(span.hops for span in spans) == engine.traffic.total_messages
        engine.close()

    def test_every_parent_resolves_no_orphan_spans(self):
        engine, _, _ = run_flood()
        by_trace = {}
        for span in engine.obs.spans:
            by_trace.setdefault(span.trace_id, set()).add(span.span_id)
        for span in engine.obs.spans:
            if span.parent_id is not None:
                assert span.parent_id in by_trace[span.trace_id], (
                    f"orphan span {span.span_id} in trace {span.trace_id}"
                )
        engine.close()

    def test_rewriting_chain_depth_increases_hop_by_hop(self):
        engine, _, _ = run_flood()
        spans = {span.span_id: span for span in engine.obs.spans}
        for span in spans.values():
            if span.parent_id is not None and span.parent_id in spans:
                parent = spans[span.parent_id]
                assert span.hop == parent.hop + 1
                assert span.trace_id == parent.trace_id
                assert span.sent_at >= parent.start
        engine.close()

    def test_operations_root_their_traces(self):
        engine, _, _ = run_flood()
        roots = [s for s in engine.obs.spans if s.parent_id is None]
        root_names = {span.name for span in roots}
        assert "publish" in root_names
        assert "submit" in root_names
        for root in roots:
            assert root.hop == 0
            assert root.hops == 0
        engine.close()

    def test_trace_survives_jsonl_roundtrip(self, tmp_path):
        engine, _, _ = run_flood()
        path = tmp_path / "flood.jsonl"
        count = engine.write_trace(str(path))
        loaded = load_spans(str(path))
        assert count == len(loaded) == len(engine.obs.spans)
        assert sum(s.hops for s in loaded) == engine.traffic.total_messages
        engine.close()


class TestDeterminismAndNeutrality:
    def test_percentiles_identical_across_sim_reruns(self):
        _, bag_a, summary_a = run_flood()
        _, bag_b, summary_b = run_flood()
        assert bag_a == bag_b
        pct_a = percentiles(summary_a)
        assert pct_a == percentiles(summary_b)
        assert any(value > 0.0 for value in pct_a.values())

    def test_observability_never_changes_the_answer_bag(self):
        _, bag_on, _ = run_flood("on")
        _, bag_off, _ = run_flood("off")
        assert bag_on == bag_off

    def test_off_mode_keeps_percentile_keys_as_zero(self):
        engine, _, summary = run_flood("off")
        assert engine.obs is None
        pct = percentiles(summary)
        assert len(pct) == 15
        assert set(pct.values()) == {0.0}
        engine.close()


class TestConfigSurface:
    def test_trace_path_requires_observability_on(self, tmp_path):
        with pytest.raises(ConfigurationError):
            RJoinConfig(num_nodes=8, trace_path=str(tmp_path / "t.jsonl"))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            RJoinConfig(num_nodes=8, observability="loud")

    def test_write_trace_when_off_is_an_engine_error(self):
        engine, _, _ = run_flood("off", num_queries=1, num_tuples=2)
        with pytest.raises(EngineError):
            engine.write_trace("/tmp/never-written.jsonl")
        engine.close()

    def test_trace_path_streams_spans_to_disk(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        engine, _, _ = run_flood(
            "on", num_queries=2, num_tuples=6, trace_path=str(path)
        )
        engine.close()
        spans = load_spans(str(path))
        assert spans
        assert sum(s.hops for s in spans) == engine.traffic.total_messages
