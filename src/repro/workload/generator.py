"""Generation of the paper's experimental workload.

The generator produces two things:

* **continuous queries** — random k-way chain equi-joins over a uniform
  catalog (``k`` relations, ``k - 1`` join predicates, adjacent joins share a
  relation), optionally with a sliding window and/or DISTINCT,
* **tuples** — a stream where the relation of every new tuple and each of its
  attribute values are drawn from Zipf distributions (Section 8).

Both are deterministic for a fixed seed, which keeps experiments and the
property-based comparison against the reference engine reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple as TupleT

from repro.data.schema import AttributeRef, Catalog
from repro.errors import ConfigurationError
from repro.sql.ast import JoinPredicate, Query, WindowSpec
from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True)
class GeneratedTuple:
    """A relation name plus attribute values, ready to be published."""

    relation: str
    values: TupleT[int, ...]


@dataclass
class WorkloadSpec:
    """Parameters of the synthetic workload (defaults follow Section 8)."""

    num_relations: int = 10
    attributes_per_relation: int = 10
    value_domain: int = 100
    zipf_theta: float = 0.9
    join_arity: int = 4               # number of relations per query (k-way join)
    projection_size: int = 2          # attributes in the select list
    window: Optional[WindowSpec] = None
    distinct: bool = False
    # Arrival pattern ------------------------------------------------------
    #: Tuples per arrival burst; ``tuple_batches`` groups the stream into
    #: bursts of this size (1 = steady per-tuple arrivals).
    burst_size: int = 1
    # Adversarial value skew ------------------------------------------------
    #: Probability that a generated tuple is a "hot-key" tuple: every one of
    #: its values is drawn uniformly from the ``hot_value_count`` most popular
    #: values instead of the Zipf value distribution.  0.0 (the default)
    #: leaves the classic Section 8 stream byte-for-byte unchanged.
    hot_key_fraction: float = 0.0
    #: Size of the hot value set used by hot-key tuples.
    hot_value_count: int = 1
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_relations <= 0 or self.attributes_per_relation <= 0:
            raise ConfigurationError("catalog dimensions must be positive")
        if self.value_domain <= 0:
            raise ConfigurationError("the value domain must be positive")
        if self.join_arity < 1:
            raise ConfigurationError("queries must involve at least one relation")
        if self.join_arity > self.num_relations:
            raise ConfigurationError(
                "join arity cannot exceed the number of relations "
                "(self-joins are not supported)"
            )
        if self.projection_size < 1:
            raise ConfigurationError("the select list needs at least one attribute")
        if self.burst_size < 1:
            raise ConfigurationError("burst_size must be at least one tuple")
        if not 0.0 <= self.hot_key_fraction <= 1.0:
            raise ConfigurationError("hot_key_fraction must lie in [0, 1]")
        if not 1 <= self.hot_value_count <= self.value_domain:
            raise ConfigurationError(
                "hot_value_count must lie in [1, value_domain]"
            )


class WorkloadGenerator:
    """Produces catalogs, query batches and tuple streams from a :class:`WorkloadSpec`."""

    def __init__(self, spec: Optional[WorkloadSpec] = None):
        self.spec = spec or WorkloadSpec()
        self._rng = random.Random(self.spec.seed)
        self.catalog = Catalog.uniform(
            self.spec.num_relations, self.spec.attributes_per_relation
        )
        self._relation_names = self.catalog.relation_names()
        self._relation_sampler = ZipfSampler(
            self.spec.num_relations,
            self.spec.zipf_theta,
            rng=random.Random(self.spec.seed + 1),
        )
        self._value_sampler = ZipfSampler(
            self.spec.value_domain,
            self.spec.zipf_theta,
            rng=random.Random(self.spec.seed + 2),
        )
        # Hot-key draws use their own generator so that enabling (or sweeping)
        # ``hot_key_fraction`` never perturbs the classic Zipf streams above.
        self._hot_rng = random.Random(self.spec.seed + 3)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def generate_query(self) -> Query:
        """Generate one random k-way chain join query.

        The chain shape matches the paper's experiments
        (``R.A = S.B and S.C = J.F and J.C = K.D``): relations are distinct,
        adjacent join predicates share a relation, and the joined attributes
        are drawn uniformly at random.
        """
        relations = self._rng.sample(self._relation_names, self.spec.join_arity)
        joins: List[JoinPredicate] = []
        for left_rel, right_rel in zip(relations, relations[1:]):
            left_attr = self._random_attribute(left_rel)
            right_attr = self._random_attribute(right_rel)
            joins.append(
                JoinPredicate(
                    AttributeRef(left_rel, left_attr),
                    AttributeRef(right_rel, right_attr),
                )
            )
        select_items = tuple(
            AttributeRef(rel, self._random_attribute(rel))
            for rel in self._rng.choices(relations, k=self.spec.projection_size)
        )
        query = Query(
            select_items=select_items,
            relations=tuple(relations),
            join_predicates=tuple(joins),
            selection_predicates=(),
            distinct=self.spec.distinct,
            window=self.spec.window,
        )
        return query.validate(self.catalog)

    def generate_queries(self, count: int) -> List[Query]:
        """Generate ``count`` independent random queries."""
        return [self.generate_query() for _ in range(count)]

    def _random_attribute(self, relation: str) -> str:
        schema = self.catalog.get(relation)
        return self._rng.choice(schema.attributes)

    # ------------------------------------------------------------------
    # tuples
    # ------------------------------------------------------------------
    def generate_tuple(self) -> GeneratedTuple:
        """Generate one tuple: Zipf relation choice, Zipf value per attribute.

        With probability ``hot_key_fraction`` the tuple is adversarially hot:
        every value comes from the ``hot_value_count`` most popular values,
        concentrating load on the nodes owning those keys.
        """
        relation = self._relation_names[self._relation_sampler.sample()]
        schema = self.catalog.get(relation)
        if (
            self.spec.hot_key_fraction > 0.0
            and self._hot_rng.random() < self.spec.hot_key_fraction
        ):
            values = tuple(
                self._hot_rng.randrange(self.spec.hot_value_count)
                for _ in schema.attributes
            )
        else:
            values = tuple(
                self._value_sampler.sample() for _ in schema.attributes
            )
        return GeneratedTuple(relation=relation, values=values)

    def generate_tuples(self, count: int) -> List[GeneratedTuple]:
        """Generate ``count`` tuples."""
        return [self.generate_tuple() for _ in range(count)]

    def tuple_stream(self, count: Optional[int] = None) -> Iterator[GeneratedTuple]:
        """Yield tuples lazily; infinite stream when ``count`` is None."""
        produced = 0
        while count is None or produced < count:
            yield self.generate_tuple()
            produced += 1

    def tuple_batches(
        self, count: Optional[int] = None, batch_size: Optional[int] = None
    ) -> Iterator[List[GeneratedTuple]]:
        """Yield the tuple stream grouped into arrival bursts.

        ``batch_size`` defaults to the spec's ``burst_size``.  The underlying
        stream is identical to :meth:`tuple_stream` — only the grouping
        differs — so batched and per-tuple publication see the same tuples in
        the same order for a fixed seed.  The final burst may be short when
        ``count`` is not a multiple of the burst size.
        """
        size = self.spec.burst_size if batch_size is None else int(batch_size)
        if size < 1:
            raise ConfigurationError("batch_size must be at least one tuple")
        batch: List[GeneratedTuple] = []
        for generated in self.tuple_stream(count):
            batch.append(generated)
            if len(batch) >= size:
                yield batch
                batch = []
        if batch:
            yield batch

    # ------------------------------------------------------------------
    # derived helpers
    # ------------------------------------------------------------------
    def hottest_relation(self) -> str:
        """The relation with the highest expected arrival rate (Zipf rank 0)."""
        return self._relation_names[0]

    def coldest_relation(self) -> str:
        """The relation with the lowest expected arrival rate."""
        return self._relation_names[-1]
