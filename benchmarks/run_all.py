"""Smoke driver for the whole benchmark suite.

Executes every figure benchmark (``bench_fig*.py`` exercises the same
``figureN()`` entry points through pytest-benchmark) plus the hot-path
microbenchmark at drastically reduced sizes, and fails loudly on any
exception.  The goal is not timing fidelity — it is catching code paths that
only the benchmarks exercise (full experiment sweeps, id movement, window
sweeps) without paying for a full benchmark run.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py            # smoke everything
    PYTHONPATH=src python -m pytest -m bench_smoke         # same, via pytest

The pytest entry point lives in ``tests/test_bench_smoke.py`` and is opt-in:
the ``bench_smoke`` marker is deselected by default (see ``pytest.ini``).
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from repro.experiments import figures

# One entry per paper figure: (figure function, smoke-scale overrides).
# The overrides keep each run to a couple of seconds while still driving the
# full experiment pipeline (warm-up, query indexing, checkpoints, GC,
# id movement) end to end.
SMOKE_FIGURES: List[Tuple[Callable, Dict[str, object]]] = [
    (figures.figure2, {"num_nodes": 12, "num_queries": 6, "checkpoints": [10, 20]}),
    (figures.figure3, {"num_nodes": 12, "num_queries": 6, "tuple_counts": [5, 10]}),
    (figures.figure4, {"num_nodes": 12, "query_counts": [3, 6], "num_tuples": 15}),
    (
        figures.figure5,
        {"num_nodes": 12, "num_queries": 6, "num_tuples": 15, "thetas": (0.5, 0.9)},
    ),
    (
        figures.figure6,
        {"num_nodes": 12, "num_queries": 6, "num_tuples": 15, "arities": (4,)},
    ),
    (
        figures.figure7,
        {"num_nodes": 12, "num_queries": 6, "num_tuples": 15, "window_sizes": [5, 10]},
    ),
    (
        figures.figure8,
        {"num_nodes": 12, "num_queries": 6, "num_tuples": 15, "window_sizes": [5, 10]},
    ),
    (figures.figure9, {"num_nodes": 12, "num_queries": 10, "num_tuples": 15}),
]


def _import_benchmark(name: str):
    """Import a sibling benchmark module (works from the repo root too)."""
    try:
        return __import__(name)
    except ImportError:
        module = __import__(f"benchmarks.{name}", fromlist=[name])
        return module


#: Microbenchmark suites: (module name, smoke runner, report runner,
#: one-line success summary).  The smoke runner uses tiny sizes (pure
#: correctness sweep); the report runner — used when ``--write-reports`` is
#: given — uses *measured* sizes so the recorded ops/sec have timing windows
#: long enough for the CI regression gate (``check_regression.py``) to
#: compare meaningfully.  ``bench_parallel`` records no rates and its
#: measured grid is minutes of work, so its report stays smoke-sized.
SMOKE_SUITES: List[
    Tuple[
        str,
        Callable[..., Dict[str, object]],
        Callable[..., Dict[str, object]],
        Callable[[Dict[str, object]], str],
    ]
] = [
    (
        "bench_micro_hotpaths",
        lambda module: module.run_all(smoke=True),
        lambda module: module.run_all(smoke=False),
        lambda report: f"{len(report['results'])} benchmarks",
    ),
    (
        "bench_parallel",
        lambda module: module.run_bench(smoke=True, workers=2),
        lambda module: module.run_bench(smoke=True, workers=2),
        lambda report: f"{report['cells']} cells",
    ),
    (
        "bench_churn",
        lambda module: module.run_bench(smoke=True),
        lambda module: module.run_bench(
            smoke=False, nodes=32, queries=100, tuples=150, events=16
        ),
        lambda report: f"{len(report['results'])} event kinds",
    ),
    (
        "bench_store_backends",
        lambda module: module.run_bench(smoke=True),
        lambda module: module.run_bench(smoke=False),
        lambda report: f"{len(report['results'])} backends",
    ),
    (
        "bench_query_lifecycle",
        lambda module: module.run_bench(smoke=True),
        lambda module: module.run_bench(smoke=False),
        lambda report: f"{len(report['results'])} lifecycle suites",
    ),
    (
        "bench_query_matching",
        lambda module: module.run_bench(smoke=True),
        lambda module: module.run_bench(smoke=False),
        lambda report: (
            f"{len(report['results'])} population sizes, "
            f"{report['sharing']['storage_savings']:.0%} sharing savings"
        ),
    ),
    (
        "bench_observability",
        lambda module: module.run_bench(smoke=True),
        # Report stays smoke-sized: CI's dedicated gate step re-runs this
        # suite at measured sizes with --check and overwrites the report,
        # so measuring here would only double the wall-clock.
        lambda module: module.run_bench(smoke=True),
        lambda report: (
            f"off {report['gates']['off_over_baseline']:.2f}x, "
            f"on {report['gates']['on_over_baseline']:.2f}x"
        ),
    ),
]


def run_all(verbose: bool = True, reports_dir: "str | None" = None) -> List[str]:
    """Smoke-run every benchmark; returns a list of failure descriptions.

    ``reports_dir`` optionally receives one ``BENCH_<name>.json`` per
    microbenchmark suite; with it set, rate-carrying suites run at measured
    sizes (see :data:`SMOKE_SUITES`) so CI can upload the reports as
    workflow artifacts and gate them against the committed baselines.
    """
    failures: List[str] = []

    def _attempt(name: str, run: Callable[[], str]) -> None:
        try:
            summary = run()
            if verbose:
                print(f"{name}: ok ({summary})")
        except Exception:
            failures.append(f"{name} failed:\n{traceback.format_exc()}")
            if verbose:
                print(f"{name}: FAILED")

    for figure_fn, overrides in SMOKE_FIGURES:
        _attempt(
            figure_fn.__name__,
            lambda figure_fn=figure_fn, overrides=overrides: figure_fn(
                **overrides
            ).figure,
        )

    for module_name, smoke_runner, report_runner, describe in SMOKE_SUITES:
        def _run(
            module_name=module_name,
            smoke_runner=smoke_runner,
            report_runner=report_runner,
            describe=describe,
        ) -> str:
            module = _import_benchmark(module_name)
            runner = smoke_runner if reports_dir is None else report_runner
            report = runner(module)
            if reports_dir is not None:
                directory = Path(reports_dir)
                directory.mkdir(parents=True, exist_ok=True)
                short = module_name.replace("bench_", "", 1)
                (directory / f"BENCH_{short}.json").write_text(
                    json.dumps(report, indent=2, sort_keys=True)
                )
            return describe(report)

        _attempt(module_name, _run)

    return failures


def run_self_check() -> int:
    """Run the repo's static-analysis suite; returns its exit code.

    Benchmarks exercise code paths nothing else runs, so a benchmark
    session is a natural moment to also confirm the tree satisfies its own
    invariants (``python -m repro.analysis check``) before spending minutes
    measuring a build that lint would have rejected anyway.
    """
    from repro.analysis.cli import main as analysis_main

    print("self-check: python -m repro.analysis check")
    return analysis_main(["check"])


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-reports",
        metavar="DIR",
        default=None,
        help="write the smoke-sized BENCH_*.json reports into DIR",
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help=(
            "run the static-analysis suite (python -m repro.analysis check) "
            "before the benchmarks and fail fast on findings"
        ),
    )
    args = parser.parse_args(argv)
    if args.self_check:
        code = run_self_check()
        if code != 0:
            print(
                "self-check failed: fix the findings above before "
                "benchmarking",
                file=sys.stderr,
            )
            return code
    failures = run_all(verbose=True, reports_dir=args.write_reports)
    if failures:
        print(f"\n{len(failures)} benchmark(s) failed:", file=sys.stderr)
        for failure in failures:
            print(failure, file=sys.stderr)
        return 1
    print("\nall benchmarks passed in smoke mode")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
