"""Rule ``protocol-completeness`` — every message dispatched and accounted.

The wire vocabulary of the engine lives in ``core/protocol.py`` (RJoin
messages) on top of the base class in ``net/messages.py``.  Three things
must stay in lock step and historically only failed at runtime — as a
silently ignored delivery (the dispatcher drops unknown kinds for forward
compatibility) or as traffic that never appears in the Section 8 metrics:

* every :class:`~repro.net.messages.Message` subclass has a dispatch arm —
  an ``isinstance(message, X)`` test — in ``RJoinNode.handle_envelope``
  (``core/node.py``),
* no dispatch arm tests a class that is not a declared message (a deleted
  or renamed message must take its handler with it),
* every message class has at least one *accounted send site*: a function
  that constructs it and hands it to one of the traffic-accounted
  messaging primitives (``send`` / ``multi_send`` / ``send_direct`` on the
  :class:`~repro.dht.api.DHTMessagingService`), so no message can be
  minted without being charged to its sender.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.base import Finding, Rule, SourceFile
from repro.analysis.project import Project

#: Files that declare the message vocabulary.
PROTOCOL_FILES = ("core/protocol.py", "net/messages.py")
#: File holding the application-layer dispatcher.
DISPATCH_FILE = "core/node.py"
DISPATCH_CLASS = "RJoinNode"
DISPATCH_METHOD = "handle_envelope"

#: Base classes that mark a class as a wire message.
_MESSAGE_BASES = {"Message"}
#: Declared message-vocabulary classes that are not themselves routable
#: payloads (the base class and the routing envelope).
_NON_PAYLOAD_CLASSES = {"Message", "Envelope"}

#: Traffic-accounted messaging primitives of the DHT API.
_SEND_METHODS = {"send", "multi_send", "send_direct"}


def _class_defs(sf: SourceFile) -> Iterator[ast.ClassDef]:
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.ClassDef):
            yield node


def _base_names(node: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


class ProtocolRule(Rule):
    """Keep message declarations, dispatch arms and send sites in sync."""

    name = "protocol-completeness"
    description = (
        "every Message subclass has a dispatch arm in RJoinNode and an "
        "accounted send site; no dispatch arm without a message"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        messages = self._declared_messages(project)
        if not messages:
            return  # tree does not declare a protocol (fixture subsets)
        dispatch = self._dispatch_arms(project)
        send_sites = self._accounted_send_sites(project)

        dispatch_names = {name for name, _ in dispatch or ()}
        for name in sorted(messages):
            sf, node = messages[name]
            if dispatch is not None and name not in dispatch_names:
                yield self.finding(
                    sf,
                    node,
                    f"message {name} has no dispatch arm in "
                    f"{DISPATCH_CLASS}.{DISPATCH_METHOD} "
                    f"({DISPATCH_FILE}): deliveries would be silently "
                    "dropped",
                )
            if name not in send_sites:
                yield self.finding(
                    sf,
                    node,
                    f"message {name} is never constructed in a function "
                    "that calls an accounted messaging primitive "
                    f"({', '.join(sorted(_SEND_METHODS))}): it cannot "
                    "reach the network with its traffic charged",
                )
        if dispatch is not None:
            for name, (sf, node) in dispatch:
                if name not in messages:
                    yield self.finding(
                        sf,
                        node,
                        f"dispatch arm tests {name}, which is not a "
                        "declared Message subclass "
                        f"({' / '.join(PROTOCOL_FILES)}): dead or "
                        "misspelled handler",
                    )

    # ------------------------------------------------------------------
    def _declared_messages(
        self, project: Project
    ) -> Dict[str, Tuple[SourceFile, ast.ClassDef]]:
        """``name -> (file, class node)`` of every Message subclass."""
        messages: Dict[str, Tuple[SourceFile, ast.ClassDef]] = {}
        for rel in PROTOCOL_FILES:
            sf = project.get(rel)
            if sf is None:
                continue
            for node in _class_defs(sf):
                if node.name in _NON_PAYLOAD_CLASSES:
                    continue
                if _base_names(node) & _MESSAGE_BASES:
                    messages[node.name] = (sf, node)
        return messages

    def _dispatch_arms(
        self, project: Project
    ) -> Optional[List[Tuple[str, Tuple[SourceFile, ast.AST]]]]:
        """``(class name, (file, isinstance node))`` per dispatch arm.

        ``None`` when the dispatcher file/method is not part of the
        analyzed tree (fixture subsets), in which case only declaration
        and send-site checks run.
        """
        sf = project.get(DISPATCH_FILE)
        if sf is None:
            return None
        method: Optional[ast.AST] = None
        for node in _class_defs(sf):
            if node.name != DISPATCH_CLASS:
                continue
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == DISPATCH_METHOD
                ):
                    method = item
        if method is None:
            return None
        arms: List[Tuple[str, Tuple[SourceFile, ast.AST]]] = []
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Name) and func.id == "isinstance"):
                continue
            if len(node.args) != 2:
                continue
            classinfo = node.args[1]
            candidates: List[ast.expr] = (
                list(classinfo.elts)
                if isinstance(classinfo, ast.Tuple)
                else [classinfo]
            )
            for candidate in candidates:
                if isinstance(candidate, ast.Name):
                    arms.append((candidate.id, (sf, node)))
        return arms

    def _accounted_send_sites(self, project: Project) -> Set[str]:
        """Message class names constructed in a function that also sends.

        The heuristic is function-granular: a function that both builds
        ``X(...)`` and calls ``<something>.send/multi_send/send_direct``
        counts as an accounted send site for ``X``.  All messaging
        primitives charge traffic internally, so construction plus a
        primitive call in one function is the invariant worth pinning.
        """
        accounted: Set[str] = set()
        for sf in project.files():
            for node in ast.walk(sf.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                constructed: Set[str] = set()
                sends = False
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call):
                        func = sub.func
                        if isinstance(func, ast.Name):
                            constructed.add(func.id)
                        elif isinstance(func, ast.Attribute):
                            if func.attr in _SEND_METHODS:
                                sends = True
                            constructed.add(func.attr)
                if sends:
                    accounted |= constructed
        return accounted
