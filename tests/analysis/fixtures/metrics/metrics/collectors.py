"""Fixture ChurnStats with seeded counter/property/summary gaps."""


class ChurnStats:
    def __init__(self):
        self._joins = 0
        self._orphans = 0
        self._hidden = 0

    def record_join(self):
        self._joins += 1

    def record_orphan(self):
        self._orphans += 1

    def record_hidden(self):
        self._hidden += 1  # VIOLATION: no @property ever reads _hidden back

    @property
    def joins(self):
        return self._joins

    @property
    def orphans(self):
        # VIOLATION: exposed, but metrics_summary never consumes it.
        return self._orphans
