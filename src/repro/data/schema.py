"""Relation schemas and the schema catalog.

The experimental setup of the paper uses a catalog of 10 relations with 10
attributes each, every attribute drawing values from a domain of 100 values
(Section 8).  The classes here are deliberately small and explicit: a
:class:`RelationSchema` is a named, ordered list of attribute names, and a
:class:`Catalog` is a mapping from relation names to schemas.  Different
schemas may co-exist; schema mappings are not supported (as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple as TupleT

from repro.errors import (
    SchemaError,
    UnknownAttributeError,
    UnknownRelationError,
)


@dataclass(frozen=True, order=True)
class AttributeRef:
    """A reference to an attribute of a relation, e.g. ``R.A``.

    Attribute references appear in select lists and in equi-join / selection
    predicates of the supported SQL subset.  They are immutable and ordered
    so that they can be used as dictionary keys and sorted deterministically
    (important for reproducible query plans).
    """

    relation: str
    attribute: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.relation}.{self.attribute}"


class RelationSchema:
    """The schema of a single relation: a name and ordered attribute names.

    Parameters
    ----------
    name:
        Relation name (e.g. ``"R"``).
    attributes:
        Ordered attribute names.  Names must be unique within the relation.
    """

    __slots__ = ("name", "attributes", "_positions")

    def __init__(self, name: str, attributes: Sequence[str]) -> None:
        if not name:
            raise SchemaError("relation name must be a non-empty string")
        attrs = list(attributes)
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"relation {name!r} has duplicate attribute names")
        self.name = name
        self.attributes: TupleT[str, ...] = tuple(attrs)
        self._positions: Dict[str, int] = {a: i for i, a in enumerate(attrs)}

    @property
    def arity(self) -> int:
        """Number of attributes of the relation."""
        return len(self.attributes)

    def has_attribute(self, attribute: str) -> bool:
        """Return ``True`` when ``attribute`` belongs to this relation."""
        return attribute in self._positions

    def position_of(self, attribute: str) -> int:
        """Return the 0-based position of ``attribute`` in the schema."""
        try:
            return self._positions[attribute]
        except KeyError:
            raise UnknownAttributeError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from None

    def attribute_refs(self) -> List[AttributeRef]:
        """Return an :class:`AttributeRef` for every attribute, in order."""
        return [AttributeRef(self.name, a) for a in self.attributes]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(self.attributes)
        return f"RelationSchema({self.name}({cols}))"


@dataclass
class Catalog:
    """A collection of relation schemas known to the network.

    The catalog is purely a client-side convenience: RJoin itself never needs
    global schema knowledge because every message carries the relation and
    attribute names it refers to.  The catalog is used by the SQL parser (to
    validate attribute references), by the workload generator and by the
    reference engine.
    """

    _schemas: Dict[str, RelationSchema] = field(default_factory=dict)

    def add(self, schema: RelationSchema) -> RelationSchema:
        """Register ``schema``; replacing an identical schema is a no-op."""
        existing = self._schemas.get(schema.name)
        if existing is not None and existing != schema:
            raise SchemaError(
                f"relation {schema.name!r} already registered with a different schema"
            )
        self._schemas[schema.name] = schema
        return schema

    def add_relation(self, name: str, attributes: Sequence[str]) -> RelationSchema:
        """Create and register a :class:`RelationSchema` in one call."""
        return self.add(RelationSchema(name, attributes))

    def get(self, name: str) -> RelationSchema:
        """Return the schema of relation ``name`` or raise."""
        try:
            return self._schemas[name]
        except KeyError:
            raise UnknownRelationError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._schemas

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._schemas.values())

    def __len__(self) -> int:
        return len(self._schemas)

    def relation_names(self) -> List[str]:
        """Return the names of all registered relations, in insertion order."""
        return list(self._schemas.keys())

    def validate_ref(self, ref: AttributeRef) -> AttributeRef:
        """Check that ``ref`` names an existing relation attribute."""
        schema = self.get(ref.relation)
        if not schema.has_attribute(ref.attribute):
            raise UnknownAttributeError(
                f"relation {ref.relation!r} has no attribute {ref.attribute!r}"
            )
        return ref

    @classmethod
    def uniform(
        cls,
        num_relations: int,
        attributes_per_relation: int,
        relation_prefix: str = "R",
        attribute_prefix: str = "a",
    ) -> "Catalog":
        """Build the uniform catalog used in the paper's experiments.

        The paper uses a schema of 10 relations, each with 10 attributes
        (Section 8).  Relations are named ``R0 .. R9`` and attributes
        ``a0 .. a9`` by default.
        """
        if num_relations <= 0 or attributes_per_relation <= 0:
            raise SchemaError("catalog dimensions must be positive")
        catalog = cls()
        for r in range(num_relations):
            attrs = [f"{attribute_prefix}{i}" for i in range(attributes_per_relation)]
            catalog.add_relation(f"{relation_prefix}{r}", attrs)
        return catalog


def ensure_catalog(
    catalog: Optional[Catalog], schemas: Iterable[RelationSchema] = ()
) -> Catalog:
    """Return ``catalog`` or a fresh one populated with ``schemas``."""
    if catalog is None:
        catalog = Catalog()
    for schema in schemas:
        catalog.add(schema)
    return catalog
