"""Experiment harness reproducing the paper's evaluation (Section 8).

* :mod:`repro.experiments.config` — experiment parameters (network size,
  workload, strategy, checkpoints) with the paper-scale and the reduced
  default-scale presets,
* :mod:`repro.experiments.runner` — runs one experiment end to end on the
  RJoin engine and collects every metric series the figures need,
* :mod:`repro.experiments.scenarios` — the declarative scenario registry:
  named, parameterized experiment grids (``baseline``, ``skew-sweep``,
  ``window-churn``, ``bursty``, ``query-flood``, ``hot-key``, plus one
  scenario per paper figure),
* :mod:`repro.experiments.parallel` — the multiprocessing grid runner with
  per-cell JSON checkpointing, resume and mean/stddev aggregation,
* :mod:`repro.experiments.cli` — the ``python -m repro.experiments``
  ``run``/``list``/``report`` entry point,
* :mod:`repro.experiments.figures` — one function per figure (Figures 2–9),
  each a thin consumer of the scenario registry returning a
  :class:`~repro.experiments.figures.FigureResult` with the same series the
  paper plots.
"""

from repro.experiments.config import ChurnSpec, ExperimentConfig, is_full_scale
from repro.experiments.figures import (
    FigureResult,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
)
from repro.experiments.parallel import (
    CellOutcome,
    GridReport,
    diff_grids,
    load_cells,
    run_cell,
    run_grid,
)
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioCell,
    Variant,
    get_scenario,
    register,
    scenario_names,
)

__all__ = [
    "CellOutcome",
    "ChurnSpec",
    "ExperimentConfig",
    "ExperimentResult",
    "FigureResult",
    "GridReport",
    "SCENARIOS",
    "Scenario",
    "ScenarioCell",
    "Variant",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "diff_grids",
    "get_scenario",
    "is_full_scale",
    "load_cells",
    "register",
    "run_cell",
    "run_experiment",
    "run_grid",
    "scenario_names",
]
