"""Tests for experiment configuration."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig, is_full_scale


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.num_nodes > 0
        assert config.strategy == "rjoin"

    def test_invalid_values(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(num_nodes=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(num_tuples=-1)
        with pytest.raises(ExperimentError):
            ExperimentConfig(join_arity=1)
        with pytest.raises(ExperimentError):
            ExperimentConfig(warmup_tuples=-1)

    def test_checkpoints_must_be_within_range(self):
        ExperimentConfig(num_tuples=100, checkpoints=[50, 100])
        with pytest.raises(ExperimentError):
            ExperimentConfig(num_tuples=100, checkpoints=[200])
        with pytest.raises(ExperimentError):
            ExperimentConfig(num_tuples=100, checkpoints=[0])

    def test_with_overrides_returns_copy(self):
        config = ExperimentConfig(num_queries=10)
        changed = config.with_overrides(num_queries=20, strategy="worst")
        assert changed.num_queries == 20
        assert changed.strategy == "worst"
        assert config.num_queries == 10

    def test_presets(self):
        assert ExperimentConfig.paper_scale().num_nodes == 1000
        assert ExperimentConfig.default_scale().num_nodes == 100
        assert ExperimentConfig.paper_scale(num_tuples=5).num_tuples == 5

    def test_is_full_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert not is_full_scale()
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert is_full_scale()
        monkeypatch.setenv("REPRO_FULL_SCALE", "0")
        assert not is_full_scale()
