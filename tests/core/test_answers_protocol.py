"""Tests for answer handles and protocol message/state objects."""

from repro.core.answers import Answer, QueryHandle
from repro.core.keys import value_key
from repro.core.protocol import (
    AnswerMessage,
    EvalMessage,
    IndexQueryMessage,
    NewTupleMessage,
    QueryState,
    RicReplyMessage,
    RicRequestMessage,
)
from repro.core.ric import RicEntry
from repro.core.windows import WindowState
from repro.data.schema import RelationSchema
from repro.data.tuples import Tuple
from repro.sql.parser import parse_query


def make_state(is_input=True):
    query = parse_query("SELECT R.a FROM R, S WHERE R.b = S.c")
    return QueryState(
        query_id="n1#1",
        owner="n1",
        query=query,
        insertion_time=3.0,
        is_input=is_input,
    )


class TestQueryHandle:
    def answer(self, values):
        return Answer(
            query_id="n1#1",
            values=values,
            produced_at=1.0,
            delivered_at=2.0,
            producer="x",
        )

    def test_collection_and_accessors(self):
        handle = QueryHandle(
            query_id="n1#1",
            query=parse_query("SELECT R.a FROM R"),
            owner="n1",
            insertion_time=0.0,
        )
        assert handle.count == 0
        assert handle.latest() is None
        handle.add_answer(self.answer((1,)))
        handle.add_answer(self.answer((1,)))
        handle.add_answer(self.answer((2,)))
        assert handle.count == 3
        assert handle.values() == [(1,), (1,), (2,)]
        assert handle.distinct_values() == {(1,), (2,)}
        assert handle.latest().values == (2,)


class TestQueryState:
    def test_derive_marks_rewritten_and_accumulates(self):
        state = make_state()
        entry = RicEntry("k", 1.0, "n2", 0.0)
        new_query = parse_query("SELECT R.a FROM R", validate=False)
        derived = state.derive(new_query, WindowState(1, 1), extra_ric={"k": entry})
        assert not derived.is_input
        assert derived.consumed == 1
        assert derived.query is new_query
        assert derived.ric_info["k"] is entry
        assert derived.query_id == state.query_id
        assert derived.insertion_time == state.insertion_time
        # the parent state is untouched
        assert state.is_input and state.consumed == 0 and not state.ric_info

    def test_distinct_flag_follows_query(self):
        query = parse_query("SELECT DISTINCT R.a FROM R, S WHERE R.b = S.c")
        state = QueryState("q", "n", query, 0.0)
        assert state.distinct


class TestProtocolMessages:
    def test_new_tuple_message_level(self):
        schema = RelationSchema("R", ["a"])
        tup = Tuple.from_schema(schema, (1,))
        msg = NewTupleMessage(tuple=tup, key=value_key("R", "a", 1), publisher="n0")
        assert msg.level == "value"
        assert msg.kind == "NewTupleMessage"

    def test_message_ids_unique_across_types(self):
        state = make_state()
        key = value_key("R", "a", 1)
        messages = [
            IndexQueryMessage(state=state, key=key),
            EvalMessage(state=state, key=key),
            RicRequestMessage(request_id="r", origin="n", target_key=key),
            RicReplyMessage(request_id="r"),
            AnswerMessage(query_id="q", values=(1,), produced_at=0.0, producer="n"),
        ]
        ids = [message.message_id for message in messages]
        assert len(set(ids)) == len(ids)

    def test_ric_request_defaults(self):
        key = value_key("R", "a", 1)
        msg = RicRequestMessage(request_id="r", origin="n", target_key=key)
        assert msg.pending == ()
        assert msg.collected == ()
