"""``python -m repro.experiments`` — the scenario-grid CLI."""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
