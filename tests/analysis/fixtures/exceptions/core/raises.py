"""Fixture raise sites for the exception-discipline rule."""


class FixtureError(Exception):
    """Stand-in for a repro.errors subclass (subclassing is not raising)."""


def reject(value):
    if value < 0:
        raise ValueError("negative")  # VIOLATION: bare builtin raise
    return value


def explode():
    raise RuntimeError  # VIOLATION: bare builtin raise (no call)


def tolerated(value):
    if value < 0:
        raise ValueError("negative")  # repro: allow[exception-discipline]
    return value


def fine(value):
    if value < 0:
        raise FixtureError("negative")
    return value


def reraise(value):
    try:
        return fine(value)
    except FixtureError:
        raise  # bare re-raise is always fine
