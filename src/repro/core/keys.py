"""Indexing keys for tuples and queries.

Section 3 of the paper distinguishes two indexing levels:

* **attribute level** — the concatenation of a relation name and an attribute
  name (``R + A``); input queries are indexed here, and every new tuple is
  sent here once per attribute so it can trigger waiting input queries,
* **value level** — the concatenation of a relation name, an attribute name
  and a value (``R + A + v``); rewritten queries are indexed here, and every
  new tuple is also sent (and stored) here once per attribute.

:class:`IndexKey` is the canonical representation of such a key.  Its
``text`` form is what gets hashed onto the identifier circle; a separator
that cannot appear in relation or attribute names prevents accidental
collisions between the concatenations (e.g. ``R + "AB"`` vs ``"RA" + B``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.data.schema import AttributeRef, RelationSchema
from repro.data.tuples import Tuple

ATTRIBUTE_LEVEL = "attribute"
VALUE_LEVEL = "value"

_SEPARATOR = "\x1f"  # unit separator: never present in identifiers or values


@dataclass(frozen=True, order=True)
class IndexKey:
    """A DHT indexing key at the attribute or value level."""

    relation: str
    attribute: str
    value: Optional[Any] = None

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def level(self) -> str:
        """Either ``"attribute"`` or ``"value"``."""
        return ATTRIBUTE_LEVEL if self.value is None else VALUE_LEVEL

    @property
    def is_value_level(self) -> bool:
        """Whether this key carries a value component."""
        return self.value is not None

    @property
    def text(self) -> str:
        """Canonical string form, the input of ``Hash()``."""
        if self.value is None:
            return f"{self.relation}{_SEPARATOR}{self.attribute}"
        return f"{self.relation}{_SEPARATOR}{self.attribute}{_SEPARATOR}{self.value!r}"

    @property
    def attribute_prefix(self) -> str:
        """The attribute-level prefix shared by all value keys of this pair."""
        return f"{self.relation}{_SEPARATOR}{self.attribute}{_SEPARATOR}"

    @property
    def attribute_ref(self) -> AttributeRef:
        """The relation-attribute pair as an :class:`AttributeRef`."""
        return AttributeRef(self.relation, self.attribute)

    def at_attribute_level(self) -> "IndexKey":
        """Return the attribute-level key for the same relation-attribute pair."""
        return IndexKey(self.relation, self.attribute)

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.value is None:
            return f"{self.relation}.{self.attribute}"
        return f"{self.relation}.{self.attribute}={self.value!r}"


def attribute_key(relation: str, attribute: str) -> IndexKey:
    """Build an attribute-level key (``R + A``)."""
    return IndexKey(relation, attribute)


def value_key(relation: str, attribute: str, value: Any) -> IndexKey:
    """Build a value-level key (``R + A + v``)."""
    return IndexKey(relation, attribute, value)


def attribute_prefix(relation: str, attribute: str) -> str:
    """Return the store prefix matching every value key of ``relation.attribute``."""
    return IndexKey(relation, attribute, 0).attribute_prefix


def tuple_index_keys(tup: Tuple, schema: RelationSchema) -> List[IndexKey]:
    """All keys a new tuple must be indexed under (Procedure 1).

    A tuple is indexed twice per attribute: once at the attribute level and
    once at the value level, so it reaches every input query indexed under
    any of its relation-attribute pairs and can wait (stored at the value
    level) for rewritten queries that will need its values later.
    """
    keys: List[IndexKey] = []
    for attribute in schema.attributes:
        value = tup.value_of(attribute, schema)
        keys.append(attribute_key(tup.relation, attribute))
        keys.append(value_key(tup.relation, attribute, value))
    return keys
