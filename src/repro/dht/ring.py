"""Sorted identifier ring with successor queries.

:class:`RingMap` is the data structure underneath the Chord overlay: a sorted
mapping from node identifiers to arbitrary node objects supporting
``successor(identifier)`` — the first node whose identifier is equal to or
follows the given identifier clockwise — in ``O(log N)`` via binary search.
It is deliberately generic (it stores "values", not Chord nodes) so it can be
unit-tested and reused independently of the overlay logic.
"""

from __future__ import annotations

import bisect
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.dht.hashing import IdentifierSpace
from repro.errors import DuplicateNodeError, EmptyRingError, UnknownNodeError

T = TypeVar("T")


class RingMap(Generic[T]):
    """A circular sorted map from identifiers to values."""

    def __init__(self, space: IdentifierSpace) -> None:
        self.space = space
        self._ids: List[int] = []
        self._values: List[T] = []

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, identifier: int, value: T) -> None:
        """Insert ``value`` at ``identifier``; identifiers must be unique."""
        identifier = self.space.normalize(identifier)
        index = bisect.bisect_left(self._ids, identifier)
        if index < len(self._ids) and self._ids[index] == identifier:
            raise DuplicateNodeError(f"identifier {identifier} already present")
        self._ids.insert(index, identifier)
        self._values.insert(index, value)

    def remove(self, identifier: int) -> T:
        """Remove and return the value stored at ``identifier``."""
        identifier = self.space.normalize(identifier)
        index = bisect.bisect_left(self._ids, identifier)
        if index >= len(self._ids) or self._ids[index] != identifier:
            raise UnknownNodeError(f"identifier {identifier} not present")
        self._ids.pop(index)
        return self._values.pop(index)

    def move(self, old_identifier: int, new_identifier: int) -> None:
        """Atomically relocate the value at ``old_identifier`` to ``new_identifier``."""
        value = self.remove(old_identifier)
        try:
            self.insert(new_identifier, value)
        except DuplicateNodeError:
            # Roll back so the caller does not lose the node.
            self.insert(old_identifier, value)
            raise

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def successor(self, identifier: int) -> Tuple[int, T]:
        """Return ``(id, value)`` of the first entry at or after ``identifier``."""
        if not self._ids:
            raise EmptyRingError("the ring has no nodes")
        identifier = self.space.normalize(identifier)
        index = bisect.bisect_left(self._ids, identifier)
        if index == len(self._ids):
            index = 0
        return self._ids[index], self._values[index]

    def predecessor(self, identifier: int) -> Tuple[int, T]:
        """Return ``(id, value)`` of the last entry strictly before ``identifier``."""
        if not self._ids:
            raise EmptyRingError("the ring has no nodes")
        identifier = self.space.normalize(identifier)
        index = bisect.bisect_left(self._ids, identifier) - 1
        if index < 0:
            index = len(self._ids) - 1
        return self._ids[index], self._values[index]

    def get(self, identifier: int) -> Optional[T]:
        """Return the value stored exactly at ``identifier`` (or None)."""
        identifier = self.space.normalize(identifier)
        index = bisect.bisect_left(self._ids, identifier)
        if index < len(self._ids) and self._ids[index] == identifier:
            return self._values[index]
        return None

    def __contains__(self, identifier: int) -> bool:
        return self.get(identifier) is not None

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[Tuple[int, T]]:
        return iter(zip(self._ids, self._values))

    def identifiers(self) -> List[int]:
        """All identifiers in increasing order."""
        return list(self._ids)

    def values(self) -> List[T]:
        """All values, ordered by identifier."""
        return list(self._values)

    def arc_length(self, identifier: int) -> int:
        """Size of the key interval owned by the entry at ``identifier``.

        The owner of ``identifier`` is responsible for keys in
        ``(predecessor, identifier]``; the arc length is the number of
        identifiers in that interval.
        """
        if not self._ids:
            raise EmptyRingError("the ring has no nodes")
        if len(self._ids) == 1:
            return self.space.size
        pred_id, _ = self.predecessor(identifier)
        return self.space.distance(pred_id, identifier)
