"""Churn in the experiment layer: ChurnSpec, runner wiring, scenarios, diff."""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.cli import main as cli_main
from repro.experiments.config import ChurnSpec, ExperimentConfig
from repro.experiments.parallel import diff_grids, load_cells, run_grid
from repro.experiments.runner import build_engine, run_experiment
from repro.experiments.scenarios import get_scenario
from repro.metrics.serialize import (
    churn_from_dict,
    churn_to_dict,
    config_from_dict,
    config_to_dict,
)


class TestChurnSpec:
    def test_defaults_are_disabled(self):
        spec = ChurnSpec()
        assert not spec.enabled
        assert spec.events_for(1000) == []

    def test_events_schedule_is_deterministic_and_ordered(self):
        spec = ChurnSpec(join_every=10, leave_every=15, crash_every=30)
        events = spec.events_for(30)
        assert events == [
            (10, "join"),
            (15, "leave"),
            (20, "join"),
            (30, "join"),
            (30, "leave"),
            (30, "crash"),
        ]
        assert events == spec.events_for(30)

    def test_start_after_shifts_the_schedule(self):
        spec = ChurnSpec(join_every=10, start_after=25)
        assert spec.events_for(50) == [(35, "join"), (45, "join")]

    def test_validation(self):
        with pytest.raises(ExperimentError):
            ChurnSpec(join_every=-1)
        with pytest.raises(ExperimentError):
            ChurnSpec(op_delay=-0.1)
        with pytest.raises(ExperimentError):
            ChurnSpec(min_nodes=0)
        with pytest.raises(ExperimentError):
            ChurnSpec(min_nodes=5, max_nodes=3)

    def test_config_rejects_non_spec_churn(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(churn={"join_every": 5})

    def test_serialization_round_trip(self):
        spec = ChurnSpec(join_every=7, crash_every=13, graceful=False, max_nodes=50)
        assert churn_from_dict(churn_to_dict(spec)) == spec
        assert churn_to_dict(None) is None
        assert churn_from_dict(None) is None

    def test_config_round_trip_with_churn(self):
        config = ExperimentConfig(
            num_nodes=10,
            num_queries=5,
            num_tuples=5,
            churn=ChurnSpec(leave_every=3),
            hop_delay=2.5,
            delay_jitter=0.5,
        )
        data = config_to_dict(config)
        json.dumps(data)  # must be JSON-safe
        restored = config_from_dict(data)
        assert restored.churn == config.churn
        assert restored.hop_delay == 2.5
        assert restored.delay_jitter == 0.5


class TestRunnerChurn:
    def test_run_experiment_applies_churn(self):
        config = ExperimentConfig(
            name="churn-test",
            num_nodes=12,
            num_queries=10,
            num_tuples=30,
            churn=ChurnSpec(join_every=10, leave_every=15),
            seed=3,
        )
        result = run_experiment(config)
        assert result.summary["membership_events"] >= 2
        assert result.summary["joins"] >= 1
        assert result.summary["leaves"] >= 1
        # graceful-only schedule: nothing may be lost
        assert result.summary["records_lost"] == 0

    def test_run_experiment_crash_accounts_losses(self):
        config = ExperimentConfig(
            name="crash-test",
            num_nodes=12,
            num_queries=10,
            num_tuples=30,
            churn=ChurnSpec(crash_every=10),
            seed=3,
        )
        result = run_experiment(config)
        assert result.summary["crashes"] >= 1
        assert result.summary["nodes"] < 12

    def test_latency_knobs_reach_the_engine(self):
        config = ExperimentConfig(
            num_nodes=8,
            num_queries=1,
            num_tuples=1,
            hop_delay=3.0,
            delay_jitter=1.5,
        )
        engine = build_engine(config)
        assert engine.api.hop_delay == 3.0
        assert engine.api.delay_jitter == 1.5

    def test_stable_run_records_no_events(self):
        config = ExperimentConfig(
            num_nodes=10, num_queries=5, num_tuples=10, seed=3
        )
        result = run_experiment(config)
        assert result.summary["membership_events"] == 0
        assert result.summary["nodes"] == 10


class TestScenarios:
    def test_node_churn_scenario_registered(self):
        scenario = get_scenario("node-churn")
        labels = [v.label for v in scenario.variants(full_scale=False)]
        assert labels == ["stable", "join", "leave", "crash", "mixed"]

    def test_latency_scenario_registered(self):
        scenario = get_scenario("latency")
        overrides = [dict(v.overrides) for v in scenario.variants(full_scale=False)]
        assert any("hop_delay" in o for o in overrides)
        assert any("delay_jitter" in o for o in overrides)

    def test_node_churn_grid_runs_and_checkpoints(self, tmp_path):
        report = run_grid(
            "node-churn",
            tmp_path,
            workers=1,
            seeds=[41],
            overrides={
                "num_nodes": 10,
                "num_queries": 6,
                "num_tuples": 25,
                "warmup_tuples": 0,
            },
        )
        assert len(report.outcomes) == 5
        by_variant = {
            outcome.cell.variant: outcome.summary for outcome in report.outcomes
        }
        assert by_variant["stable"]["membership_events"] == 0
        assert by_variant["join"]["joins"] >= 1
        assert by_variant["leave"]["leaves"] >= 1
        assert by_variant["crash"]["crashes"] >= 1

    def test_latency_grid_runs(self, tmp_path):
        report = run_grid(
            "latency",
            tmp_path,
            workers=1,
            seeds=[41],
            overrides={
                "num_nodes": 10,
                "num_queries": 6,
                "num_tuples": 10,
                "warmup_tuples": 0,
            },
        )
        assert len(report.outcomes) == 5
        assert all(not outcome.cached for outcome in report.outcomes)


class TestReportDiff:
    def _run(self, tmp_path, name, tuples):
        return run_grid(
            "baseline",
            tmp_path / name,
            workers=1,
            seeds=[41],
            strategies=["rjoin"],
            overrides={
                "num_nodes": 10,
                "num_queries": 6,
                "num_tuples": tuples,
                "warmup_tuples": 0,
            },
        )

    def test_diff_grids_pairs_cells(self, tmp_path):
        report_a = self._run(tmp_path, "a", 10)
        report_b = self._run(tmp_path, "b", 20)
        diff = diff_grids(
            report_a.output_dir, report_b.output_dir, ["qpl_per_node", "answers"]
        )
        assert len(diff["cells"]) == 1
        entry = diff["cells"][0]["metrics"]["qpl_per_node"]
        assert entry["a"] is not None and entry["b"] is not None
        assert entry["delta"] == pytest.approx(entry["b"] - entry["a"])
        assert diff["only_in_a"] == [] and diff["only_in_b"] == []

    def test_diff_reports_missing_cells(self, tmp_path):
        report_a = self._run(tmp_path, "a", 10)
        (tmp_path / "empty").mkdir()
        diff = diff_grids(report_a.output_dir, tmp_path / "empty", ["answers"])
        assert diff["cells"] == []
        assert diff["only_in_a"]  # everything is missing from B

    def test_load_cells_skips_aggregate_and_garbage(self, tmp_path):
        report = self._run(tmp_path, "a", 10)
        (report.output_dir / "broken.json").write_text("{not json")
        cells = load_cells(report.output_dir)
        assert len(cells) == 1
        assert all("aggregate" not in cell_id for cell_id in cells)

    def test_cli_report_diff(self, tmp_path, capsys):
        report_a = self._run(tmp_path, "a", 10)
        report_b = self._run(tmp_path, "b", 20)
        import io

        out = io.StringIO()
        code = cli_main(
            [
                "report",
                "--diff", str(report_a.output_dir), str(report_b.output_dir),
                "--metrics", "qpl_per_node",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "diff:" in text
        assert "qpl_per_node" in text

    def test_cli_report_needs_scenario_or_diff(self):
        import io

        out = io.StringIO()
        assert cli_main(["report"], out=out) == 2
        assert "either --scenario" in out.getvalue()

    def test_cli_run_accepts_positional_scenario(self, tmp_path):
        import io

        out = io.StringIO()
        code = cli_main(
            [
                "run", "node-churn",
                "--seeds", "41",
                "--output", str(tmp_path),
                "--set", "num_nodes=10",
                "--set", "num_queries=4",
                "--set", "num_tuples=20",
                "--set", "warmup_tuples=0",
            ],
            out=out,
        )
        assert code == 0
        assert "node-churn: 5 cells" in out.getvalue()
