"""Per-node RJoin protocol logic (Procedures 1–3 plus Sections 4–7 extensions).

Every DHT node of the simulated network hosts one :class:`RJoinNode` — the
application-layer state and the handlers for every protocol message:

* publishing a tuple (Procedure 1): the tuple is sent, for each of its
  attributes, to the attribute-level key and to the value-level key,
* receiving a tuple (Procedure 2): locally stored queries indexed under the
  arrival key are triggered, rewritten and re-indexed (or answered); tuples
  arriving at the value level are stored locally, tuples arriving at the
  attribute level are remembered in the ALTT for Δ time units,
* receiving an input query: it is stored at the attribute level and matched
  against the ALTT (the Section 4 fix for message delays),
* receiving a rewritten query (Procedure 3): it is stored and matched against
  the locally stored tuples,
* RIC requests/replies (Section 6) and the candidate-table/piggy-backing
  optimisations (Section 7),
* sliding-window garbage collection (Section 5) and DISTINCT projection
  tracking (Section 4).
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple as TupleT,
)

from repro.core.altt import AttributeLevelTupleTable
from repro.core.dedup import ProjectionTracker
from repro.core.keys import ATTRIBUTE_LEVEL, IndexKey, tuple_index_keys
from repro.core.protocol import (
    AnswerMessage,
    EvalMessage,
    IndexQueryMessage,
    NewTupleMessage,
    QueryState,
    RetractQueryMessage,
    RicReplyMessage,
    RicRequestMessage,
)
from repro.core.rewriting import (
    canonical_state_key,
    discriminating_selection,
    rewrite_query,
)
from repro.core.ric import CandidateTable, RateTracker, RicEntry
from repro.core.strategy import (
    IndexingStrategy,
    input_query_candidates,
    rewritten_query_candidates,
)
from repro.core.windows import admits, expired, extend
from repro.core.config import RJoinConfig
from repro.data.backends import (
    DEFAULT_BACKEND,
    PREFIX_PROBE,
    StoreBackend,
    StoreTuning,
    make_store,
)
from repro.data.schema import Catalog, RelationSchema
from repro.data.store import StoredTuple
from repro.data.tuples import Tuple
from repro.dht.api import DHTMessagingService
from repro.dht.hashing import IdentifierSpace
from repro.errors import EngineError
from repro.metrics.collectors import LoadTracker
from repro.net.messages import Envelope
from repro.sql.ast import WindowSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.lifecycle import HandleRegistration
    from repro.obs.context import Observability


@dataclass
class NodeContext:
    """Engine-provided services shared by every :class:`RJoinNode`."""

    api: DHTMessagingService
    space: IdentifierSpace
    config: RJoinConfig
    strategy: IndexingStrategy
    loads: LoadTracker
    catalog: Catalog
    rng: random.Random
    clock: Callable[[], float]
    sequence_clock: Callable[[], int]
    rate_oracle: Callable[[str], float]
    collect_answer: Callable[[AnswerMessage, float], None]
    altt_delta: Optional[float] = None
    #: Tuple-store backend every node of the engine builds its local store
    #: from (see :func:`repro.data.backends.make_store`).
    store_backend: str = DEFAULT_BACKEND
    #: Backend tuning knobs (compaction thresholds) forwarded to the store
    #: factory; ``None`` keeps each backend's defaults.
    store_tuning: Optional[StoreTuning] = None
    # Query lifecycle services (retraction + owner failover) ---------------
    #: ``(query_id, fallback) -> current owner address``: producers resolve
    #: the live owner at answer-emission time so failover re-registrations
    #: take effect without rewriting every stored query state.
    resolve_owner: Optional[Callable[[str, str], str]] = None
    #: Whether a query id has been retracted; state arriving for a retracted
    #: query is orphaned and must be dropped on sight.
    is_retracted: Optional[Callable[[str], bool]] = None
    #: Sink for the orphaned-state probe (dropped post-retraction records).
    record_orphaned: Optional[Callable[[int], None]] = None
    #: Sink for per-node retraction purges (records deleted per query).
    record_retracted: Optional[Callable[[int], None]] = None
    # Matching observability (the predicate-aware query index) -------------
    #: Stored-query candidates fetched by tuple-arrival probes.
    record_candidates_scanned: Optional[Callable[[int], None]] = None
    #: Stored queries whose rewrite actually fired (non-dead trigger).
    record_queries_triggered: Optional[Callable[[int], None]] = None
    #: Extra subscribers served per shared-state answer emission.
    record_shared_fanout: Optional[Callable[[int], None]] = None
    # End-to-end observability (tracing + histograms) ----------------------
    #: The engine's tracing/metrics facade; ``None`` when observability is
    #: off, in which case every node-level hook is a single None check.
    obs: Optional["Observability"] = None


@dataclass
class StoredQueryRecord:
    """A (rewritten or input) query stored at a node, with local bookkeeping.

    ``seq``, ``discriminator`` and ``share_key`` are maintained by the
    :class:`QueryTable` the record currently lives in: the insertion sequence
    number (the deterministic trigger order), the ``(attribute, value)``
    selection the predicate-aware index filed the record under (None for
    wildcard records) and the canonical sharing key of its state (None when
    the state is not shareable or sharing is disabled).
    """

    state: QueryState
    key: IndexKey
    stored_at: float
    tracker: Optional[ProjectionTracker] = None
    seq: int = 0
    discriminator: Optional[TupleT[str, object]] = None
    share_key: Optional[Hashable] = None


class _KeyBucket:
    """The records stored under one key text, sub-indexed for probing.

    ``records`` maps the table-wide insertion sequence number to the record
    (dict order = insertion order = deterministic trigger order).  Every
    record additionally lives either in ``wildcard`` (no usable
    discriminating selection) or in ``by_value[attribute][value]`` — the
    predicate-aware index an arriving tuple probes with its own values.
    ``expiry`` holds per-window-mode ``(deadline, seq)`` min-heaps so the
    trigger path drops aged-out records without scanning the bucket, and
    ``by_share`` maps a canonical sharing key to the hosting record's seq.
    """

    __slots__ = (
        "records",
        "wildcard",
        "by_value",
        "by_share",
        "expiry",
        "version",
        "last_probe",
    )

    def __init__(self) -> None:
        self.records: Dict[int, StoredQueryRecord] = {}
        self.wildcard: Dict[int, StoredQueryRecord] = {}
        self.by_value: Dict[str, Dict[object, Dict[int, StoredQueryRecord]]] = {}
        self.by_share: Dict[Hashable, int] = {}
        self.expiry: Dict[str, List[TupleT[float, int]]] = {
            "time": [],
            "tuples": [],
        }
        #: Mutation counter; bumped on every add/remove so probe plans and
        #: memoised candidate lists can be invalidated cheaply.
        self.version = 0
        #: Batch-aware probe memo: ``(version, values signature, candidates)``
        #: of the last probe.  A ``publish_batch`` burst delivers many tuples
        #: to the same key back to back; while the bucket is unchanged and
        #: the tuples carry the same discriminating values, the candidate
        #: list is assembled once and reused.
        self.last_probe: Optional[
            TupleT[int, TupleT[object, ...], List[StoredQueryRecord]]
        ] = None


class QueryTable:
    """Predicate-aware stored-query index with O(1) size and heap-driven GC.

    Both node-local query tables (input and rewritten) use this structure.
    Under each key text, records are sub-indexed by the discriminating bound
    values their trigger conditions test (see
    :func:`~repro.core.rewriting.discriminating_selection`), so a tuple
    arrival fetches only the records its values can actually rewrite —
    mirroring the tuple store's prefix index, but over queries.  The table
    also keeps per-bucket and table-wide expiry heaps (window GC without
    scans) and a per-bucket registry of canonical sharing keys for
    multi-query state sharing.
    """

    __slots__ = ("_by_key", "_size", "_expiry", "_tiebreak")

    def __init__(self) -> None:
        self._by_key: Dict[str, _KeyBucket] = {}
        self._size = 0
        # mode -> (deadline, seq, key text, record) min-heap.  Entries are
        # never removed eagerly; stale ones (records dropped through the
        # trigger path or rehomed) are skipped by an identity check.
        self._expiry: Dict[str, List[TupleT[float, int, str, StoredQueryRecord]]] = {
            "time": [],
            "tuples": [],
        }
        self._tiebreak = itertools.count()

    def add(self, key_text: str, record: StoredQueryRecord) -> None:
        """Store ``record`` under ``key_text``, (re)indexing it for probes."""
        bucket = self._by_key.get(key_text)
        if bucket is None:
            bucket = _KeyBucket()
            self._by_key[key_text] = bucket
        seq = next(self._tiebreak)
        record.seq = seq
        bucket.records[seq] = record
        bucket.version += 1
        self._size += 1

        record.discriminator = self._discriminator_of(record)
        if record.discriminator is None:
            bucket.wildcard[seq] = record
        else:
            attribute, value = record.discriminator
            bucket.by_value.setdefault(attribute, {}).setdefault(value, {})[
                seq
            ] = record

        if record.share_key is not None:
            bucket.by_share.setdefault(record.share_key, seq)

        window = record.state.query.window
        state = record.state.window_state
        if window is not None and state is not None:
            # expired(window, state, clock) <=> clock > deadline.
            deadline = state.min_clock + window.size - 1
            heapq.heappush(bucket.expiry[window.mode], (deadline, seq))
            heapq.heappush(
                self._expiry[window.mode], (deadline, seq, key_text, record)
            )

    @staticmethod
    def _discriminator_of(
        record: StoredQueryRecord,
    ) -> Optional[TupleT[str, object]]:
        """The ``(attribute, value)`` group the record is filed under.

        Only safe discriminators are used: an explicit selection on the
        record's key relation (step 1 of the rewrite kills mismatching
        tuples before any other effect).  Records carrying a projection
        tracker stay wildcard — the DISTINCT tracker mutates on every
        admitted tuple, so those records must see every arrival.  At the
        value level the key's own attribute is trivially satisfied by every
        arriving tuple, so a selection on any *other* attribute is
        preferred.
        """
        if record.tracker is not None:
            return None
        key = record.key
        sp = discriminating_selection(
            record.state.query,
            key.relation,
            prefer_other_than=key.attribute if key.is_value_level else None,
        )
        if sp is None:
            return None
        try:
            hash(sp.value)
        except TypeError:
            return None
        return (sp.attribute.attribute, sp.value)

    def _remove_record(
        self, key_text: str, bucket: _KeyBucket, record: StoredQueryRecord
    ) -> None:
        """Unlink ``record`` from every bucket structure (heaps stay lazy)."""
        seq = record.seq
        del bucket.records[seq]
        bucket.version += 1
        self._size -= 1
        if record.discriminator is None:
            bucket.wildcard.pop(seq, None)
        else:
            attribute, value = record.discriminator
            groups = bucket.by_value.get(attribute)
            if groups is not None:
                group = groups.get(value)
                if group is not None:
                    group.pop(seq, None)
                    if not group:
                        del groups[value]
                        if not groups:
                            del bucket.by_value[attribute]
        if (
            record.share_key is not None
            and bucket.by_share.get(record.share_key) == seq
        ):
            del bucket.by_share[record.share_key]
        if not bucket.records:
            del self._by_key[key_text]

    # ------------------------------------------------------------------
    # probing (the tuple-arrival fast path)
    # ------------------------------------------------------------------
    def probe(
        self,
        key_text: str,
        clocks: Mapping[str, float],
        value_of: Callable[[str], object],
    ) -> TupleT[List[StoredQueryRecord], int]:
        """Candidate records for a tuple arrival, plus the expiry-drop count.

        First pops the bucket's expiry heaps for every window mode in
        ``clocks`` (records whose deadline passed can never be satisfied
        again — Section 5 — and are dropped exactly like the old linear scan
        dropped them).  Then assembles the candidates: every wildcard record
        plus, per discriminating attribute, the records filed under the
        arriving tuple's value for it (``value_of``).  Candidates come back
        in insertion order, preserving the deterministic trigger order of
        the full-scan implementation.
        """
        bucket = self._by_key.get(key_text)
        if bucket is None:
            return [], 0
        dropped = 0
        for mode, clock in clocks.items():
            heap = bucket.expiry[mode]
            while heap and heap[0][0] < clock:
                _, seq = heapq.heappop(heap)
                record = bucket.records.get(seq)
                if record is None:
                    continue
                self._remove_record(key_text, bucket, record)
                dropped += 1
        if not bucket.records:
            return [], dropped
        signature: TupleT[object, ...] = (
            tuple(value_of(attribute) for attribute in bucket.by_value)
            if bucket.by_value
            else ()
        )
        memo = bucket.last_probe
        if (
            memo is not None
            and memo[0] == bucket.version
            and memo[1] == signature
        ):
            return memo[2], dropped
        if not bucket.by_value:
            candidates = list(bucket.records.values())
            bucket.last_probe = (bucket.version, signature, candidates)
            return candidates, dropped
        groups: List[Dict[int, StoredQueryRecord]] = []
        if bucket.wildcard:
            groups.append(bucket.wildcard)
        for by_value, value in zip(bucket.by_value.values(), signature):
            group = by_value.get(value)
            if group:
                groups.append(group)
        if not groups:
            candidates = []
        elif len(groups) == 1:
            candidates = list(groups[0].values())
        else:
            merged: List[TupleT[int, StoredQueryRecord]] = []
            for group in groups:
                merged.extend(group.items())
            merged.sort(key=lambda entry: entry[0])
            candidates = [record for _, record in merged]
        bucket.last_probe = (bucket.version, signature, candidates)
        return candidates, dropped

    def find_share_host(
        self, key_text: str, share_key: Optional[Hashable]
    ) -> Optional[StoredQueryRecord]:
        """The resident record hosting ``share_key``, if any."""
        if share_key is None:
            return None
        bucket = self._by_key.get(key_text)
        if bucket is None:
            return None
        seq = bucket.by_share.get(share_key)
        if seq is None:
            return None
        return bucket.records.get(seq)

    # ------------------------------------------------------------------
    # plain table access
    # ------------------------------------------------------------------
    def get(self, key_text: str) -> Optional[List[StoredQueryRecord]]:
        """The records stored under ``key_text`` (None when there are none)."""
        bucket = self._by_key.get(key_text)
        if bucket is None:
            return None
        return list(bucket.records.values())

    def replace(self, key_text: str, records: List[StoredQueryRecord]) -> None:
        """Swap the record list of ``key_text`` (dropping the key when empty)."""
        self.pop_key(key_text)
        for record in records:
            self.add(key_text, record)

    def pop_key(self, key_text: str) -> List[StoredQueryRecord]:
        """Remove and return every record stored under ``key_text``."""
        bucket = self._by_key.pop(key_text, None)
        if bucket is None:
            return []
        records = list(bucket.records.values())
        self._size -= len(records)
        return records

    def keys(self) -> Iterable[str]:
        """The key texts currently holding records."""
        return self._by_key.keys()

    def items(self) -> Iterable[TupleT[str, List[StoredQueryRecord]]]:
        """Iterate over ``(key text, records)`` pairs."""
        for key_text, bucket in self._by_key.items():
            yield key_text, list(bucket.records.values())

    def __iter__(self) -> Iterable[str]:
        return iter(self._by_key)

    def __len__(self) -> int:
        """Number of stored records across all keys; O(1)."""
        return self._size

    def remove_query(
        self, query_id: str
    ) -> TupleT[List[StoredQueryRecord], int]:
        """Remove or detach every record serving ``query_id``.

        The retraction path of the query lifecycle subsystem.  A record
        whose state serves only ``query_id`` is physically removed; a shared
        record detaches the subscriber (promoting a new primary when
        needed) and stays.  Returns ``(removed records, detach count)``.
        Stale expiry-heap entries for removed records pop harmlessly later —
        the identity check of :meth:`gc_expired` skips records that are no
        longer stored.
        """
        removed: List[StoredQueryRecord] = []
        detached = 0
        for key_text in list(self._by_key):
            bucket = self._by_key[key_text]
            for seq in list(bucket.records):
                record = bucket.records[seq]
                if not record.state.serves(query_id):
                    continue
                if record.state.detach_subscriber(query_id):
                    self._remove_record(key_text, bucket, record)
                    removed.append(record)
                else:
                    detached += 1
        return removed, detached

    def gc_expired(self, clocks: Mapping[str, float]) -> int:
        """Drop records whose window deadline passed; returns the drop count.

        ``clocks`` maps a window mode to its current clock value.  Deadlines
        are fixed at insertion time (window states are immutable), so a
        record is expired exactly when its deadline is below the clock.
        """
        dropped = 0
        for mode, clock in clocks.items():
            heap = self._expiry[mode]
            while heap and heap[0][0] < clock:
                _, seq, key_text, record = heapq.heappop(heap)
                bucket = self._by_key.get(key_text)
                if bucket is None or bucket.records.get(seq) is not record:
                    continue
                self._remove_record(key_text, bucket, record)
                dropped += 1
        return dropped


@dataclass
class _PendingIndexOp:
    """An indexing decision waiting for RIC information to come back."""

    state: QueryState
    is_input: bool
    candidates: List[IndexKey]
    known: Dict[str, RicEntry]


@dataclass
class RehomedItem:
    """A stored item that must move to another node after id movement."""

    kind: str     # "input" | "rewritten" | "tuple" | "altt" | "registration"
    key_text: str
    payload: object


class RJoinNode:
    """The application-layer state and handlers of one DHT node."""

    def __init__(self, address: str, ctx: NodeContext) -> None:
        self.address = address
        self.ctx = ctx
        # Stored state ----------------------------------------------------
        self.input_queries = QueryTable()
        self.rewritten_queries = QueryTable()
        self.tuple_store: StoreBackend = make_store(
            ctx.store_backend, tuning=ctx.store_tuning
        )
        self.altt = AttributeLevelTupleTable(delta=ctx.altt_delta)
        # RIC state ---------------------------------------------------------
        self.rates = RateTracker(
            window=ctx.config.ric_window,
            max_keys=ctx.config.ric_max_tracked_keys,
        )
        self.candidate_table = CandidateTable(freshness=ctx.config.ric_freshness)
        self._pending_ric: Dict[str, _PendingIndexOp] = {}
        self._ric_counter = 0
        # Query lifecycle state -----------------------------------------------
        #: Replicated handle registrations this node holds for queries whose
        #: owner's ring successor it currently is (owner failover).
        self.registrations: Dict[str, "HandleRegistration"] = {}
        # Local counters ------------------------------------------------------
        self.answers_sent = 0
        #: Times a cached one-hop address turned out to have left the ring by
        #: the time a query was sent (Section 6 shortcut gone stale).  Eager
        #: candidate-table invalidation on membership events keeps this at
        #: zero; the counter is the regression probe for that behaviour.
        self.stale_one_hop_attempts = 0

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle_envelope(self, envelope: Envelope) -> None:
        """Entry point registered with the messaging service."""
        message = envelope.message
        if isinstance(message, NewTupleMessage):
            self._on_new_tuple(message)
        elif isinstance(message, EvalMessage):
            self._on_eval(message)
        elif isinstance(message, IndexQueryMessage):
            self._on_index_query(message)
        elif isinstance(message, RicRequestMessage):
            self._on_ric_request(message)
        elif isinstance(message, RicReplyMessage):
            self._on_ric_reply(message)
        elif isinstance(message, AnswerMessage):
            self._on_answer(message)
        elif isinstance(message, RetractQueryMessage):
            self._on_retract_query(message)
        # Unknown messages are silently ignored (forward compatibility).

    # ------------------------------------------------------------------
    # Procedure 1: publishing a tuple
    # ------------------------------------------------------------------
    def publish_tuple(self, tup: Tuple) -> int:
        """Index ``tup`` in the network: twice per attribute (attribute + value level).

        Returns the number of messages handed to ``multiSend``.
        """
        return self.publish_tuples((tup,))

    def publish_tuples(self, tuples: Sequence[Tuple]) -> int:
        """Index a whole batch of tuples with a single ``multiSend``.

        The batch path hashes every indexing key once and lets the messaging
        service coalesce the per-message traffic accounting; it is the fast
        path behind :meth:`repro.core.engine.RJoinEngine.publish_batch`.
        """
        catalog = self.ctx.catalog
        hash_key = self.ctx.space.hash_key
        messages: List[NewTupleMessage] = []
        identifiers: List[int] = []
        for tup in tuples:
            schema = catalog.get(tup.relation)
            for key in tuple_index_keys(tup, schema):
                messages.append(
                    NewTupleMessage(tuple=tup, key=key, publisher=self.address)
                )
                identifiers.append(hash_key(key.text))
        self.ctx.api.multi_send(self.address, messages, identifiers)
        return len(messages)

    # ------------------------------------------------------------------
    # query submission (invoked on the owner node by the engine)
    # ------------------------------------------------------------------
    def submit_query(self, state: QueryState) -> None:
        """Start indexing an input query submitted by this node."""
        self._index_query(state, is_input=True)

    # ------------------------------------------------------------------
    # Procedure 2: receiving a tuple
    # ------------------------------------------------------------------
    def _on_new_tuple(self, msg: NewTupleMessage) -> None:
        now = self.ctx.clock()
        key = msg.key
        tup = msg.tuple
        self.ctx.loads.record_tuple_received(self.address)
        self.rates.record(key.text, now)
        if self.ctx.obs is not None:
            self.ctx.obs.record_key_load(key.text)

        if key.level == ATTRIBUTE_LEVEL:
            self._trigger_stored_queries(self.input_queries, key.text, tup)
            if self.ctx.config.allow_attribute_level_rewrites:
                self._trigger_stored_queries(self.rewritten_queries, key.text, tup)
            # Remember the tuple for input queries that are still in flight
            # (Section 4); entries expire after Δ.
            self.altt.add(key.text, tup, now)
            self.altt.expire(now)
        else:
            self._trigger_stored_queries(self.rewritten_queries, key.text, tup)
            self.tuple_store.add(key.text, tup, now)
            self.ctx.loads.record_tuple_stored(self.address)

    def _trigger_stored_queries(
        self,
        table: QueryTable,
        key_text: str,
        tup: Tuple,
    ) -> None:
        """Trigger, rewrite and re-index the queries stored under ``key_text``.

        The probe fetches only the records whose discriminating selection the
        tuple's values satisfy (plus the wildcard records); window-expired
        records are dropped through the bucket's expiry heap exactly like the
        old full scan dropped them (Section 5), without touching survivors.
        """
        schema = self.ctx.catalog.get(tup.relation)
        candidates, dropped = table.probe(
            key_text,
            # expired(window, state, clock_of(tup)) per window mode.
            clocks={"time": tup.pub_time, "tuples": float(tup.sequence)},
            value_of=lambda attribute: tup.value_of(attribute, schema),
        )
        if dropped:
            self.ctx.loads.record_query_dropped(self.address, dropped)
        if not candidates:
            return
        if self.ctx.record_candidates_scanned is not None:
            self.ctx.record_candidates_scanned(len(candidates))
        for record in candidates:
            self._try_trigger(record, tup, schema)

    def _try_trigger(
        self, record: StoredQueryRecord, tup: Tuple, schema: RelationSchema
    ) -> None:
        """Apply the trigger conditions and, if satisfied, rewrite and re-index."""
        state = record.state
        if tup.pub_time < state.insertion_time:
            return  # only tuples published at or after the query's submission
        window = state.query.window
        if not admits(window, state.window_state, tup):
            return
        if tup.relation not in state.query.relations:
            return
        if state.distinct and record.tracker is not None:
            if not record.tracker.admit_and_record(state.query, tup, schema):
                return
        result = rewrite_query(state.query, tup, schema)
        if result.dead:
            return
        assert result.query is not None
        if self.ctx.record_queries_triggered is not None:
            self.ctx.record_queries_triggered(1)
        new_window_state = extend(window, state.window_state, tup)
        new_state = state.derive(result.query, new_window_state)
        if result.complete:
            self._emit_answer(new_state)
        else:
            self._index_query(new_state, is_input=False)

    def _share_key_of(self, state: QueryState) -> Optional[Hashable]:
        """The canonical sharing key of ``state`` (None: do not share)."""
        if not self.ctx.config.shared_query_state:
            return None
        return canonical_state_key(state)

    @staticmethod
    def _make_tracker(state: QueryState) -> Optional[ProjectionTracker]:
        """Projection tracking applies to DISTINCT queries without windows.

        For windowless DISTINCT queries the paper's local rule is safe: a
        suppressed tuple can only ever reproduce answer values that the
        previously seen projection already produces.  With sliding windows
        the rule could suppress a tuple whose earlier twin expired before
        completing a combination, losing answers; those queries rely on the
        owner-side deduplication of :class:`~repro.core.answers.QueryHandle`
        instead (see DESIGN.md).
        """
        if state.distinct and state.query.window is None:
            return ProjectionTracker()
        return None

    def _emit_answer(self, state: QueryState) -> None:
        """Ship an answer directly to every subscriber of the state.

        An unshared state has exactly one subscriber (the input query it was
        derived for); a shared state fans the answer out once per subscriber,
        so per-subscriber accounting (answers produced, delivery messages)
        matches what N private states would have produced.  Each destination
        is resolved through the lifecycle layer at emission time: after an
        owner failover the stored query states still carry the departed
        owner's address, but answers must reach the surviving registrant.
        """
        now = self.ctx.clock()
        values = state.query.answer_values()
        subscribers = state.subscribers
        for subscriber in subscribers:
            answer = AnswerMessage(
                query_id=subscriber.query_id,
                values=values,
                produced_at=now,
                producer=self.address,
            )
            self.answers_sent += 1
            self.ctx.loads.record_answer(self.address)
            owner = subscriber.owner
            if self.ctx.resolve_owner is not None:
                owner = self.ctx.resolve_owner(subscriber.query_id, owner)
            self.ctx.api.send_direct(self.address, answer, owner)
        if len(subscribers) > 1 and self.ctx.record_shared_fanout is not None:
            self.ctx.record_shared_fanout(len(subscribers) - 1)

    # ------------------------------------------------------------------
    # receiving an input query
    # ------------------------------------------------------------------
    def _on_index_query(self, msg: IndexQueryMessage) -> None:
        now = self.ctx.clock()
        self.ctx.loads.record_input_query_received(self.address)
        state, key = msg.state, msg.key
        if self._drop_if_retracted(state):
            return
        self._adopt_ric_info(state)
        share_key = self._share_key_of(state)
        host = self.input_queries.find_share_host(key.text, share_key)
        record = StoredQueryRecord(
            state=state,
            key=key,
            stored_at=now,
            tracker=self._make_tracker(state),
            share_key=share_key,
        )
        if host is None:
            self.input_queries.add(key.text, record)
        # Section 4, rule 2: search the ALTT for tuples that raced past the
        # query.  A newcomer merging into a shared host runs this catch-up on
        # its own (unstored) record first — the host already triggered for
        # its subscribers when those tuples arrived — and only then attaches
        # its subscribers, so future arrivals trigger the host exactly once.
        schema_cache: Dict[str, RelationSchema] = {}
        for tup in self.altt.find(
            key.text, now, published_at_or_after=state.insertion_time
        ):
            schema = schema_cache.get(tup.relation)
            if schema is None:
                schema = self.ctx.catalog.get(tup.relation)
                schema_cache[tup.relation] = schema
            self._try_trigger(record, tup, schema)
        if host is not None:
            host.state.attach_subscribers(state.subscribers)

    # ------------------------------------------------------------------
    # Procedure 3: receiving a rewritten query
    # ------------------------------------------------------------------
    def _on_eval(self, msg: EvalMessage) -> None:
        now = self.ctx.clock()
        self.ctx.loads.record_query_received(self.address)
        state, key = msg.state, msg.key
        if self._drop_if_retracted(state):
            return
        self._adopt_ric_info(state)

        share_key = self._share_key_of(state)
        record = StoredQueryRecord(
            state=state,
            key=key,
            stored_at=now,
            tracker=self._make_tracker(state),
            share_key=share_key,
        )
        # A query whose window can no longer admit *future* tuples is not
        # stored, but it must still be matched against the tuples already
        # stored here: those were published in the past and may well complete
        # a combination that fits the window.
        window = state.query.window
        window_open_for_future = window is None or not expired(
            window, state.window_state, self._window_clock(window)
        )
        host: Optional[StoredQueryRecord] = None
        if window_open_for_future:
            # Multi-query sharing: an equivalent state already resident here
            # absorbs the newcomer's subscribers instead of a second physical
            # record.  The merge happens *after* the newcomer's catch-up
            # below — the host already triggered for its own subscribers
            # when the stored tuples arrived.
            host = self.rewritten_queries.find_share_host(key.text, share_key)
            if host is None:
                self.rewritten_queries.add(key.text, record)
                self.ctx.loads.record_query_stored(self.address)

        # Match against tuples already stored locally (published after the
        # input query was submitted but delivered here before this query).
        # The store hands the tuples out already ordered by
        # ``(pub_time, sequence)``, so no re-sort is needed here.
        for tup in self._stored_tuples_for(key):
            schema = self.ctx.catalog.get(tup.relation)
            self._try_trigger(record, tup, schema)
        if host is not None:
            host.state.attach_subscribers(state.subscribers)

    def _stored_tuples_for(self, key: IndexKey) -> List[Tuple]:
        """Locally stored tuples matching a query indexed under ``key``.

        Results are in publication order (``(pub_time, sequence)``).
        """
        if key.is_value_level:
            return self.tuple_store.tuples_for_key(key.text)
        # Attribute-level rewritten query: scan every value-level copy of the
        # relation-attribute pair plus the ALTT, deduplicating publications.
        # Routed through the set-at-a-time API so disk backends serve it from
        # their batch/memo path.
        now = self.ctx.clock()
        (tuples,) = self.tuple_store.match_batch(
            ((PREFIX_PROBE, key.attribute_prefix),)
        )
        if self.ctx.obs is not None:
            self.ctx.obs.record_store_probe(len(tuples))
        seen = {tup.identity for tup in tuples}
        extras: List[Tuple] = []
        for tup in self.altt.find(key.text, now):
            if tup.identity not in seen:
                seen.add(tup.identity)
                extras.append(tup)
        if not extras:
            return tuples
        extras.sort(key=lambda t: (t.pub_time, t.sequence))
        return list(
            heapq.merge(tuples, extras, key=lambda t: (t.pub_time, t.sequence))
        )

    # ------------------------------------------------------------------
    # indexing pipeline (Sections 3, 6 and 7)
    # ------------------------------------------------------------------
    def _adopt_ric_info(self, state: QueryState) -> None:
        """Adopt the RIC information piggy-backed on an arriving query.

        Entries reported by nodes that have since left the ring are purged
        *before* they reach the candidate table — otherwise an in-flight
        query would re-pollute tables that the membership event already
        invalidated eagerly, and the stale address would surface later as a
        failed one-hop attempt.
        """
        ring = self.ctx.api.ring
        stale = [
            key_text
            for key_text, cached in state.ric_info.items()
            if not ring.has_address(cached.address)
        ]
        for key_text in stale:
            del state.ric_info[key_text]
        self.candidate_table.update_many(state.ric_info.values())

    def _index_query(self, state: QueryState, is_input: bool) -> None:
        """Decide where to index ``state`` and send it there."""
        config = self.ctx.config
        if is_input:
            candidates = input_query_candidates(state.query)
        else:
            candidates = rewritten_query_candidates(
                state.query,
                allow_attribute_level=config.allow_attribute_level_rewrites,
            )
        if not candidates:
            # Nothing to wait for (degenerate query): nothing to index.
            return
        strategy = self.ctx.strategy
        now = self.ctx.clock()

        if strategy.requires_ric:
            known: Dict[str, RicEntry] = {}
            unknown: List[IndexKey] = []
            for key in candidates:
                entry = state.ric_info.get(key.text)
                if entry is None or not entry.is_fresh(now, config.ric_freshness):
                    entry = self.candidate_table.lookup(key.text, now)
                if entry is not None:
                    known[key.text] = entry
                else:
                    unknown.append(key)
            if unknown:
                self._start_ric_chain(state, is_input, candidates, known, unknown)
                return
            self._finish_indexing(state, is_input, candidates, known)
            return

        rates: Dict[str, float] = {}
        if strategy.uses_oracle:
            rates = {key.text: self.ctx.rate_oracle(key.text) for key in candidates}
        choice = strategy.choose(candidates, rates, self.ctx.rng)
        self._send_query(state, is_input, choice, known_address=None)

    def _start_ric_chain(
        self,
        state: QueryState,
        is_input: bool,
        candidates: List[IndexKey],
        known: Dict[str, RicEntry],
        unknown: List[IndexKey],
    ) -> None:
        """Ask the candidate nodes we know nothing about for RIC information."""
        self._ric_counter += 1
        request_id = f"{self.address}/ric-{self._ric_counter}"
        self._pending_ric[request_id] = _PendingIndexOp(
            state=state, is_input=is_input, candidates=candidates, known=dict(known)
        )
        first, rest = unknown[0], tuple(unknown[1:])
        request = RicRequestMessage(
            request_id=request_id,
            origin=self.address,
            target_key=first,
            pending=rest,
            collected=(),
        )
        self.ctx.api.send(
            self.address,
            request,
            self.ctx.space.hash_key(first.text),
            is_ric=True,
        )

    def _on_ric_request(self, msg: RicRequestMessage) -> None:
        """Report the local arrival rate and forward the chain (Section 6)."""
        if self.ctx.obs is not None:
            self.ctx.obs.record_ric("request")
        now = self.ctx.clock()
        entry = RicEntry(
            key_text=msg.target_key.text,
            rate=self.rates.rate(msg.target_key.text, now),
            address=self.address,
            observed_at=now,
        )
        collected = msg.collected + (entry,)
        if msg.pending:
            next_key, rest = msg.pending[0], msg.pending[1:]
            forwarded = RicRequestMessage(
                request_id=msg.request_id,
                origin=msg.origin,
                target_key=next_key,
                pending=rest,
                collected=collected,
            )
            self.ctx.api.send(
                self.address,
                forwarded,
                self.ctx.space.hash_key(next_key.text),
                is_ric=True,
            )
        else:
            reply = RicReplyMessage(request_id=msg.request_id, collected=collected)
            self.ctx.api.send_direct(self.address, reply, msg.origin, is_ric=True)

    def _on_ric_reply(self, msg: RicReplyMessage) -> None:
        """Complete a pending indexing decision with the freshly gathered rates."""
        if self.ctx.obs is not None:
            self.ctx.obs.record_ric("reply")
        op = self._pending_ric.pop(msg.request_id, None)
        if op is None:
            return
        if self._drop_if_retracted(op.state):
            return
        # A reporter can crash while its reply is in flight; its entries are
        # dead on arrival and must not re-enter the candidate table.
        ring = self.ctx.api.ring
        collected = [
            entry for entry in msg.collected if ring.has_address(entry.address)
        ]
        self.candidate_table.update_many(collected)
        entries = {
            key_text: entry
            for key_text, entry in op.known.items()
            if ring.has_address(entry.address)
        }
        for entry in collected:
            entries[entry.key_text] = entry
        self._finish_indexing(op.state, op.is_input, op.candidates, entries)

    def _finish_indexing(
        self,
        state: QueryState,
        is_input: bool,
        candidates: List[IndexKey],
        entries: Dict[str, RicEntry],
    ) -> None:
        """Choose the candidate with the gathered rates and ship the query."""
        rates = {key_text: entry.rate for key_text, entry in entries.items()}
        choice = self.ctx.strategy.choose(candidates, rates, self.ctx.rng)
        # Piggy-back what we know so the next node can reuse it (Section 7).
        state.ric_info.update(entries)
        chosen_entry = entries.get(choice.text)
        known_address = chosen_entry.address if chosen_entry is not None else None
        self._send_query(state, is_input, choice, known_address)

    def _send_query(
        self,
        state: QueryState,
        is_input: bool,
        key: IndexKey,
        known_address: Optional[str],
    ) -> None:
        """Transmit the (input or rewritten) query to its chosen node."""
        if is_input:
            message = IndexQueryMessage(state=state, key=key)
        else:
            message = EvalMessage(state=state, key=key)
        ring = self.ctx.api.ring
        # The one-hop shortcut of Section 6 only applies while the cached
        # candidate address is still responsible for the key; after a node
        # leaves or moves (id movement), fall back to a regular DHT lookup.
        if known_address is not None and not ring.has_address(known_address):
            # The cached candidate departed: membership events should have
            # invalidated this entry eagerly, so count the stale attempt.
            self.stale_one_hop_attempts += 1
            known_address = None
        if (
            known_address is not None
            and ring.owner_of_key(key.text).address == known_address
        ):
            self.ctx.api.send_direct(self.address, message, known_address)
        else:
            self.ctx.api.send(
                self.address, message, self.ctx.space.hash_key(key.text)
            )

    # ------------------------------------------------------------------
    # answers
    # ------------------------------------------------------------------
    def _on_answer(self, msg: AnswerMessage) -> None:
        """An answer for a query submitted by this node arrived."""
        self.ctx.collect_answer(msg, self.ctx.clock())

    # ------------------------------------------------------------------
    # query lifecycle: retraction and vacuum
    # ------------------------------------------------------------------
    def _drop_if_retracted(self, state: QueryState) -> bool:
        """Drop state of an already-retracted query (orphan guard).

        Retraction drains the network first, so in ordinary runs nothing is
        in flight when a query is removed; this guard catches the exotic
        interleavings (kernel-scheduled membership ops firing mid-drain)
        where a straggler could otherwise re-install purged state.  A shared
        state detaches its retracted subscribers and is only dropped — and
        counted by the ``orphaned_state_records`` probe — when none remain.
        """
        is_retracted = self.ctx.is_retracted
        if is_retracted is None:
            return False
        retracted_ids = [
            query_id
            for query_id in state.subscriber_ids
            if is_retracted(query_id)
        ]
        if not retracted_ids:
            return False
        for query_id in retracted_ids:
            if state.detach_subscriber(query_id):
                if self.ctx.record_orphaned is not None:
                    self.ctx.record_orphaned(1)
                return True
        return False

    def _on_retract_query(self, msg: RetractQueryMessage) -> None:
        """Delete every piece of local state belonging to a retracted query."""
        self.retract_query(msg.query_id)

    def retract_query(self, query_id: str) -> int:
        """Purge ``query_id``'s state from this node; returns the purge count.

        Covers the three per-query state kinds a node can hold: the stored
        input-query record, every rewritten query derived from it, and RIC
        round trips still pending on its behalf.  A shared record serving
        other subscribers too is not deleted — the retracted subscriber is
        detached (still counted as a purge) and the survivors keep the
        record.  Physically purged rewritten queries leave the storage-load
        accounting like window-expired ones do, so ``current_storage`` keeps
        matching the live state.
        """
        input_records, input_detached = self.input_queries.remove_query(query_id)
        rewritten_records, rewritten_detached = self.rewritten_queries.remove_query(
            query_id
        )
        if rewritten_records:
            self.ctx.loads.record_query_dropped(
                self.address, len(rewritten_records)
            )
        stale_ops: List[str] = []
        ops_detached = 0
        for request_id, op in self._pending_ric.items():
            if not op.state.serves(query_id):
                continue
            if op.state.detach_subscriber(query_id):
                stale_ops.append(request_id)
            else:
                ops_detached += 1
        for request_id in stale_ops:
            del self._pending_ric[request_id]
        purged = (
            len(input_records)
            + len(rewritten_records)
            + len(stale_ops)
            + input_detached
            + rewritten_detached
            + ops_detached
        )
        if purged and self.ctx.record_retracted is not None:
            self.ctx.record_retracted(purged)
        return purged

    def vacuum(self, published_before: float) -> int:
        """Reclaim state that exists only to serve continuous queries.

        Called by the engine when the last active query has been removed:
        any *future* query's insertion time will be at or after ``now``,
        and the trigger condition ``pubT(t) >= insT(q)`` makes every tuple
        published strictly before that unreachable — stored value-level
        copies and ALTT entries alike.  The candidate-table RIC cache is
        cleared with them (it only informs indexing decisions of queries).
        Returns the number of reclaimed records.
        """
        tuples_dropped = self.tuple_store.remove_expired(
            published_before=published_before
        )
        if tuples_dropped:
            self.ctx.loads.record_tuple_dropped(self.address, tuples_dropped)
        altt_dropped = self.altt.remove_published_before(published_before)
        cache_dropped = len(self.candidate_table)
        self.candidate_table.clear()
        return tuples_dropped + altt_dropped + cache_dropped

    # ------------------------------------------------------------------
    # sliding-window / storage garbage collection
    # ------------------------------------------------------------------
    def _window_clock(self, window: WindowSpec) -> float:
        """The current value of a window's clock (time or tuple sequence)."""
        if window.mode == "time":
            return self.ctx.clock()
        return float(self.ctx.sequence_clock())

    def gc_expired_state(self) -> TupleT[int, int]:
        """Drop window-expired rewritten queries and (optionally) stored tuples.

        Returns ``(queries dropped, tuples dropped)``.  Stored tuples are only
        collected when the engine configured ``tuple_gc_window`` (i.e. every
        query of the run shares the same window, so an aged-out tuple can
        never contribute to any answer again).
        """
        queries_dropped = self.rewritten_queries.gc_expired(
            {
                "time": self.ctx.clock(),
                "tuples": float(self.ctx.sequence_clock()),
            }
        )
        if queries_dropped:
            self.ctx.loads.record_query_dropped(self.address, queries_dropped)

        tuples_dropped = 0
        gc_window = self.ctx.config.tuple_gc_window
        if gc_window is not None:
            # tuple_expired(window, tup, clock) <=> clock_of(tup) < cutoff.
            cutoff = self._window_clock(gc_window) - gc_window.size + 1
            if gc_window.mode == "time":
                tuples_dropped = self.tuple_store.remove_expired(
                    published_before=cutoff
                )
            else:
                tuples_dropped = self.tuple_store.remove_expired(
                    sequenced_before=int(cutoff)
                )
            if tuples_dropped:
                self.ctx.loads.record_tuple_dropped(self.address, tuples_dropped)
        return queries_dropped, tuples_dropped

    # ------------------------------------------------------------------
    # membership support (id movement, node join/leave — Figure 9 and churn)
    # ------------------------------------------------------------------
    def extract_misplaced(
        self,
        owner_of: Callable[[str], str],
        registration_home: Optional[Callable[[str], Optional[str]]] = None,
    ) -> List[RehomedItem]:
        """Remove and return stored items whose key is now owned by another node.

        Covers every node-local state kind: stored queries (input and
        rewritten), value-level tuples, ALTT entries and — when the caller
        provides the lifecycle layer's ``registration_home`` — replicated
        handle registrations whose proper home (the ring successor of the
        query's owner) is no longer this node.
        """
        items = self._extract(lambda key_text: owner_of(key_text) != self.address)
        if registration_home is not None:
            for query_id in list(self.registrations):
                if registration_home(query_id) != self.address:
                    items.append(
                        RehomedItem(
                            kind="registration",
                            key_text=query_id,
                            payload=self.registrations.pop(query_id),
                        )
                    )
        return items

    def extract_all(self) -> List[RehomedItem]:
        """Remove and return *every* stored item (graceful departure hand-off)."""
        items = self._extract(lambda key_text: True)
        for query_id in list(self.registrations):
            items.append(
                RehomedItem(
                    kind="registration",
                    key_text=query_id,
                    payload=self.registrations.pop(query_id),
                )
            )
        return items

    def _extract(self, should_move: Callable[[str], bool]) -> List[RehomedItem]:
        items: List[RehomedItem] = []

        def _extract_table(table: QueryTable, kind: str) -> None:
            for key_text in list(table.keys()):
                if not should_move(key_text):
                    continue
                for record in table.pop_key(key_text):
                    items.append(
                        RehomedItem(kind=kind, key_text=key_text, payload=record)
                    )

        _extract_table(self.input_queries, "input")
        _extract_table(self.rewritten_queries, "rewritten")

        for key_text in list(self.tuple_store.keys()):
            if not should_move(key_text):
                continue
            for record in self.tuple_store.remove_key(key_text):
                items.append(
                    RehomedItem(kind="tuple", key_text=key_text, payload=record)
                )

        for key_text in self.altt.keys():
            if not should_move(key_text):
                continue
            for entry in self.altt.pop_key(key_text):
                items.append(
                    RehomedItem(kind="altt", key_text=key_text, payload=entry)
                )
        return items

    def forget_address(self, address: str) -> int:
        """Eagerly drop every piece of RIC state naming a departed node.

        Called once per membership departure (graceful leave or crash).
        Covers the candidate table, the RIC caches piggy-backed on stored
        query states (which would otherwise re-pollute the candidate table
        on the next trigger) and pending RIC round trips.  Returns the
        number of invalidated entries.
        """
        dropped = self.candidate_table.invalidate_address(address)

        def _purge(info: Dict[str, RicEntry]) -> int:
            stale = [
                key_text
                for key_text, cached in info.items()
                if cached.address == address
            ]
            for key_text in stale:
                del info[key_text]
            return len(stale)

        for table in (self.input_queries, self.rewritten_queries):
            for _, records in table.items():
                for record in records:
                    dropped += _purge(record.state.ric_info)
        for op in self._pending_ric.values():
            dropped += _purge(op.known)
        return dropped

    def accept_rehomed(self, item: RehomedItem) -> None:
        """Adopt an item handed over by another node after a membership change."""
        if item.kind == "input":
            self.input_queries.add(item.key_text, item.payload)
        elif item.kind == "rewritten":
            self.rewritten_queries.add(item.key_text, item.payload)
        elif item.kind == "tuple":
            record = item.payload
            assert isinstance(record, StoredTuple)
            self.tuple_store.add(item.key_text, record.tuple, record.stored_at)
        elif item.kind == "altt":
            tup, received_at = item.payload
            self.altt.add(item.key_text, tup, received_at)
        elif item.kind == "registration":
            self.registrations[item.key_text] = item.payload
        else:
            raise EngineError(
                f"cannot re-home item of unknown kind {item.kind!r} for key "
                f"{item.key_text!r}; expected one of 'input', 'rewritten', "
                "'tuple', 'altt' or 'registration'"
            )

    def accept_rehomed_batch(self, items: List[RehomedItem]) -> None:
        """Adopt a whole consignment of re-homed items in one pass.

        Tuple records — the bulk of any re-homing under churn — go through
        the store's batch ingestion API so disk backends land them in one
        write transaction; every other kind falls back to the per-item path.
        """
        entries: List[TupleT[str, Tuple, float]] = []
        for item in items:
            if item.kind == "tuple":
                record = item.payload
                assert isinstance(record, StoredTuple)
                entries.append((item.key_text, record.tuple, record.stored_at))
            else:
                self.accept_rehomed(item)
        if entries:
            self.tuple_store.add_batch(entries)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def stored_input_queries(self) -> int:
        """Number of input queries currently stored at this node; O(1)."""
        return len(self.input_queries)

    @property
    def stored_rewritten_queries(self) -> int:
        """Number of rewritten queries currently stored at this node; O(1)."""
        return len(self.rewritten_queries)

    @property
    def stored_tuples(self) -> int:
        """Number of value-level tuples currently stored at this node; O(1)."""
        return len(self.tuple_store)

    @property
    def current_storage_items(self) -> int:
        """Rewritten queries plus tuples currently stored (the SL state)."""
        count = self.stored_rewritten_queries + self.stored_tuples
        if self.ctx.config.count_altt_in_storage:
            count += len(self.altt)
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RJoinNode({self.address}, input={self.stored_input_queries}, "
            f"rewritten={self.stored_rewritten_queries}, tuples={self.stored_tuples})"
        )
