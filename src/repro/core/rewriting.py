"""Incremental query rewriting (Section 3).

When a tuple ``t`` of relation ``R`` triggers a (possibly already rewritten)
query ``q``, RJoin rewrites ``q`` into a new query ``q'`` that reflects the
fact that ``t`` has arrived:

* every reference to an attribute of ``R`` in the select list is replaced by
  the corresponding value of ``t``,
* every join predicate involving ``R`` becomes a selection on the other side
  (``R.A = S.B`` with ``t.A = 3`` becomes ``3 = S.B``),
* every selection on ``R`` is checked against ``t``: if satisfied it is
  dropped, if violated the rewrite is *dead* — the combination of tuples it
  represents can never produce an answer, so no new query is created,
* ``R`` is removed from the FROM clause.

A rewritten query whose where clause became equivalent to ``true`` (no
relations, no predicates, only constants in the select list) is an *answer*
of the original query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Hashable, List, Optional, Tuple as TupleT, Union

from repro.data.schema import AttributeRef, RelationSchema
from repro.data.tuples import Tuple
from repro.errors import RewriteError
from repro.sql.ast import Constant, JoinPredicate, Query, SelectionPredicate
from repro.sql.predicates import is_contradictory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.protocol import QueryState


@dataclass(frozen=True)
class RewriteResult:
    """Outcome of one rewrite step."""

    query: Optional[Query]      # None when the rewrite is dead
    dead: bool = False
    complete: bool = False      # where clause equivalent to true

    @property
    def alive(self) -> bool:
        """Whether a (non-answer) rewritten query was produced."""
        return not self.dead and not self.complete


DEAD = RewriteResult(query=None, dead=True)


def tuple_satisfies_selections(
    query: Query, tup: Tuple, schema: RelationSchema
) -> bool:
    """Check the explicit selections of ``query`` on ``tup``'s relation."""
    values = tup.as_dict(schema)
    for sp in query.selection_predicates:
        if sp.attribute.relation != tup.relation:
            continue
        if values[sp.attribute.attribute] != sp.value:
            return False
    return True


def discriminating_selection(
    query: Query, relation: str, prefer_other_than: Optional[str] = None
) -> Optional[SelectionPredicate]:
    """The explicit selection on ``relation`` a trigger check tests first.

    A stored query can only be rewritten by a tuple of ``relation`` whose
    value for the selected attribute equals the selection's constant (step 1
    of :func:`rewrite_query` returns :data:`DEAD` otherwise), so this
    predicate is a safe *discriminator* for the query index: the index files
    the record under the selection's ``(attribute, value)`` and an arriving
    tuple only fetches records whose discriminator matches (or records with
    no discriminator at all).

    ``prefer_other_than`` names an attribute the caller already knows to be
    bound (e.g. the value-level index key's attribute, which every resident
    record trivially matches) — a selection on any *other* attribute prunes
    more, so it wins when available.
    """
    first: Optional[SelectionPredicate] = None
    for sp in query.selection_predicates:
        if sp.attribute.relation != relation:
            continue
        if first is None:
            first = sp
        if sp.attribute.attribute != prefer_other_than:
            return sp
    return first


def canonical_state_key(state: "QueryState") -> Optional[Hashable]:
    """Canonical form of a rewritten-query state, equal modulo query id.

    Two states with the same canonical key represent exactly the same
    residual evaluation work: the same rewritten query (shape, bindings,
    window), the same window state over consumed tuples, the same insertion
    time and rewrite depth.  Multi-query sharing stores one physical record
    per canonical key and fans answers out to every subscriber.

    Returns None when the state must not be shared: DISTINCT queries carry a
    mutating per-record projection tracker whose merge semantics are not
    order-independent, and a query with unhashable components cannot be
    keyed at all.
    """
    if state.distinct:
        return None
    try:
        key: TupleT[Hashable, ...] = (
            state.query,
            state.insertion_time,
            state.window_state,
            state.is_input,
            state.consumed,
        )
        hash(key)
    except TypeError:
        return None
    return key


def rewrite_query(query: Query, tup: Tuple, schema: RelationSchema) -> RewriteResult:
    """Rewrite ``query`` with ``tup`` (one step of RJoin's incremental evaluation).

    Raises :class:`~repro.errors.RewriteError` when ``tup``'s relation does
    not appear in the query's FROM clause — callers are expected to route
    tuples only to queries that reference their relation.
    """
    relation = tup.relation
    if relation not in query.relations:
        raise RewriteError(
            f"tuple of relation {relation!r} cannot rewrite a query over "
            f"{query.relations}"
        )
    values: Dict[str, Any] = tup.as_dict(schema)

    # 1. Selections on the consumed relation must be satisfied.
    remaining_selections: List[SelectionPredicate] = []
    for sp in query.selection_predicates:
        if sp.attribute.relation == relation:
            if values[sp.attribute.attribute] != sp.value:
                return DEAD
            # satisfied -> dropped
        else:
            remaining_selections.append(sp)

    # 2. Join predicates involving the consumed relation become selections.
    remaining_joins: List[JoinPredicate] = []
    new_selections: List[SelectionPredicate] = []
    for jp in query.join_predicates:
        if not jp.references(relation):
            remaining_joins.append(jp)
            continue
        other = jp.other_side(relation)
        own = jp.side_for(relation)
        if other.relation == relation:
            # Self-join predicate (not produced by the parser, but handle it):
            # both sides are bound by the tuple, so simply evaluate it.
            if values[own.attribute] != values[other.attribute]:
                return DEAD
            continue
        new_selections.append(
            SelectionPredicate(other, values[own.attribute])
        )

    # 3. Merge selections and detect contradictions (two different constants
    #    required for the same attribute can never be satisfied).
    merged: List[SelectionPredicate] = list(remaining_selections)
    seen = {(sp.attribute, sp.value) for sp in merged}
    for sp in new_selections:
        if (sp.attribute, sp.value) in seen:
            continue
        seen.add((sp.attribute, sp.value))
        merged.append(sp)
    if is_contradictory(merged):
        return DEAD

    # 4. Substitute values into the select list.
    new_select: List[Union[AttributeRef, Constant]] = []
    for item in query.select_items:
        if isinstance(item, AttributeRef) and item.relation == relation:
            new_select.append(Constant(values[item.attribute]))
        else:
            new_select.append(item)

    # 5. Drop the consumed relation from FROM.
    new_relations = tuple(rel for rel in query.relations if rel != relation)

    rewritten = Query(
        select_items=tuple(new_select),
        relations=new_relations,
        join_predicates=tuple(remaining_joins),
        selection_predicates=tuple(merged),
        distinct=query.distinct,
        window=query.window,
    )
    if rewritten.is_complete():
        return RewriteResult(query=rewritten, complete=True)
    return RewriteResult(query=rewritten)


def rewrite_chain(
    query: Query, tuples: List[Tuple], schemas: Dict[str, RelationSchema]
) -> RewriteResult:
    """Apply :func:`rewrite_query` repeatedly, one tuple at a time.

    A convenience for tests and the reference engine: the result is dead as
    soon as any step is dead, and complete when the final query is complete.
    """
    current = query
    for tup in tuples:
        result = rewrite_query(current, tup, schemas[tup.relation])
        if result.dead:
            return DEAD
        assert result.query is not None
        current = result.query
    if current.is_complete():
        return RewriteResult(query=current, complete=True)
    return RewriteResult(query=current)
