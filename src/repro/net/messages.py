"""Base message abstraction and routing envelope.

The RJoin protocol defines its own message types (``newTuple``, ``Eval``,
RIC requests, answers — see :mod:`repro.core.protocol`).  All of them derive
from :class:`Message`, which carries nothing but a monotonically increasing
message id for deterministic tie-breaking and debugging.

:class:`Envelope` wraps a message with the routing metadata attached by the
DHT messaging API: who sent it, the destination key/identifier or direct
address, the chosen route, and the simulated send/delivery times.  Envelopes
are what message handlers receive, so a handler can always know at which key
(and therefore at which *indexing level*) the payload arrived — Procedure 2
of the paper needs exactly this (``Level`` parameter).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.obs.trace import TraceContext

_MESSAGE_COUNTER = itertools.count(1)


@dataclass
class Message:
    """Base class for every protocol message."""

    message_id: int = field(default_factory=lambda: next(_MESSAGE_COUNTER), init=False)

    @property
    def kind(self) -> str:
        """A short, human-readable message kind (the class name)."""
        return type(self).__name__


@dataclass
class Envelope:
    """A message in flight, together with its routing metadata."""

    message: Message
    sender: str
    destination: str
    target_identifier: Optional[int] = None
    route: Tuple[str, ...] = ()
    hops: int = 0
    sent_at: float = 0.0
    delivered_at: float = 0.0
    direct: bool = False
    #: Trace propagation state (observability layer).  ``None`` unless the
    #: engine runs with ``observability="on"``; failover re-sends carry the
    #: original context so a re-routed answer stays in its trace.
    trace: Optional[TraceContext] = None

    @property
    def kind(self) -> str:
        """Kind of the wrapped message."""
        return self.message.kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "direct" if self.direct else f"{self.hops} hops"
        return (
            f"Envelope({self.kind} #{self.message.message_id} "
            f"{self.sender} -> {self.destination}, {mode})"
        )


def reset_message_counter() -> None:
    """Reset the global message id counter (used by tests for determinism)."""
    global _MESSAGE_COUNTER
    _MESSAGE_COUNTER = itertools.count(1)
